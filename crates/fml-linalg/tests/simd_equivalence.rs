//! SIMD-level equivalence tests.
//!
//! The `simd` layer's contract is that the bit-exact levels (`Scalar`, the
//! forced fallback, and `Lanes`, the default AVX2 path) produce **bit-for-bit
//! identical** results for every kernel under every [`KernelPolicy`] and every
//! sparse representation, while the opt-in `LanesFma` fast mode is only
//! tolerance-equal (it fuses each multiply-add into one rounding).
//!
//! The levels are forced per-thread with [`simd::override_level`], so these
//! tests pin the contract regardless of the host CPU or the `FML_SIMD`
//! environment (on non-AVX2 hardware `Lanes` degrades to the scalar fallback
//! and the bit assertions hold trivially).  The CI job additionally reruns the
//! whole suite under `FML_SIMD=off`, which routes the *default* level through
//! the fallback — [`default_level_agrees_with_forced_scalar_fallback`] is the
//! test that turns that run into a scalar-vs-SIMD bit-agreement proof.
//!
//! Comparisons go through `f64::to_bits` (not `==`) so `-0.0` vs `0.0` and
//! NaN payload differences would be caught.
//!
//! Shapes deliberately include `n % 4 != 0` remainders (the lane width is 4),
//! empty inputs, and length-1 inputs, as required by the kernel contract.

use fml_linalg::block::{BlockPartition, BlockQuadraticForm, BlockScatter};
use fml_linalg::csr;
use fml_linalg::policy::KernelPolicy;
use fml_linalg::simd::{self, SimdLevel};
use fml_linalg::sparse::{self, BlockVec, SparseMode};
use fml_linalg::testutil::TestRng;
use fml_linalg::{approx_eq, gemm, Matrix};

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

/// Shapes stressing the lane remainder paths: empty, length-1, below one
/// 4-lane, exactly one lane, `% 4 != 0` on every axis, and big enough to
/// cross the register tile and a parallel band.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (0, 0, 0),
        (1, 1, 1),
        (2, 3, 1),
        (3, 4, 5),   // one axis lane-aligned, two with remainders
        (4, 8, 8),   // exactly one register tile
        (5, 9, 17),  // one past a tile everywhere
        (7, 13, 11), // all-odd
        (19, 23, 29),
    ]
}

#[test]
fn dense_kernels_bit_identical_across_bit_exact_levels_and_policies() {
    let mut rng = TestRng::new(0x51D0);
    for (case, (m, k, n)) in shapes().into_iter().enumerate() {
        let a = Matrix::from_vec(m, k, rng.vec_in(m * k, -4.0, 4.0));
        let b = Matrix::from_vec(k, n, rng.vec_in(k * n, -4.0, 4.0));
        let seed_c = Matrix::from_vec(m, n, rng.vec_in(m * n, -4.0, 4.0));
        let x = rng.vec_in(k, -4.0, 4.0);
        let xm = rng.vec_in(m, -4.0, 4.0);
        let alpha = rng.f64_in(-3.0, 3.0);

        for p in KernelPolicy::ALL {
            let run = |lv: SimdLevel| {
                simd::with_level(lv, || {
                    let mut c = seed_c.clone();
                    gemm::matmul_acc_with(p, &a, &b, &mut c);
                    let mv = gemm::matvec_with(p, &a, &x);
                    let mvt = gemm::matvec_transposed_with(p, &a, &xm);
                    let mut g = seed_c.clone();
                    gemm::ger_with(p, alpha, &xm, &rng_free_y(&x, n), &mut g);
                    let qf = gemm::quadratic_form_with(p, &xm, &a, &x);
                    (c, mv, mvt, g, qf)
                })
            };
            let (c0, mv0, mvt0, g0, qf0) = run(SimdLevel::Scalar);
            let (c1, mv1, mvt1, g1, qf1) = run(SimdLevel::Lanes);
            assert_bits_eq(
                c0.as_slice(),
                c1.as_slice(),
                &format!("case {case} {p} matmul"),
            );
            assert_bits_eq(&mv0, &mv1, &format!("case {case} {p} matvec"));
            assert_bits_eq(&mvt0, &mvt1, &format!("case {case} {p} matvec_t"));
            assert_bits_eq(
                g0.as_slice(),
                g1.as_slice(),
                &format!("case {case} {p} ger"),
            );
            assert_bits_eq(&[qf0], &[qf1], &format!("case {case} {p} quadratic_form"));
        }
    }
}

/// First `n` entries of `x` cycled — a deterministic length-`n` vector without
/// threading another RNG draw through the level closure.
fn rng_free_y(x: &[f64], n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            if x.is_empty() {
                0.0
            } else {
                x[i % x.len()] + i as f64 * 0.125
            }
        })
        .collect()
}

#[test]
fn sparse_and_csr_kernels_bit_identical_across_bit_exact_levels_and_policies() {
    let mut rng = TestRng::new(0x51D1);
    // (width, one-hot idx, csr idx, csr vals) fixtures covering empty,
    // length-1 and lane-remainder blocks.
    type SparseFixture = (usize, Vec<u32>, Vec<u32>, Vec<f64>);
    let fixtures: Vec<SparseFixture> = vec![
        (0, vec![], vec![], vec![]),
        (1, vec![0], vec![0], vec![1.5]),
        (1, vec![], vec![], vec![]),
        (5, vec![1, 4], vec![0, 3], vec![-2.0, 0.75]),
        (9, vec![0, 2, 7], vec![1, 5, 8], vec![0.5, -1.25, 3.0]),
        (16, vec![3, 4, 11, 15], vec![0, 7, 9], vec![2.0, -0.5, 1.0]),
    ];
    for (case, (width, oidx, cidx, cvals)) in fixtures.into_iter().enumerate() {
        let cols = 7; // odd → remainder in every row op
        let a = Matrix::from_vec(width, cols, rng.vec_in(width * cols, -4.0, 4.0));
        let sq = Matrix::from_vec(width, width, rng.vec_in(width * width, -4.0, 4.0));
        let y = rng.vec_in(cols, -4.0, 4.0);
        let yw = rng.vec_in(width, -4.0, 4.0);
        let ones = vec![1.0; oidx.len()];
        let alpha = rng.f64_in(-3.0, 3.0);

        for p in KernelPolicy::ALL {
            let run = |lv: SimdLevel| {
                simd::with_level(lv, || {
                    let g1 = sparse::matvec_transposed_onehot_with(p, &a, &oidx);
                    let g2 = csr::matvec_transposed_csr_with(p, &a, &cidx, &cvals);
                    let mut s1 = a.clone();
                    sparse::ger_onehot_with(p, alpha, &oidx, &y, &mut s1);
                    let mut s2 = a.clone();
                    csr::ger_csr_with(p, alpha, &cidx, &cvals, &y, &mut s2);
                    let q1 = sparse::quadratic_form_onehot_with(p, &oidx, &sq, &yw);
                    let q2 = csr::quadratic_form_csr_with(p, &cidx, &cvals, &sq, &yw);
                    let q3 = csr::quadratic_form_csr_pair(&cidx, &cvals, &sq, &oidx, &ones);
                    (g1, g2, s1, s2, q1, q2, q3)
                })
            };
            let r0 = run(SimdLevel::Scalar);
            let r1 = run(SimdLevel::Lanes);
            assert_bits_eq(&r0.0, &r1.0, &format!("case {case} {p} onehot gather"));
            assert_bits_eq(&r0.1, &r1.1, &format!("case {case} {p} csr gather"));
            assert_bits_eq(
                r0.2.as_slice(),
                r1.2.as_slice(),
                &format!("case {case} {p} onehot scatter"),
            );
            assert_bits_eq(
                r0.3.as_slice(),
                r1.3.as_slice(),
                &format!("case {case} {p} csr scatter"),
            );
            assert_bits_eq(
                &[r0.4, r0.5, r0.6],
                &[r1.4, r1.5, r1.6],
                &format!("case {case} {p} quadratic forms"),
            );
        }
    }
}

/// Every `KernelPolicy × SparseMode` combination through the block-dispatch
/// surface the trainers actually use: detection under the mode, then
/// `term_rep`/`add_outer_rep` over the detected representation.  Bit-exact
/// levels must agree bit-for-bit on all of it.
#[test]
fn block_dispatch_bit_identical_under_every_policy_and_sparse_mode() {
    let mut rng = TestRng::new(0x51D2);
    let d_s = 3usize;
    let d_r = 9usize; // % 4 != 0
                      // A one-hot-able block (0/1 values, low occupancy) so Auto detects it.
    let mut xr = vec![0.0; d_r];
    xr[2] = 1.0;
    xr[7] = 1.0;
    let u = rng.vec_in(d_s, -4.0, 4.0);
    let m = Matrix::from_vec(
        d_s + d_r,
        d_s + d_r,
        rng.vec_in((d_s + d_r) * (d_s + d_r), -4.0, 4.0),
    );
    let partition = BlockPartition::binary(d_s, d_r);
    let alpha = 1.75;

    for mode in [SparseMode::Auto, SparseMode::Dense] {
        let rep = mode.detect(&xr);
        match mode {
            SparseMode::Auto => assert!(rep.is_some(), "auto must detect the one-hot block"),
            SparseMode::Dense => assert!(rep.is_none(), "dense must never detect"),
        }
        for p in KernelPolicy::ALL {
            let run = |lv: SimdLevel| {
                simd::with_level(lv, || {
                    let bv = rep
                        .as_ref()
                        .map(|r| r.as_block_vec())
                        .unwrap_or(BlockVec::Dense(&xr));
                    let form = BlockQuadraticForm::new_with(partition.clone(), &m, p);
                    let t01 = form.term_rep(0, 1, BlockVec::Dense(&u), bv);
                    let t10 = form.term_rep(1, 0, bv, BlockVec::Dense(&u));
                    let t11 = form.term_rep(1, 1, bv, bv);
                    let mut sc = BlockScatter::new_with(partition.clone(), p);
                    sc.add_outer_rep(0, 1, alpha, BlockVec::Dense(&u), bv);
                    sc.add_outer_rep(1, 0, alpha, bv, BlockVec::Dense(&u));
                    sc.add_outer_rep(1, 1, alpha, bv, bv);
                    (t01, t10, t11, sc.matrix().clone())
                })
            };
            let r0 = run(SimdLevel::Scalar);
            let r1 = run(SimdLevel::Lanes);
            let tag = format!("{p} {}", mode.label());
            assert_bits_eq(
                &[r0.0, r0.1, r0.2],
                &[r1.0, r1.1, r1.2],
                &format!("{tag} terms"),
            );
            assert_bits_eq(r0.3.as_slice(), r1.3.as_slice(), &format!("{tag} scatter"));
        }
    }
}

/// The forced-fallback agreement test: whatever level the process resolved as
/// its default (AVX2 `Lanes` on capable hardware, `Scalar` under
/// `FML_SIMD=off` or on older CPUs), its results must bit-agree with an
/// explicitly forced scalar fallback — unless the user opted into the `fma`
/// fast mode, which is exempt from the bit contract by design.
///
/// Run once normally and once under `FML_SIMD=off` (CI does both), this pins
/// scalar/SIMD bit-agreement from both directions.
#[test]
fn default_level_agrees_with_forced_scalar_fallback() {
    let lv = simd::current_level();
    if !lv.is_bit_exact() {
        eprintln!("skipping: FML_SIMD=fma opts out of the bit contract");
        return;
    }
    let mut rng = TestRng::new(0x51D3);
    let (m, k, n) = (17, 23, 13);
    let a = Matrix::from_vec(m, k, rng.vec_in(m * k, -4.0, 4.0));
    let b = Matrix::from_vec(k, n, rng.vec_in(k * n, -4.0, 4.0));
    let x = rng.vec_in(k, -4.0, 4.0);
    for p in KernelPolicy::ALL {
        let (c_def, v_def) = {
            let mut c = Matrix::zeros(m, n);
            gemm::matmul_acc_with(p, &a, &b, &mut c);
            (c, gemm::matvec_with(p, &a, &x))
        };
        let (c_sc, v_sc) = simd::with_level(SimdLevel::Scalar, || {
            let mut c = Matrix::zeros(m, n);
            gemm::matmul_acc_with(p, &a, &b, &mut c);
            (c, gemm::matvec_with(p, &a, &x))
        });
        assert_bits_eq(
            c_def.as_slice(),
            c_sc.as_slice(),
            &format!("{p} matmul default={lv}"),
        );
        assert_bits_eq(&v_def, &v_sc, &format!("{p} matvec default={lv}"));
    }
}

/// The `fma` fast mode is NOT bit-exact but must stay within a few ULPs of
/// the scalar oracle (one rounding saved per multiply-add).
#[test]
fn fma_level_is_tolerance_equal_to_scalar_oracle() {
    let mut rng = TestRng::new(0x51D4);
    for (case, (m, k, n)) in shapes().into_iter().enumerate() {
        let a = Matrix::from_vec(m, k, rng.vec_in(m * k, -4.0, 4.0));
        let b = Matrix::from_vec(k, n, rng.vec_in(k * n, -4.0, 4.0));
        let x = rng.vec_in(k, -4.0, 4.0);
        for p in KernelPolicy::ALL {
            let run = |lv: SimdLevel| {
                simd::with_level(lv, || {
                    let mut c = Matrix::zeros(m, n);
                    gemm::matmul_acc_with(p, &a, &b, &mut c);
                    (c, gemm::matvec_with(p, &a, &x))
                })
            };
            let (c0, v0) = run(SimdLevel::Scalar);
            let (c1, v1) = run(SimdLevel::LanesFma);
            for (i, (s, f)) in c0.as_slice().iter().zip(c1.as_slice().iter()).enumerate() {
                assert!(
                    approx_eq(*s, *f, 1e-12 * (k as f64 + 1.0)),
                    "case {case} {p} matmul elem {i}: {s} vs {f}"
                );
            }
            for (i, (s, f)) in v0.iter().zip(v1.iter()).enumerate() {
                assert!(
                    approx_eq(*s, *f, 1e-12 * (k as f64 + 1.0)),
                    "case {case} {p} matvec elem {i}: {s} vs {f}"
                );
            }
        }
    }
}
