//! Property-based tests for the linear-algebra kernels.
//!
//! Two families of properties:
//!
//! 1. **Policy equivalence** — the `Blocked` and `BlockedParallel` kernels must
//!    agree with the `Naive` reference (`matmul`, `matvec`, `ger`,
//!    `BlockScatter`) within `TEST_EPS` across randomized shapes, explicitly
//!    including dimensions that are not multiples of the register tile
//!    (`MR=4`/`NR=8`), not multiples of the cache blocks (`KC/MC/NC`), and
//!    empty matrices.
//! 2. **Structural identities** — the block decompositions used by the
//!    factorized algorithms must agree with their dense counterparts, and
//!    Cholesky must invert arbitrary SPD matrices.
//!
//! Cases come from a deterministic splitmix64 stream (the build environment is
//! offline, so no external property-testing crate): every run replays the same
//! inputs and failures reproduce from the case index.

use fml_linalg::block::{BlockPartition, BlockQuadraticForm, BlockScatter};
use fml_linalg::cholesky::Cholesky;
use fml_linalg::csr::{self, CsrBlock};
use fml_linalg::policy::KernelPolicy;
use fml_linalg::simd::{self, SimdLevel};
use fml_linalg::sparse::{self, BlockVec};
use fml_linalg::{approx_eq, gemm, Matrix, TEST_EPS};

struct Gen(fml_linalg::testutil::TestRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(fml_linalg::testutil::TestRng::new(seed))
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.range(lo, hi)
    }

    /// Uniform in `[-5, 5)`.
    fn f64(&mut self) -> f64 {
        self.0.f64_in(-5.0, 5.0)
    }

    fn vec(&mut self, n: usize) -> Vec<f64> {
        self.0.vec_in(n, -5.0, 5.0)
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.vec(rows * cols))
    }

    /// A dimension split `[d_S, d_{R_1}, …]` with 1–3 blocks of size 1–3.
    fn partition(&mut self) -> Vec<usize> {
        let blocks = self.range(1, 4);
        (0..blocks).map(|_| self.range(1, 4)).collect()
    }
}

/// Shapes that stress every remainder path of the tiled kernels: smaller than
/// one register tile, straddling tile boundaries, straddling the `KC`/`MC`
/// cache blocks, and empty on each axis.
fn awkward_shapes(g: &mut Gen) -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (0, 0, 0),
        (0, 3, 2),
        (3, 0, 2),
        (3, 2, 0),
        (1, 1, 1),
        (4, 8, 8),     // exactly one register tile
        (5, 9, 17),    // one past a tile on every axis
        (3, 7, 6),     // smaller than a tile
        (67, 70, 130), // past MC=64 with remainders
        (64, 257, 24), // straddles KC=256
    ];
    for _ in 0..12 {
        shapes.push((g.range(0, 40), g.range(0, 40), g.range(0, 40)));
    }
    shapes
}

const POLICIES: [KernelPolicy; 2] = [KernelPolicy::Blocked, KernelPolicy::BlockedParallel];

#[test]
fn matmul_policies_match_naive_across_shapes() {
    let mut g = Gen::new(1);
    for (case, (m, k, n)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let a = g.matrix(m, k);
        let b = g.matrix(k, n);
        let mut reference = g.matrix(m, n); // nonzero C exercises accumulation
        let seed_c = reference.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &a, &b, &mut reference);
        for p in POLICIES {
            let mut c = seed_c.clone();
            gemm::matmul_acc_with(p, &a, &b, &mut c);
            let diff = reference.max_abs_diff(&c);
            assert!(
                diff < TEST_EPS * (k as f64 + 1.0),
                "case {case} {p}: {m}x{k}x{n} diff {diff}"
            );
        }
    }
}

#[test]
fn matvec_policies_match_naive_across_shapes() {
    let mut g = Gen::new(2);
    for (case, (m, k, _)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let a = g.matrix(m, k);
        let x = g.vec(k);
        let reference = gemm::matvec_with(KernelPolicy::Naive, &a, &x);
        for p in POLICIES {
            let y = gemm::matvec_with(p, &a, &x);
            assert_eq!(y.len(), reference.len());
            for (i, (&r, &v)) in reference.iter().zip(y.iter()).enumerate() {
                assert!(
                    approx_eq(r, v, TEST_EPS),
                    "case {case} {p}: row {i}: {r} vs {v}"
                );
            }
            let t_ref = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &reference);
            let t = gemm::matvec_transposed_with(p, &a, &reference);
            for (&r, &v) in t_ref.iter().zip(t.iter()) {
                assert!(approx_eq(r, v, TEST_EPS), "case {case} {p} transposed");
            }
        }
    }
}

#[test]
fn ger_policies_match_naive_across_shapes() {
    let mut g = Gen::new(3);
    for (case, (m, n, _)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let x = g.vec(m);
        let y = g.vec(n);
        let alpha = g.f64();
        let seed_a = g.matrix(m, n);
        let mut reference = seed_a.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &x, &y, &mut reference);
        for p in POLICIES {
            let mut a = seed_a.clone();
            gemm::ger_with(p, alpha, &x, &y, &mut a);
            let diff = reference.max_abs_diff(&a);
            assert!(diff < TEST_EPS, "case {case} {p}: {m}x{n} diff {diff}");
        }
        // the zero-skipping variant must agree with the dense one on any
        // input, under every policy
        for p in KernelPolicy::ALL {
            let mut sparse_a = seed_a.clone();
            gemm::ger_sparse_with(p, alpha, &x, &y, &mut sparse_a);
            assert!(
                reference.max_abs_diff(&sparse_a) < TEST_EPS,
                "case {case} {p} sparse"
            );
        }
    }
}

/// The policy-equivalence property re-checked under each forced bit-exact
/// SIMD level: `Blocked`/`BlockedParallel` agree with `Naive` within tolerance
/// whether the lane kernels run through AVX2 or the scalar fallback — and the
/// two levels agree with *each other* bit-for-bit (the SIMD layer's core
/// contract; `tests/simd_equivalence.rs` covers it kernel by kernel).
#[test]
fn policy_equivalence_holds_under_every_bit_exact_simd_level() {
    let mut g = Gen::new(42);
    for (case, (m, k, n)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let a = g.matrix(m, k);
        let b = g.matrix(k, n);
        let seed_c = g.matrix(m, n);
        let x = g.vec(k);
        let mut reference = seed_c.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &a, &b, &mut reference);
        let mv_ref = gemm::matvec_with(KernelPolicy::Naive, &a, &x);
        for p in POLICIES {
            let mut per_level: Vec<(Matrix, Vec<f64>)> = Vec::new();
            for lv in [SimdLevel::Scalar, SimdLevel::Lanes] {
                simd::with_level(lv, || {
                    let mut c = seed_c.clone();
                    gemm::matmul_acc_with(p, &a, &b, &mut c);
                    let diff = reference.max_abs_diff(&c);
                    assert!(
                        diff < TEST_EPS * (k as f64 + 1.0),
                        "case {case} {p} {lv}: {m}x{k}x{n} diff {diff}"
                    );
                    let mv = gemm::matvec_with(p, &a, &x);
                    for (i, (&r, &v)) in mv_ref.iter().zip(mv.iter()).enumerate() {
                        assert!(
                            approx_eq(r, v, TEST_EPS),
                            "case {case} {p} {lv}: row {i}: {r} vs {v}"
                        );
                    }
                    per_level.push((c, mv));
                });
            }
            let (c_scalar, mv_scalar) = &per_level[0];
            let (c_lanes, mv_lanes) = &per_level[1];
            for (s, l) in c_scalar
                .as_slice()
                .iter()
                .chain(mv_scalar.iter())
                .zip(c_lanes.as_slice().iter().chain(mv_lanes.iter()))
            {
                assert_eq!(
                    s.to_bits(),
                    l.to_bits(),
                    "case {case} {p}: scalar vs lanes bit mismatch: {s} vs {l}"
                );
            }
        }
    }
}

#[test]
fn zero_skipping_matmul_matches_naive_across_policies() {
    let mut g = Gen::new(10);
    for (case, (m, k, n)) in awkward_shapes(&mut g).into_iter().enumerate() {
        // mostly-zero A so the skip path actually fires
        let mut a = Matrix::zeros(m, k);
        for i in 0..m {
            for j in 0..k {
                if g.range(0, 4) == 0 {
                    a[(i, j)] = g.f64();
                }
            }
        }
        let b = g.matrix(k, n);
        let seed_c = g.matrix(m, n);
        let mut reference = seed_c.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &a, &b, &mut reference);
        for p in KernelPolicy::ALL {
            let mut c = seed_c.clone();
            gemm::matmul_acc_sparse_with(p, &a, &b, &mut c);
            let diff = reference.max_abs_diff(&c);
            assert!(
                diff < TEST_EPS * (k as f64 + 1.0),
                "case {case} {p}: {m}x{k}x{n} diff {diff}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// One-hot kernels: bit-exact against the dense naive oracle under EVERY policy
// ---------------------------------------------------------------------------

/// A randomized one-hot layout: per-column cardinalities of 1–4 (so
/// cardinality-1 "always on" columns occur regularly), possibly zero columns
/// (the empty block).
fn onehot_layout(g: &mut Gen) -> Vec<usize> {
    let columns = g.range(0, 5);
    (0..columns).map(|_| g.range(1, 5)).collect()
}

/// Draws one row over a layout: one active absolute index per column.
fn draw_onehot_row(g: &mut Gen, cards: &[usize]) -> Vec<u32> {
    let mut idx = Vec::with_capacity(cards.len());
    let mut offset = 0usize;
    for &card in cards {
        idx.push((offset + g.range(0, card)) as u32);
        offset += card;
    }
    idx
}

/// `(encoded width, active indices)` of a fresh layout and row.
fn onehot_row(g: &mut Gen) -> (usize, Vec<u32>) {
    let cards = onehot_layout(g);
    let width = cards.iter().sum();
    (width, draw_onehot_row(g, &cards))
}

fn densify(idx: &[u32], width: usize) -> Vec<f64> {
    let mut v = vec![0.0; width];
    for &i in idx {
        v[i as usize] = 1.0;
    }
    v
}

#[test]
fn onehot_gathers_are_bit_exact_against_naive_dense() {
    let mut g = Gen::new(11);
    for case in 0..64 {
        let (width, idx) = onehot_row(&mut g);
        let x = densify(&idx, width);
        let cols = g.range(1, 8);
        let a = g.matrix(width, cols);
        let at = a.transpose();
        for p in KernelPolicy::ALL {
            // Aᵀ·x (row gather) vs naive dense transposed GEMV
            let dense_t = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &x);
            assert_eq!(
                sparse::matvec_transposed_onehot_with(p, &a, &idx),
                dense_t,
                "case {case} {p} transposed"
            );
            // A·x (column gather) vs naive dense GEMV
            let dense = gemm::matvec_with(KernelPolicy::Naive, &at, &x);
            assert_eq!(
                sparse::matvec_onehot_with(p, &at, &idx),
                dense,
                "case {case} {p} gemv"
            );
        }
    }
}

#[test]
fn spmm_onehot_is_bit_exact_against_naive_dense_gemm() {
    let mut g = Gen::new(12);
    for case in 0..48 {
        // A shared per-column layout (like a relation's one-hot schema): every
        // row draws one fresh index per column sub-range.  Includes zero-row
        // blocks; zero-column widths are skipped (no block to multiply).
        let cards = onehot_layout(&mut g);
        let width: usize = cards.iter().sum();
        if width == 0 {
            continue;
        }
        let nnz = cards.len();
        let rows = g.range(0, 12);
        let mut rows_idx = Vec::with_capacity(rows * nnz);
        let mut x = Matrix::zeros(rows, width);
        for r in 0..rows {
            for j in draw_onehot_row(&mut g, &cards) {
                rows_idx.push(j);
                x[(r, j as usize)] = 1.0;
            }
        }
        let n = g.range(1, 9);
        let b = g.matrix(width, n);
        let seed_c = g.matrix(rows, n);
        let mut reference = seed_c.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &x, &b, &mut reference);
        for p in KernelPolicy::ALL {
            let mut c = seed_c.clone();
            sparse::spmm_onehot_with(p, &rows_idx, nnz, &b, &mut c);
            assert_eq!(c, reference, "case {case} {p}: {rows}x{width}x{n}");
        }
    }
}

#[test]
fn onehot_scatters_are_bit_exact_against_naive_dense_ger() {
    let mut g = Gen::new(13);
    for case in 0..64 {
        let (width, idx) = onehot_row(&mut g);
        let other = g.range(1, 8);
        let y = g.vec(other);
        let alpha = g.f64();
        // row scatter
        let seed = g.matrix(width, other);
        let x_rows = densify(&idx, width);
        let mut reference = seed.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &x_rows, &y, &mut reference);
        for p in KernelPolicy::ALL {
            let mut a = seed.clone();
            sparse::ger_onehot_with(p, alpha, &idx, &y, &mut a);
            assert_eq!(a, reference, "case {case} {p} rows");
        }
        // column scatter
        let seed = g.matrix(other, width);
        let mut reference = seed.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &y, &x_rows, &mut reference);
        for p in KernelPolicy::ALL {
            let mut a = seed.clone();
            sparse::ger_onehot_cols_with(p, alpha, &y, &idx, &mut a);
            assert_eq!(a, reference, "case {case} {p} cols");
        }
    }
}

#[test]
fn onehot_quadratic_forms_match_naive_dense() {
    let mut g = Gen::new(14);
    for case in 0..64 {
        let (width, idx) = onehot_row(&mut g);
        if width == 0 {
            continue;
        }
        let x = densify(&idx, width);
        let a = g.matrix(width, width);
        let y = g.vec(width);
        let dense = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &y);
        for p in KernelPolicy::ALL {
            assert_eq!(
                sparse::quadratic_form_onehot_with(p, &idx, &a, &y),
                dense,
                "case {case} {p} one-hot left"
            );
        }
        // both sides one-hot
        let (_, jdx_raw) = onehot_row(&mut g);
        let jdx: Vec<u32> = jdx_raw
            .into_iter()
            .filter(|&j| (j as usize) < width)
            .collect();
        let yj = densify(&jdx, width);
        let dense_pair = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &yj);
        let sparse_pair = sparse::quadratic_form_onehot_pair(&idx, &a, &jdx);
        assert!(
            approx_eq(dense_pair, sparse_pair, 1e-12),
            "case {case} pair: {dense_pair} vs {sparse_pair}"
        );
    }
}

#[test]
fn block_dispatch_matches_dense_blocks_for_onehot_representations() {
    let mut g = Gen::new(15);
    for case in 0..48 {
        let d_s = g.range(1, 4);
        let (d_r, idx) = onehot_row(&mut g);
        if d_r == 0 {
            continue;
        }
        let partition = BlockPartition::binary(d_s, d_r);
        let d = d_s + d_r;
        let m = g.matrix(d, d);
        let u = g.vec(d_s);
        let x = densify(&idx, d_r);
        let alpha = g.f64();

        for p in KernelPolicy::ALL {
            let form = BlockQuadraticForm::new_with(partition.clone(), &m, p);
            // term_rep across representation mixes vs the dense term
            let t_dense = form.term(0, 1, &u, &x);
            let t_rep = form.term_rep(0, 1, BlockVec::Dense(&u), BlockVec::OneHot(&idx));
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (d,o)");
            let t_dense = form.term(1, 0, &x, &u);
            let t_rep = form.term_rep(1, 0, BlockVec::OneHot(&idx), BlockVec::Dense(&u));
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (o,d)");
            let t_dense = form.term(1, 1, &x, &x);
            let t_rep = form.term_rep(1, 1, BlockVec::OneHot(&idx), BlockVec::OneHot(&idx));
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (o,o)");

            // add_outer_rep vs dense add_outer
            let mut dense_sc = BlockScatter::new_with(partition.clone(), p);
            dense_sc.add_outer(0, 1, alpha, &u, &x);
            dense_sc.add_outer(1, 0, alpha, &x, &u);
            dense_sc.add_outer(1, 1, alpha, &x, &x);
            let mut rep_sc = BlockScatter::new_with(partition.clone(), p);
            rep_sc.add_outer_rep(0, 1, alpha, BlockVec::Dense(&u), BlockVec::OneHot(&idx));
            rep_sc.add_outer_rep(1, 0, alpha, BlockVec::OneHot(&idx), BlockVec::Dense(&u));
            rep_sc.add_outer_rep(1, 1, alpha, BlockVec::OneHot(&idx), BlockVec::OneHot(&idx));
            assert_eq!(
                dense_sc.matrix(),
                rep_sc.matrix(),
                "case {case} {p} scatter"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// General CSR kernels: equal to the dense naive oracle under EVERY policy
// (same multiplications in the same ascending order; skipped terms are exact
// zeros).  Cases deliberately include empty rows, all-zero blocks and
// single-element blocks.
// ---------------------------------------------------------------------------

/// Draws a sparse row over `width` columns: ascending indices, ~25% of the
/// positions nonzero, values in `[-5, 5)` (never exactly 0 for kept entries).
fn draw_csr_row(g: &mut Gen, width: usize) -> (Vec<u32>, Vec<f64>) {
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for j in 0..width {
        if g.range(0, 4) == 0 {
            let mut v = g.f64();
            if v == 0.0 {
                v = 1.0;
            }
            idx.push(j as u32);
            vals.push(v);
        }
    }
    (idx, vals)
}

fn densify_csr(idx: &[u32], vals: &[f64], width: usize) -> Vec<f64> {
    let mut v = vec![0.0; width];
    for (&i, &w) in idx.iter().zip(vals.iter()) {
        v[i as usize] = w;
    }
    v
}

/// Edge-shape sparse rows every CSR property sweep must include: the empty
/// row, the all-zero width-`w` row, and a single-element block.
fn csr_edge_rows(g: &mut Gen) -> Vec<(usize, Vec<u32>, Vec<f64>)> {
    let mut rows = vec![
        (0, vec![], vec![]),                  // zero-width block
        (7, vec![], vec![]),                  // all-zero row
        (1, vec![0u32], vec![2.5]),           // single-element block, occupied
        (1, vec![], vec![]),                  // single-element block, empty
        (9, vec![3u32, 8], vec![-1.25, 0.5]), // fixed awkward row
    ];
    for _ in 0..12 {
        let width = g.range(1, 24);
        let (idx, vals) = draw_csr_row(g, width);
        rows.push((width, idx, vals));
    }
    rows
}

#[test]
fn csr_gathers_are_exact_against_naive_dense() {
    let mut g = Gen::new(21);
    for (case, (width, idx, vals)) in csr_edge_rows(&mut g).into_iter().enumerate() {
        let x = densify_csr(&idx, &vals, width);
        let cols = g.range(1, 8);
        let a = g.matrix(width, cols);
        let at = a.transpose();
        for p in KernelPolicy::ALL {
            let dense_t = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &x);
            assert_eq!(
                csr::matvec_transposed_csr_with(p, &a, &idx, &vals),
                dense_t,
                "case {case} {p} transposed"
            );
            let dense = gemm::matvec_with(KernelPolicy::Naive, &at, &x);
            assert_eq!(
                csr::matvec_csr_with(p, &at, &idx, &vals),
                dense,
                "case {case} {p} gemv"
            );
        }
    }
}

#[test]
fn spmm_csr_is_exact_against_naive_dense_gemm() {
    let mut g = Gen::new(22);
    for case in 0..48 {
        let width = g.range(1, 20);
        let rows = g.range(0, 12); // includes zero-row blocks
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = vec![0usize];
        let mut x = Matrix::zeros(rows, width);
        for r in 0..rows {
            // every few rows stay completely empty
            if g.range(0, 4) != 0 {
                let (idx, vals) = draw_csr_row(&mut g, width);
                for (&j, &v) in idx.iter().zip(vals.iter()) {
                    x[(r, j as usize)] = v;
                }
                col_idx.extend_from_slice(&idx);
                values.extend_from_slice(&vals);
            }
            row_ptr.push(values.len());
        }
        let block = CsrBlock::new(values, col_idx, row_ptr, width);
        assert_eq!(block.to_matrix(), x, "case {case}: round trip");
        let n = g.range(1, 9);
        let b = g.matrix(width, n);
        let seed_c = g.matrix(rows, n);
        let mut reference = seed_c.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &x, &b, &mut reference);
        for p in KernelPolicy::ALL {
            let mut c = seed_c.clone();
            csr::spmm_csr_with(p, &block, &b, &mut c);
            assert_eq!(c, reference, "case {case} {p}: {rows}x{width}x{n}");
        }
    }
}

#[test]
fn csr_scatters_are_exact_against_naive_dense_ger() {
    let mut g = Gen::new(23);
    for (case, (width, idx, vals)) in csr_edge_rows(&mut g).into_iter().enumerate() {
        let other = g.range(1, 8);
        let y = g.vec(other);
        let alpha = g.f64();
        let x = densify_csr(&idx, &vals, width);
        // row scatter
        let seed = g.matrix(width, other);
        let mut reference = seed.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &x, &y, &mut reference);
        for p in KernelPolicy::ALL {
            let mut a = seed.clone();
            csr::ger_csr_with(p, alpha, &idx, &vals, &y, &mut a);
            assert_eq!(a, reference, "case {case} {p} rows");
        }
        // column scatter
        let seed = g.matrix(other, width);
        let mut reference = seed.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &y, &x, &mut reference);
        for p in KernelPolicy::ALL {
            let mut a = seed.clone();
            csr::ger_csr_cols_with(p, alpha, &y, &idx, &vals, &mut a);
            assert_eq!(a, reference, "case {case} {p} cols");
        }
    }
}

#[test]
fn csr_quadratic_forms_are_exact_against_naive_dense() {
    let mut g = Gen::new(24);
    for (case, (width, idx, vals)) in csr_edge_rows(&mut g).into_iter().enumerate() {
        if width == 0 {
            continue;
        }
        let x = densify_csr(&idx, &vals, width);
        let a = g.matrix(width, width);
        let y = g.vec(width);
        let dense = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &y);
        for p in KernelPolicy::ALL {
            assert_eq!(
                csr::quadratic_form_csr_with(p, &idx, &vals, &a, &y),
                dense,
                "case {case} {p} csr left"
            );
        }
        // both sides sparse
        let (jdx, jvals) = draw_csr_row(&mut g, width);
        let yj = densify_csr(&jdx, &jvals, width);
        let dense_pair = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &yj);
        assert_eq!(
            csr::quadratic_form_csr_pair(&idx, &vals, &a, &jdx, &jvals),
            dense_pair,
            "case {case} pair"
        );
    }
}

#[test]
fn block_dispatch_matches_dense_blocks_for_csr_representations() {
    let mut g = Gen::new(25);
    for case in 0..48 {
        let d_s = g.range(1, 4);
        let d_r = g.range(1, 12);
        let (idx, vals) = draw_csr_row(&mut g, d_r);
        let partition = BlockPartition::binary(d_s, d_r);
        let d = d_s + d_r;
        let m = g.matrix(d, d);
        let u = g.vec(d_s);
        let x = densify_csr(&idx, &vals, d_r);
        let alpha = g.f64();
        let rep = BlockVec::Csr {
            idx: &idx,
            vals: &vals,
        };

        for p in KernelPolicy::ALL {
            let form = BlockQuadraticForm::new_with(partition.clone(), &m, p);
            let t_dense = form.term(0, 1, &u, &x);
            let t_rep = form.term_rep(0, 1, BlockVec::Dense(&u), rep);
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (d,c)");
            let t_dense = form.term(1, 0, &x, &u);
            let t_rep = form.term_rep(1, 0, rep, BlockVec::Dense(&u));
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (c,d)");
            let t_dense = form.term(1, 1, &x, &x);
            let t_rep = form.term_rep(1, 1, rep, rep);
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (c,c)");

            let mut dense_sc = BlockScatter::new_with(partition.clone(), p);
            dense_sc.add_outer(0, 1, alpha, &u, &x);
            dense_sc.add_outer(1, 0, alpha, &x, &u);
            dense_sc.add_outer(1, 1, alpha, &x, &x);
            let mut rep_sc = BlockScatter::new_with(partition.clone(), p);
            rep_sc.add_outer_rep(0, 1, alpha, BlockVec::Dense(&u), rep);
            rep_sc.add_outer_rep(1, 0, alpha, rep, BlockVec::Dense(&u));
            rep_sc.add_outer_rep(1, 1, alpha, rep, rep);
            assert_eq!(
                dense_sc.matrix(),
                rep_sc.matrix(),
                "case {case} {p} scatter"
            );
        }
    }
}

#[test]
fn block_dispatch_handles_mixed_onehot_csr_pairs() {
    let mut g = Gen::new(26);
    for case in 0..32 {
        let d = g.range(2, 10);
        let (cidx, cvals) = draw_csr_row(&mut g, d);
        let oidx: Vec<u32> = (0..d as u32).filter(|_| g.range(0, 3) == 0).collect();
        let xo = densify(&oidx, d);
        let xc = densify_csr(&cidx, &cvals, d);
        let partition = BlockPartition::binary(d, d);
        let m = g.matrix(2 * d, 2 * d);
        let alpha = g.f64();
        let onehot = BlockVec::OneHot(&oidx);
        let csr_rep = BlockVec::Csr {
            idx: &cidx,
            vals: &cvals,
        };
        for p in KernelPolicy::ALL {
            let form = BlockQuadraticForm::new_with(partition.clone(), &m, p);
            let t_dense = form.term(0, 1, &xo, &xc);
            let t_rep = form.term_rep(0, 1, onehot, csr_rep);
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (o,c)");
            let t_dense = form.term(1, 0, &xc, &xo);
            let t_rep = form.term_rep(1, 0, csr_rep, onehot);
            assert!(approx_eq(t_dense, t_rep, 1e-12), "case {case} {p} (c,o)");

            let mut dense_sc = BlockScatter::new_with(partition.clone(), p);
            dense_sc.add_outer(0, 1, alpha, &xo, &xc);
            dense_sc.add_outer(1, 0, alpha, &xc, &xo);
            let mut rep_sc = BlockScatter::new_with(partition.clone(), p);
            rep_sc.add_outer_rep(0, 1, alpha, onehot, csr_rep);
            rep_sc.add_outer_rep(1, 0, alpha, csr_rep, onehot);
            assert_eq!(
                dense_sc.matrix(),
                rep_sc.matrix(),
                "case {case} {p} mixed scatter"
            );
        }
    }
}

#[test]
fn block_scatter_policies_match_naive() {
    let mut g = Gen::new(4);
    for case in 0..48 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let x = g.vec(d);
        let gamma = g.f64().abs();

        let mut reference = BlockScatter::new_with(partition.clone(), KernelPolicy::Naive);
        reference.add_dense(gamma, &x);

        for p in POLICIES {
            // dense accumulation under the policy
            let mut dense = BlockScatter::new_with(partition.clone(), p);
            dense.add_dense(gamma, &x);
            assert!(
                reference.matrix().max_abs_diff(dense.matrix()) < TEST_EPS,
                "case {case} {p} dense"
            );
            // factorized tile-by-tile accumulation under the policy
            let parts = partition.split(&x);
            let mut fact = BlockScatter::new_with(partition.clone(), p);
            for i in 0..parts.len() {
                for j in 0..parts.len() {
                    fact.add_outer(i, j, gamma, parts[i], parts[j]);
                }
            }
            assert!(
                reference.matrix().max_abs_diff(fact.matrix()) < TEST_EPS,
                "case {case} {p} tiled"
            );
        }
    }
}

#[test]
fn scatter_merge_matches_sequential_accumulation() {
    let mut g = Gen::new(5);
    for case in 0..16 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let xs: Vec<Vec<f64>> = (0..10).map(|_| g.vec(d)).collect();

        let mut sequential = BlockScatter::new(partition.clone());
        for x in &xs {
            sequential.add_dense(1.0, x);
        }

        // two workers over a fixed split, merged in worker order
        let mut w0 = BlockScatter::new(partition.clone());
        let mut w1 = BlockScatter::new(partition.clone());
        for x in &xs[..5] {
            w0.add_dense(1.0, x);
        }
        for x in &xs[5..] {
            w1.add_dense(1.0, x);
        }
        w0.merge_from(&w1);
        assert!(
            sequential.matrix().max_abs_diff(w0.matrix()) < TEST_EPS,
            "case {case}"
        );
    }
}

#[test]
fn blocked_quadratic_form_matches_dense() {
    let mut g = Gen::new(6);
    for case in 0..64 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let m = g.matrix(d, d);
        let x = g.vec(d);
        let dense = gemm::quadratic_form_sym_with(KernelPolicy::Naive, &x, &m);
        for p in [
            KernelPolicy::Naive,
            KernelPolicy::Blocked,
            KernelPolicy::BlockedParallel,
        ] {
            let blocked = BlockQuadraticForm::new_with(partition.clone(), &m, p).eval_dense(&x);
            assert!(
                approx_eq(dense, blocked, 1e-9),
                "case {case} {p}: {dense} vs {blocked}"
            );
        }
    }
}

#[test]
fn cholesky_inverts_spd_matrices() {
    let mut g = Gen::new(7);
    for case in 0..64 {
        let dim = g.range(1, 6);
        // Build an SPD matrix A = B·Bᵀ + I from arbitrary B.
        let b = g.matrix(dim, dim);
        let mut a = gemm::matmul(&b, &b.transpose());
        a.add_diag(1.0);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = gemm::matmul(&inv, &a);
        assert!(
            prod.max_abs_diff(&Matrix::identity(dim)) < 1e-8,
            "case {case}"
        );
        assert!(ch.log_det().is_finite(), "case {case}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut g = Gen::new(8);
    for case in 0..64 {
        let dim = g.range(1, 5);
        let a = g.matrix(dim, dim);
        let x = g.vec(dim);
        let y = g.vec(dim);
        // A(x + y) == Ax + Ay
        let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let lhs = gemm::matvec(&a, &sum);
        let ax = gemm::matvec(&a, &x);
        let ay = gemm::matvec(&a, &y);
        for i in 0..dim {
            assert!(
                approx_eq(lhs[i], ax[i] + ay[i], 1e-9),
                "case {case} row {i}"
            );
        }
    }
}

#[test]
fn transpose_is_involutive_and_preserves_frobenius() {
    let mut g = Gen::new(9);
    for case in 0..64 {
        let rows = g.range(1, 6);
        let cols = g.range(1, 6);
        let m = g.matrix(rows, cols);
        let t = m.transpose();
        assert_eq!(t.transpose(), m, "case {case}");
        assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
    }
}
