//! Property-based tests for the linear-algebra kernels.
//!
//! Two families of properties:
//!
//! 1. **Policy equivalence** — the `Blocked` and `BlockedParallel` kernels must
//!    agree with the `Naive` reference (`matmul`, `matvec`, `ger`,
//!    `BlockScatter`) within `TEST_EPS` across randomized shapes, explicitly
//!    including dimensions that are not multiples of the register tile
//!    (`MR=4`/`NR=8`), not multiples of the cache blocks (`KC/MC/NC`), and
//!    empty matrices.
//! 2. **Structural identities** — the block decompositions used by the
//!    factorized algorithms must agree with their dense counterparts, and
//!    Cholesky must invert arbitrary SPD matrices.
//!
//! Cases come from a deterministic splitmix64 stream (the build environment is
//! offline, so no external property-testing crate): every run replays the same
//! inputs and failures reproduce from the case index.

use fml_linalg::block::{BlockPartition, BlockQuadraticForm, BlockScatter};
use fml_linalg::cholesky::Cholesky;
use fml_linalg::policy::KernelPolicy;
use fml_linalg::{approx_eq, gemm, Matrix, TEST_EPS};

struct Gen(fml_linalg::testutil::TestRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(fml_linalg::testutil::TestRng::new(seed))
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.range(lo, hi)
    }

    /// Uniform in `[-5, 5)`.
    fn f64(&mut self) -> f64 {
        self.0.f64_in(-5.0, 5.0)
    }

    fn vec(&mut self, n: usize) -> Vec<f64> {
        self.0.vec_in(n, -5.0, 5.0)
    }

    fn matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.vec(rows * cols))
    }

    /// A dimension split `[d_S, d_{R_1}, …]` with 1–3 blocks of size 1–3.
    fn partition(&mut self) -> Vec<usize> {
        let blocks = self.range(1, 4);
        (0..blocks).map(|_| self.range(1, 4)).collect()
    }
}

/// Shapes that stress every remainder path of the tiled kernels: smaller than
/// one register tile, straddling tile boundaries, straddling the `KC`/`MC`
/// cache blocks, and empty on each axis.
fn awkward_shapes(g: &mut Gen) -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (0, 0, 0),
        (0, 3, 2),
        (3, 0, 2),
        (3, 2, 0),
        (1, 1, 1),
        (4, 8, 8),     // exactly one register tile
        (5, 9, 17),    // one past a tile on every axis
        (3, 7, 6),     // smaller than a tile
        (67, 70, 130), // past MC=64 with remainders
        (64, 257, 24), // straddles KC=256
    ];
    for _ in 0..12 {
        shapes.push((g.range(0, 40), g.range(0, 40), g.range(0, 40)));
    }
    shapes
}

const POLICIES: [KernelPolicy; 2] = [KernelPolicy::Blocked, KernelPolicy::BlockedParallel];

#[test]
fn matmul_policies_match_naive_across_shapes() {
    let mut g = Gen::new(1);
    for (case, (m, k, n)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let a = g.matrix(m, k);
        let b = g.matrix(k, n);
        let mut reference = g.matrix(m, n); // nonzero C exercises accumulation
        let seed_c = reference.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &a, &b, &mut reference);
        for p in POLICIES {
            let mut c = seed_c.clone();
            gemm::matmul_acc_with(p, &a, &b, &mut c);
            let diff = reference.max_abs_diff(&c);
            assert!(
                diff < TEST_EPS * (k as f64 + 1.0),
                "case {case} {p}: {m}x{k}x{n} diff {diff}"
            );
        }
    }
}

#[test]
fn matvec_policies_match_naive_across_shapes() {
    let mut g = Gen::new(2);
    for (case, (m, k, _)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let a = g.matrix(m, k);
        let x = g.vec(k);
        let reference = gemm::matvec_with(KernelPolicy::Naive, &a, &x);
        for p in POLICIES {
            let y = gemm::matvec_with(p, &a, &x);
            assert_eq!(y.len(), reference.len());
            for (i, (&r, &v)) in reference.iter().zip(y.iter()).enumerate() {
                assert!(
                    approx_eq(r, v, TEST_EPS),
                    "case {case} {p}: row {i}: {r} vs {v}"
                );
            }
            let t_ref = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &reference);
            let t = gemm::matvec_transposed_with(p, &a, &reference);
            for (&r, &v) in t_ref.iter().zip(t.iter()) {
                assert!(approx_eq(r, v, TEST_EPS), "case {case} {p} transposed");
            }
        }
    }
}

#[test]
fn ger_policies_match_naive_across_shapes() {
    let mut g = Gen::new(3);
    for (case, (m, n, _)) in awkward_shapes(&mut g).into_iter().enumerate() {
        let x = g.vec(m);
        let y = g.vec(n);
        let alpha = g.f64();
        let seed_a = g.matrix(m, n);
        let mut reference = seed_a.clone();
        gemm::ger_with(KernelPolicy::Naive, alpha, &x, &y, &mut reference);
        for p in POLICIES {
            let mut a = seed_a.clone();
            gemm::ger_with(p, alpha, &x, &y, &mut a);
            let diff = reference.max_abs_diff(&a);
            assert!(diff < TEST_EPS, "case {case} {p}: {m}x{n} diff {diff}");
        }
        // the sparse variant must agree with the dense one on any input
        let mut sparse = seed_a.clone();
        gemm::ger_sparse(alpha, &x, &y, &mut sparse);
        assert!(
            reference.max_abs_diff(&sparse) < TEST_EPS,
            "case {case} sparse"
        );
    }
}

#[test]
fn block_scatter_policies_match_naive() {
    let mut g = Gen::new(4);
    for case in 0..48 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let x = g.vec(d);
        let gamma = g.f64().abs();

        let mut reference = BlockScatter::new_with(partition.clone(), KernelPolicy::Naive);
        reference.add_dense(gamma, &x);

        for p in POLICIES {
            // dense accumulation under the policy
            let mut dense = BlockScatter::new_with(partition.clone(), p);
            dense.add_dense(gamma, &x);
            assert!(
                reference.matrix().max_abs_diff(dense.matrix()) < TEST_EPS,
                "case {case} {p} dense"
            );
            // factorized tile-by-tile accumulation under the policy
            let parts = partition.split(&x);
            let mut fact = BlockScatter::new_with(partition.clone(), p);
            for i in 0..parts.len() {
                for j in 0..parts.len() {
                    fact.add_outer(i, j, gamma, parts[i], parts[j]);
                }
            }
            assert!(
                reference.matrix().max_abs_diff(fact.matrix()) < TEST_EPS,
                "case {case} {p} tiled"
            );
        }
    }
}

#[test]
fn scatter_merge_matches_sequential_accumulation() {
    let mut g = Gen::new(5);
    for case in 0..16 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let xs: Vec<Vec<f64>> = (0..10).map(|_| g.vec(d)).collect();

        let mut sequential = BlockScatter::new(partition.clone());
        for x in &xs {
            sequential.add_dense(1.0, x);
        }

        // two workers over a fixed split, merged in worker order
        let mut w0 = BlockScatter::new(partition.clone());
        let mut w1 = BlockScatter::new(partition.clone());
        for x in &xs[..5] {
            w0.add_dense(1.0, x);
        }
        for x in &xs[5..] {
            w1.add_dense(1.0, x);
        }
        w0.merge_from(&w1);
        assert!(
            sequential.matrix().max_abs_diff(w0.matrix()) < TEST_EPS,
            "case {case}"
        );
    }
}

#[test]
fn blocked_quadratic_form_matches_dense() {
    let mut g = Gen::new(6);
    for case in 0..64 {
        let sizes = g.partition();
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let m = g.matrix(d, d);
        let x = g.vec(d);
        let dense = gemm::quadratic_form_sym_with(KernelPolicy::Naive, &x, &m);
        for p in [
            KernelPolicy::Naive,
            KernelPolicy::Blocked,
            KernelPolicy::BlockedParallel,
        ] {
            let blocked = BlockQuadraticForm::new_with(partition.clone(), &m, p).eval_dense(&x);
            assert!(
                approx_eq(dense, blocked, 1e-9),
                "case {case} {p}: {dense} vs {blocked}"
            );
        }
    }
}

#[test]
fn cholesky_inverts_spd_matrices() {
    let mut g = Gen::new(7);
    for case in 0..64 {
        let dim = g.range(1, 6);
        // Build an SPD matrix A = B·Bᵀ + I from arbitrary B.
        let b = g.matrix(dim, dim);
        let mut a = gemm::matmul(&b, &b.transpose());
        a.add_diag(1.0);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = gemm::matmul(&inv, &a);
        assert!(
            prod.max_abs_diff(&Matrix::identity(dim)) < 1e-8,
            "case {case}"
        );
        assert!(ch.log_det().is_finite(), "case {case}");
    }
}

#[test]
fn matmul_distributes_over_addition() {
    let mut g = Gen::new(8);
    for case in 0..64 {
        let dim = g.range(1, 5);
        let a = g.matrix(dim, dim);
        let x = g.vec(dim);
        let y = g.vec(dim);
        // A(x + y) == Ax + Ay
        let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let lhs = gemm::matvec(&a, &sum);
        let ax = gemm::matvec(&a, &x);
        let ay = gemm::matvec(&a, &y);
        for i in 0..dim {
            assert!(
                approx_eq(lhs[i], ax[i] + ay[i], 1e-9),
                "case {case} row {i}"
            );
        }
    }
}

#[test]
fn transpose_is_involutive_and_preserves_frobenius() {
    let mut g = Gen::new(9);
    for case in 0..64 {
        let rows = g.range(1, 6);
        let cols = g.range(1, 6);
        let m = g.matrix(rows, cols);
        let t = m.transpose();
        assert_eq!(t.transpose(), m, "case {case}");
        assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
    }
}
