//! Property-based tests for the linear-algebra kernels: the block decompositions
//! used by the factorized algorithms must agree with their dense counterparts for
//! arbitrary inputs, and Cholesky must invert arbitrary SPD matrices.

use fml_linalg::block::{BlockPartition, BlockQuadraticForm, BlockScatter};
use fml_linalg::cholesky::Cholesky;
use fml_linalg::gemm;
use fml_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a dimension split [d_s, d_r1, ...] with total dimension <= 8.
fn partition_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..4, 1..4)
}

fn vector_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, len..=len)
}

fn matrix_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, dim * dim..=dim * dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_quadratic_form_matches_dense(sizes in partition_strategy(), seed in 0u64..1000) {
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        // deterministic pseudo-random data from the seed
        let data: Vec<f64> = (0..d * d).map(|i| ((i as u64 * 31 + seed * 17) % 97) as f64 / 10.0 - 4.0).collect();
        let x: Vec<f64> = (0..d).map(|i| ((i as u64 * 13 + seed * 7) % 89) as f64 / 10.0 - 4.0).collect();
        let m = Matrix::from_vec(d, d, data);
        let dense = gemm::quadratic_form_sym(&x, &m);
        let blocked = BlockQuadraticForm::new(partition, &m).eval_dense(&x);
        prop_assert!(fml_linalg::approx_eq(dense, blocked, 1e-9), "{dense} vs {blocked}");
    }

    #[test]
    fn blocked_scatter_matches_dense_outer_product(sizes in partition_strategy(), gamma in 0.0f64..2.0, seed in 0u64..1000) {
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let x: Vec<f64> = (0..d).map(|i| ((i as u64 * 23 + seed * 11) % 83) as f64 / 10.0 - 4.0).collect();
        let mut dense = BlockScatter::new(partition.clone());
        dense.add_dense(gamma, &x);
        let mut blocked = BlockScatter::new(partition.clone());
        let parts = partition.split(&x);
        for i in 0..parts.len() {
            for j in 0..parts.len() {
                blocked.add_outer(i, j, gamma, parts[i], parts[j]);
            }
        }
        prop_assert!(dense.matrix().max_abs_diff(blocked.matrix()) < 1e-10);
    }

    #[test]
    fn cholesky_inverts_spd_matrices(dim in 1usize..6, vals in prop::collection::vec(-3.0f64..3.0, 36)) {
        // Build an SPD matrix A = B·Bᵀ + I from arbitrary B.
        let b = Matrix::from_vec(dim, dim, vals[..dim * dim].to_vec());
        let mut a = gemm::matmul(&b, &b.transpose());
        a.add_diag(1.0);
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = gemm::matmul(&inv, &a);
        prop_assert!(prod.max_abs_diff(&Matrix::identity(dim)) < 1e-8);
        // log|A| is finite and the determinant positive
        prop_assert!(ch.log_det().is_finite());
    }

    #[test]
    fn matmul_distributes_over_addition(dim in 1usize..5, m in matrix_strategy(4), x in vector_strategy(4), y in vector_strategy(4)) {
        let a = Matrix::from_vec(dim, dim, m[..dim * dim].to_vec());
        let x = &x[..dim];
        let y = &y[..dim];
        // A(x + y) == Ax + Ay
        let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let lhs = gemm::matvec(&a, &sum);
        let ax = gemm::matvec(&a, x);
        let ay = gemm::matvec(&a, y);
        for i in 0..dim {
            prop_assert!(fml_linalg::approx_eq(lhs[i], ax[i] + ay[i], 1e-9));
        }
    }

    #[test]
    fn transpose_is_involutive_and_preserves_frobenius(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let data: Vec<f64> = (0..rows * cols).map(|i| ((i as u64 * 41 + seed * 13) % 101) as f64 / 7.0 - 7.0).collect();
        let m = Matrix::from_vec(rows, cols, data);
        let t = m.transpose();
        prop_assert_eq!(t.transpose(), m.clone());
        prop_assert!((m.frobenius_norm() - t.frobenius_norm()).abs() < 1e-12);
    }
}
