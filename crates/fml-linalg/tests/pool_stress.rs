//! Stress test for the persistent worker pool: many OS threads submitting
//! nested regions concurrently, panicking tasks mid-region, and scoped
//! `FML_THREADS` overrides — the interleavings the static lint cannot see.
//!
//! This is the target of the nightly ThreadSanitizer job
//! (`.github/workflows/nightly.yml`): every assertion here is also a data-
//! race probe when built with `-Zsanitizer=thread`.  Iterations are bounded
//! so the test stays cheap in the normal tier-1 suite, and it reads no
//! environment variables — worker counts are forced through the explicit
//! `*_with_threads` entry points so behavior is identical under TSan, Miri
//! and `cargo test`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use fml_linalg::policy::{self, par_chunks_with_threads, par_row_bands_with_threads, with_threads};

/// Rounds per submitter thread — bounded so the whole test runs in well
/// under a second without sanitizers.
const ROUNDS: usize = 20;
/// Concurrent submitter threads sharing the one process-wide pool.
const SUBMITTERS: usize = 4;
const N: usize = 96;

#[test]
fn concurrent_nested_regions_stay_deterministic() {
    let tasks_run = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..SUBMITTERS {
            let tasks_run = &tasks_run;
            s.spawn(move || {
                for _ in 0..ROUNDS {
                    // Outer region fans out on the shared pool; every outer
                    // chunk opens an inner region of its own, so regions
                    // from all submitters nest and interleave on the same
                    // workers.
                    let outer = par_chunks_with_threads(3, N, 1, |range| {
                        let len = range.len();
                        let inner = par_chunks_with_threads(2, len, 1, |r| {
                            tasks_run.fetch_add(1, Ordering::Relaxed);
                            r.map(|i| range.start + i).sum::<usize>()
                        });
                        inner.into_iter().sum::<usize>()
                    });
                    // Chunk boundaries are deterministic and every index is
                    // covered exactly once, whatever the interleaving.
                    let total: usize = outer.into_iter().sum();
                    assert_eq!(total, N * (N - 1) / 2);
                }
            });
        }
    });
    assert!(tasks_run.load(Ordering::Relaxed) >= SUBMITTERS * ROUNDS);
}

#[test]
fn panicking_tasks_drain_and_leave_the_pool_usable() {
    std::thread::scope(|s| {
        for _ in 0..SUBMITTERS {
            s.spawn(|| {
                for round in 0..ROUNDS {
                    // One task of the region panics; the dispatcher must
                    // still drain the region (DrainOnUnwind) and resume the
                    // payload on the submitting thread.
                    let poisoned = round; // index whose chunk panics
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        par_chunks_with_threads(4, ROUNDS, 1, |r| {
                            if r.contains(&poisoned) {
                                panic!("pool-stress deliberate panic");
                            }
                            r.len()
                        })
                    }));
                    let payload = caught.expect_err("the poisoned chunk must panic");
                    let msg = payload
                        .downcast_ref::<&str>()
                        .copied()
                        .unwrap_or("non-str payload");
                    assert_eq!(msg, "pool-stress deliberate panic");

                    // The pool survives: an immediate clean fan-out on the
                    // same thread completes with full coverage.
                    let clean = par_chunks_with_threads(4, N, 1, |r| r.len());
                    assert_eq!(clean.into_iter().sum::<usize>(), N);
                }
            });
        }
    });
}

#[test]
fn override_scopes_are_inherited_by_pool_workers() {
    std::thread::scope(|s| {
        for submitter in 0..SUBMITTERS {
            s.spawn(move || {
                let want = 2 + (submitter % 2); // distinct overrides per thread
                for _ in 0..ROUNDS {
                    with_threads(want, || {
                        assert_eq!(policy::current_threads(), want);
                        // `par_chunks(parallel=true, …)` reads the scoped
                        // override for its fan-out width, and pool dispatch
                        // re-installs it inside every worker — each task
                        // must observe the submitter's count, not another
                        // submitter's or the global default.
                        let seen =
                            policy::par_chunks(true, 4 * want, 1, |_| policy::current_threads());
                        assert_eq!(seen.len(), want);
                        assert!(seen.iter().all(|&t| t == want), "seen {seen:?}");
                    });
                    // The override ends with the scope.
                    assert_eq!(policy::current_threads(), policy::num_threads());
                }
            });
        }
    });
}

#[test]
fn disjoint_row_bands_never_alias_across_submitters() {
    std::thread::scope(|s| {
        for submitter in 0..SUBMITTERS {
            s.spawn(move || {
                const ROW: usize = 8;
                const ROWS: usize = 24;
                let mut data = vec![0.0f64; ROWS * ROW];
                for round in 0..ROUNDS {
                    let stamp = (submitter * ROUNDS + round + 1) as f64;
                    par_row_bands_with_threads(3, &mut data, ROW, 1, |first_row, band| {
                        for (r, row) in band.chunks_mut(ROW).enumerate() {
                            for v in row.iter_mut() {
                                *v = stamp + (first_row + r) as f64;
                            }
                        }
                    });
                    // Every row was written by exactly the band that owns it.
                    for (r, row) in data.chunks(ROW).enumerate() {
                        let want = (stamp + r as f64).to_bits();
                        assert!(row.iter().all(|v| v.to_bits() == want));
                    }
                }
            });
        }
    });
}
