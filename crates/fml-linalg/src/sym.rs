//! Helpers for symmetric (covariance-like) matrices.
//!
//! The GMM M-step produces sample covariance matrices that can be numerically
//! non-SPD when a mixture component collapses onto few points (or a feature has
//! zero variance within a component).  These helpers detect and repair such
//! matrices so that the next E-step's Cholesky factorization succeeds, identically
//! across the materialized / streaming / factorized training paths.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;

/// Default ridge added to covariance diagonals when regularization is needed.
pub const DEFAULT_RIDGE: f64 = 1e-6;

/// Returns `true` when `m` is symmetric to within `tol` (absolute).
pub fn is_symmetric(m: &Matrix, tol: f64) -> bool {
    if !m.is_square() {
        return false;
    }
    for i in 0..m.rows() {
        for j in (i + 1)..m.cols() {
            if (m[(i, j)] - m[(j, i)]).abs() > tol {
                return false;
            }
        }
    }
    true
}

/// Returns `true` when `m` admits a Cholesky factorization (i.e. is numerically
/// symmetric positive-definite).
pub fn is_spd(m: &Matrix) -> bool {
    m.is_square() && Cholesky::factor(m).is_ok()
}

/// Ensures `m` is SPD by symmetrizing it and, if necessary, repeatedly adding an
/// increasing ridge to the diagonal.  Returns the total ridge that was added.
///
/// The escalation sequence is deterministic (`ridge`, `10·ridge`, `100·ridge`, …)
/// so that every algorithm variant applies exactly the same repair and the final
/// models stay comparable.
pub fn ensure_spd(m: &mut Matrix, ridge: f64) -> f64 {
    assert!(m.is_square(), "ensure_spd: matrix must be square");
    assert!(ridge > 0.0, "ensure_spd: ridge must be positive");
    m.symmetrize();
    if Cholesky::factor(m).is_ok() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut step = ridge;
    for _ in 0..40 {
        m.add_diag(step);
        total += step;
        if Cholesky::factor(m).is_ok() {
            return total;
        }
        step *= 10.0;
    }
    panic!("ensure_spd: could not regularize matrix into SPD form (total ridge {total})");
}

/// Sample covariance of a set of rows (rows = observations, cols = features),
/// centered on the provided mean.  Divides by `n` (maximum-likelihood convention,
/// matching the GMM M-step).
pub fn covariance(rows: &[Vec<f64>], mean: &[f64]) -> Matrix {
    let d = mean.len();
    let mut cov = Matrix::zeros(d, d);
    if rows.is_empty() {
        return cov;
    }
    let mut centered = vec![0.0; d];
    for row in rows {
        assert_eq!(row.len(), d, "covariance: row dimension mismatch");
        for (c, (x, m)) in centered.iter_mut().zip(row.iter().zip(mean.iter())) {
            *c = x - m;
        }
        crate::gemm::ger(1.0, &centered, &centered, &mut cov);
    }
    cov.scale(1.0 / rows.len() as f64);
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetry_check() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]);
        assert!(is_symmetric(&m, 1e-12));
        let m2 = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.5, 3.0]]);
        assert!(!is_symmetric(&m2, 1e-12));
        assert!(is_symmetric(&m2, 1.0));
        assert!(!is_symmetric(&Matrix::zeros(2, 3), 1e-12));
    }

    #[test]
    fn spd_check() {
        assert!(is_spd(&Matrix::identity(3)));
        assert!(!is_spd(&Matrix::zeros(3, 3)));
    }

    #[test]
    fn ensure_spd_on_already_spd_is_noop() {
        let mut m = Matrix::identity(3);
        let added = ensure_spd(&mut m, DEFAULT_RIDGE);
        assert_eq!(added, 0.0);
        assert_eq!(m, Matrix::identity(3));
    }

    #[test]
    fn ensure_spd_repairs_singular() {
        // rank-1 matrix: singular
        let mut m = crate::gemm::outer(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]);
        let added = ensure_spd(&mut m, 1e-6);
        assert!(added > 0.0);
        assert!(is_spd(&m));
    }

    #[test]
    fn covariance_of_known_points() {
        // points: (0,0), (2,0), (0,2), (2,2); mean (1,1)
        let rows = vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![0.0, 2.0],
            vec![2.0, 2.0],
        ];
        let cov = covariance(&rows, &[1.0, 1.0]);
        assert_eq!(cov[(0, 0)], 1.0);
        assert_eq!(cov[(1, 1)], 1.0);
        assert_eq!(cov[(0, 1)], 0.0);
    }

    #[test]
    fn covariance_empty_is_zero() {
        let cov = covariance(&[], &[0.0, 0.0]);
        assert_eq!(cov.frobenius_norm(), 0.0);
    }
}
