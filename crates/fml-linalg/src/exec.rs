//! Execution policy shared by every trainer, and the fit-telemetry hooks.
//!
//! The model configs (`GmmConfig`, `NnConfig` in the learner crates) describe
//! *what* to fit — component counts, layer widths, iteration budgets.  How the
//! fit executes — kernel selection, sparse-path detection, scan block size,
//! worker threads, RNG seed — is a model-independent concern, captured once
//! here as [`ExecPolicy`] and threaded through every training strategy.
//!
//! ## Precedence
//!
//! Every knob resolves **builder > environment > default**, in exactly one
//! place ([`ExecPolicy::resolve`]):
//!
//! | field | builder | environment | default |
//! |-------|---------|-------------|---------|
//! | `kernel_policy` | [`ExecPolicy::kernel_policy`] | `FML_KERNEL_POLICY` | `blocked` |
//! | `threads` | [`ExecPolicy::threads`] | `FML_THREADS` | available parallelism |
//! | `sparse_mode` | [`ExecPolicy::sparse_mode`] | — | [`SparseMode::Auto`] |
//! | `block_pages` | [`ExecPolicy::block_pages`] | — | [`DEFAULT_BLOCK_PAGES`] |
//! | `seed` | [`ExecPolicy::seed`] | — | [`DEFAULT_SEED`] |
//! | `obs` | [`ExecPolicy::obs`] | `FML_OBS` | [`ObsMode::Off`] |
//!
//! Invalid environment values are rejected with a one-time warning naming the
//! value and the fallback (see [`crate::policy`]); they never silently change
//! the run.
//!
//! The SIMD level is deliberately **not** an [`ExecPolicy`] field: it never
//! changes results at the bit-exact levels, so it stays a process-wide knob
//! (`FML_SIMD=off|auto|fma`, resolved once in [`crate::simd`]) rather than a
//! per-run execution parameter.
//!
//! ## Telemetry
//!
//! An [`ExecPolicy`] optionally carries a [`FitObserver`].  Every trainer
//! emits one [`FitEvent`] per EM iteration / training epoch — the iteration's
//! objective (log-likelihood or mean loss), cumulative wall-time, and the page
//! / field I/O performed during that iteration — so benches, figures and
//! serving paths consume one telemetry stream instead of poking at fit
//! internals.  [`TraceObserver`] is a ready-made collecting observer.
//!
//! The same [`FitNotifier`] that drives observers also emits into the
//! `fml-obs` registry (`fml_fit_iterations_total`, the `fml_fit_iteration_ns`
//! histogram, and a `fit_iteration` span per iteration), so callback-based
//! and registry-based telemetry share one delta-arithmetic substrate.  The
//! resolved [`ExecSettings::obs`] mode is installed process-wide for the
//! duration of a run via [`ExecSettings::obs_scope`].

use crate::policy::{self, KernelPolicy};
use crate::sparse::SparseMode;
use fml_obs::ObsMode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default pages per scan block (`BlockSize` in the paper's cost analysis).
/// Kept equal to `fml_store::DEFAULT_BLOCK_PAGES` — the storage crate cannot
/// be referenced from here without inverting the dependency graph, so the
/// equality is pinned by a cross-crate test in `fml-core`.
pub const DEFAULT_BLOCK_PAGES: usize = 64;

/// Default RNG seed for data-independent initialization (GMM means, NN
/// weights).  Matches the historical default of both learner configs.
pub const DEFAULT_SEED: u64 = 7;

/// One per-iteration telemetry record emitted to a [`FitObserver`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitEvent {
    /// 0-based index of the iteration / epoch that just completed.
    pub iteration: usize,
    /// The iteration's objective: total log-likelihood for GMMs, mean training
    /// loss for NNs.
    pub objective: f64,
    /// Wall-clock time since the training loop started (cumulative).
    pub elapsed: Duration,
    /// Pages of storage I/O performed during this iteration (reads + writes),
    /// `0` when the trainer has no storage attached (in-memory sources).
    pub pages_io: u64,
    /// Feature fields read from storage during this iteration, `0` when no
    /// storage is attached.
    pub fields_read: u64,
}

/// Per-iteration callback hook carried by [`ExecPolicy`].
///
/// Observers are invoked from the training thread after each EM iteration /
/// epoch, never from inside parallel workers.
pub trait FitObserver: Send + Sync {
    /// Called once per completed iteration / epoch.
    fn on_iteration(&self, event: &FitEvent);
}

/// A [`FitObserver`] that records every event — the ready-made consumer for
/// benches, figures and tests.
#[derive(Debug, Default)]
pub struct TraceObserver {
    events: Mutex<Vec<FitEvent>>,
}

impl TraceObserver {
    /// Creates a shareable trace observer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of the events recorded so far.
    pub fn events(&self) -> Vec<FitEvent> {
        self.events.lock().expect("trace lock").clone()
    }
}

impl FitObserver for TraceObserver {
    fn on_iteration(&self, event: &FitEvent) {
        self.events.lock().expect("trace lock").push(event.clone());
    }
}

/// The execution knobs resolved by [`ExecPolicy::resolve`] — what the
/// trainers actually read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSettings {
    /// Linear-algebra kernel implementation (see [`crate::policy`]).
    pub kernel_policy: KernelPolicy,
    /// Sparse-block detection mode (see [`crate::sparse`]).
    pub sparse: SparseMode,
    /// Pages per scan block.
    pub block_pages: usize,
    /// Worker threads for the trainers' coarse-grained (per tuple batch / per
    /// join group) fan-out under a parallel kernel policy.
    pub threads: usize,
    /// Seed for the data-independent model initialization.
    pub seed: u64,
    /// Observability mode for the run (see [`fml_obs::ObsMode`]): installed
    /// process-wide by [`ExecSettings::obs_scope`] at trainer/scorer entry.
    pub obs: ObsMode,
}

impl ExecSettings {
    /// Worker count for a trainer-level parallel region: the resolved thread
    /// count when the fan-out is `engaged`, otherwise 1 (inline).
    pub fn workers(&self, engaged: bool) -> usize {
        if engaged {
            self.threads
        } else {
            1
        }
    }

    /// Installs the resolved thread count as the scoped kernel worker-count
    /// override for the current thread (see [`crate::policy::override_threads`]):
    /// until the returned guard drops, every `par_row_bands`-based kernel
    /// invoked under [`KernelPolicy::BlockedParallel`] fans out to exactly
    /// [`ExecSettings::threads`] workers instead of the process-global pool
    /// size.  Every trainer and scorer installs this at entry, which is what
    /// makes a builder-set [`ExecPolicy::threads`] exact *inside* parallel
    /// kernel regions, not just in the trainers' explicit chunk fan-outs.
    pub fn kernel_thread_scope(&self) -> policy::ThreadCountGuard {
        policy::override_threads(self.threads)
    }

    /// Installs the resolved observability mode process-wide until the
    /// returned guard drops (see [`fml_obs::apply_mode`]).  Every trainer and
    /// scorer installs this at entry, next to [`ExecSettings::kernel_thread_scope`],
    /// which is what extends the builder > `FML_OBS` > default precedence to
    /// the instrumentation on pool workers and storage scans.  The mode is
    /// process-global, so overlapping runs requesting *different* modes race
    /// benignly (last writer wins until its guard drops).
    pub fn obs_scope(&self) -> fml_obs::ModeGuard {
        fml_obs::apply_mode(self.obs)
    }
}

/// Model-independent execution policy: kernel selection, sparse detection,
/// scan block size, worker threads, seed, and an optional telemetry observer.
///
/// Construct with builder calls; unset fields resolve through the documented
/// precedence (builder > `FML_*` environment > default) when a trainer calls
/// [`ExecPolicy::resolve`]:
///
/// ```
/// use fml_linalg::{ExecPolicy, KernelPolicy, SparseMode};
/// let exec = ExecPolicy::new()
///     .kernel_policy(KernelPolicy::Blocked)
///     .sparse_mode(SparseMode::Auto)
///     .seed(42);
/// assert_eq!(exec.resolve().seed, 42);
/// ```
#[derive(Clone, Default)]
pub struct ExecPolicy {
    kernel_policy: Option<KernelPolicy>,
    sparse: Option<SparseMode>,
    block_pages: Option<usize>,
    threads: Option<usize>,
    seed: Option<u64>,
    obs: Option<ObsMode>,
    observer: Option<Arc<dyn FitObserver>>,
}

impl std::fmt::Debug for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPolicy")
            .field("kernel_policy", &self.kernel_policy)
            .field("sparse", &self.sparse)
            .field("block_pages", &self.block_pages)
            .field("threads", &self.threads)
            .field("seed", &self.seed)
            .field("obs", &self.obs)
            .field("observer", &self.observer.as_ref().map(|_| "<dyn>"))
            .finish()
    }
}

impl ExecPolicy {
    /// A policy with every knob unset (everything resolves through
    /// environment / defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the kernel policy (beats `FML_KERNEL_POLICY`).
    pub fn kernel_policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = Some(kernel_policy);
        self
    }

    /// Pins the sparse-path mode.
    pub fn sparse_mode(mut self, sparse: SparseMode) -> Self {
        self.sparse = Some(sparse);
        self
    }

    /// Pins the pages-per-scan-block count.
    pub fn block_pages(mut self, block_pages: usize) -> Self {
        assert!(block_pages > 0, "block_pages must be positive");
        self.block_pages = Some(block_pages);
        self
    }

    /// Pins the trainer-level worker-thread count (beats `FML_THREADS`).
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        self.threads = Some(threads);
        self
    }

    /// Pins the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Pins the observability mode (beats `FML_OBS`).
    pub fn obs(mut self, obs: ObsMode) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a per-iteration telemetry observer.
    pub fn observe(mut self, observer: Arc<dyn FitObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&dyn FitObserver> {
        self.observer.as_deref()
    }

    /// Resolves every knob through the documented precedence — **the** single
    /// place execution settings are decided.
    ///
    /// Builder-set values win outright.  Unset `kernel_policy` falls back to
    /// the process-wide default ([`crate::policy::default_policy`]:
    /// `FML_KERNEL_POLICY`, else [`crate::policy::set_default_policy`]'s
    /// value, else `blocked`); unset `threads` falls back to
    /// [`crate::policy::num_threads`] (`FML_THREADS`, else available
    /// parallelism); unset `obs` falls back to the process-wide mode
    /// ([`fml_obs::mode()`]: `FML_OBS`, else off).  Invalid environment values
    /// warn once and use the default.  The remaining fields have no
    /// environment override.
    pub fn resolve(&self) -> ExecSettings {
        ExecSettings {
            kernel_policy: self.kernel_policy.unwrap_or_else(policy::default_policy),
            sparse: self.sparse.unwrap_or_default(),
            block_pages: self.block_pages.unwrap_or(DEFAULT_BLOCK_PAGES),
            threads: self.threads.unwrap_or_else(policy::num_threads).max(1),
            seed: self.seed.unwrap_or(DEFAULT_SEED),
            obs: self.obs.unwrap_or_else(fml_obs::mode),
        }
    }

    /// [`ExecPolicy::resolve`] against explicit raw environment values — the
    /// pure core the precedence tests exercise (the public `resolve` reads
    /// the real, process-cached environment).  Returns the settings plus any
    /// invalid-value warnings the environment produced.
    #[cfg(test)]
    fn resolve_raw(
        &self,
        env_policy: Option<&str>,
        env_threads: Option<&str>,
        env_obs: Option<&str>,
        available: usize,
    ) -> (ExecSettings, Vec<String>) {
        let mut warnings = Vec::new();
        let kernel_policy = match self.kernel_policy {
            Some(p) => p,
            None => {
                let (p, w) = policy::resolve_policy_env(env_policy);
                warnings.extend(w);
                p
            }
        };
        let threads = match self.threads {
            Some(t) => t,
            None => {
                let (t, w) = policy::resolve_threads_env(env_threads, available);
                warnings.extend(w);
                t
            }
        };
        let obs = match self.obs {
            Some(m) => m,
            None => {
                let (m, w) = fml_obs::resolve_env(env_obs);
                warnings.extend(w);
                m
            }
        };
        (
            ExecSettings {
                kernel_policy,
                sparse: self.sparse.unwrap_or_default(),
                block_pages: self.block_pages.unwrap_or(DEFAULT_BLOCK_PAGES),
                threads: threads.max(1),
                seed: self.seed.unwrap_or(DEFAULT_SEED),
                obs,
            },
            warnings,
        )
    }
}

/// Cumulative I/O counter probe: returns `(total_page_io, fields_read)` so
/// the notifier can difference consecutive readings.  Trainers with storage
/// attached pass a closure over the database stats; in-memory sources pass
/// `None`.
pub type IoProbe<'a> = Option<&'a dyn Fn() -> (u64, u64)>;

/// Drives the per-iteration [`FitObserver`] notifications for one training
/// run: tracks the iteration index, the wall-clock origin and the last I/O
/// reading, so every trainer shares the same delta arithmetic.
///
/// Constructing a notifier is free when no observer is attached, and
/// [`FitNotifier::notify`] is a no-op then.
pub struct FitNotifier<'a> {
    observer: Option<&'a dyn FitObserver>,
    io: IoProbe<'a>,
    start: Instant,
    /// Start of the current iteration, for the per-iteration histogram/span
    /// (`start` stays the cumulative-elapsed origin the events report).
    iter_mark: Instant,
    last_io: (u64, u64),
    iteration: usize,
}

impl<'a> FitNotifier<'a> {
    /// Starts a notification stream for one training run.  The I/O baseline
    /// is read immediately, so work performed *before* this call (e.g. join
    /// materialization) is excluded from the first event's delta.
    pub fn new(exec: &'a ExecPolicy, io: IoProbe<'a>) -> Self {
        let observer = exec.observer();
        let last_io = match (observer.is_some(), io) {
            (true, Some(probe)) => probe(),
            _ => (0, 0),
        };
        let start = Instant::now();
        Self {
            observer,
            io,
            start,
            iter_mark: start,
            last_io,
            iteration: 0,
        }
    }

    /// Emits the event for the iteration that just completed — to the
    /// attached [`FitObserver`] (if any), and, when observability is on, to
    /// the `fml-obs` registry (`fml_fit_iterations_total`, the
    /// `fml_fit_iteration_ns` latency histogram, a `fit_iteration` span).
    pub fn notify(&mut self, objective: f64) {
        if fml_obs::metrics_enabled() {
            let now = Instant::now();
            fml_obs::counter!("fml_fit_iterations_total").inc();
            fml_obs::histogram!("fml_fit_iteration_ns")
                .record_duration(now.saturating_duration_since(self.iter_mark));
            fml_obs::record_span("fit_iteration", self.iter_mark, now);
            self.iter_mark = now;
        }
        if let Some(observer) = self.observer {
            let now = self.io.map(|probe| probe()).unwrap_or((0, 0));
            observer.on_iteration(&FitEvent {
                iteration: self.iteration,
                objective,
                elapsed: self.start.elapsed(),
                pages_io: now.0.saturating_sub(self.last_io.0),
                fields_read: now.1.saturating_sub(self.last_io.1),
            });
            self.last_io = now;
        }
        self.iteration += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve_without_builders() {
        let (s, warnings) = ExecPolicy::new().resolve_raw(None, None, None, 8);
        assert_eq!(s.kernel_policy, KernelPolicy::Blocked);
        assert_eq!(s.sparse, SparseMode::Auto);
        assert_eq!(s.block_pages, DEFAULT_BLOCK_PAGES);
        assert_eq!(s.threads, 8);
        assert_eq!(s.seed, DEFAULT_SEED);
        assert_eq!(s.obs, ObsMode::Off);
        assert!(warnings.is_empty());
    }

    #[test]
    fn env_beats_defaults() {
        let (s, warnings) =
            ExecPolicy::new().resolve_raw(Some("naive"), Some("3"), Some("metrics"), 8);
        assert_eq!(s.kernel_policy, KernelPolicy::Naive);
        assert_eq!(s.threads, 3);
        assert_eq!(s.obs, ObsMode::Metrics);
        assert!(warnings.is_empty());
    }

    #[test]
    fn builder_beats_env() {
        let exec = ExecPolicy::new()
            .kernel_policy(KernelPolicy::BlockedParallel)
            .threads(2)
            .seed(99)
            .block_pages(16)
            .sparse_mode(SparseMode::Dense)
            .obs(ObsMode::Trace);
        let (s, warnings) = exec.resolve_raw(Some("naive"), Some("12"), Some("off"), 8);
        assert_eq!(s.kernel_policy, KernelPolicy::BlockedParallel);
        assert_eq!(s.threads, 2);
        assert_eq!(s.seed, 99);
        assert_eq!(s.block_pages, 16);
        assert_eq!(s.sparse, SparseMode::Dense);
        assert_eq!(s.obs, ObsMode::Trace);
        // builder-set knobs never consult the environment, so an invalid env
        // value does not even produce a warning
        assert!(warnings.is_empty());
    }

    #[test]
    fn invalid_env_warns_and_falls_back_unless_builder_set() {
        // unset builder: the typo is reported and the default used
        let (s, warnings) =
            ExecPolicy::new().resolve_raw(Some("blokced"), Some("zero"), Some("traec"), 4);
        assert_eq!(s.kernel_policy, KernelPolicy::Blocked);
        assert_eq!(s.threads, 4);
        assert_eq!(s.obs, ObsMode::Off);
        assert_eq!(warnings.len(), 3, "one warning per invalid variable");
        assert!(warnings[0].contains("blokced"));
        assert!(warnings[1].contains("zero"));
        assert!(warnings[2].contains("traec"));
        // builder-set: same raw environment, no warning at all
        let exec = ExecPolicy::new()
            .kernel_policy(KernelPolicy::Naive)
            .threads(1)
            .obs(ObsMode::Off);
        let (s, warnings) = exec.resolve_raw(Some("blokced"), Some("zero"), Some("traec"), 4);
        assert_eq!(s.kernel_policy, KernelPolicy::Naive);
        assert_eq!(s.threads, 1);
        assert!(warnings.is_empty());
    }

    #[test]
    fn workers_collapse_to_one_when_not_engaged() {
        let s = ExecPolicy::new().threads(6).resolve();
        assert_eq!(s.workers(true), 6);
        assert_eq!(s.workers(false), 1);
    }

    /// Counting pool probe through the full `ExecPolicy` surface: a
    /// builder-set `.threads(n)` bounds a `par_row_bands`-based parallel
    /// kernel region to exactly `n` bands while the scope guard is held.
    #[test]
    fn kernel_thread_scope_makes_builder_threads_exact_in_kernels() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let probe = || {
            let bands = AtomicUsize::new(0);
            let mut data = vec![0.0f64; 96 * 2];
            policy::par_row_bands(true, &mut data, 2, 1, |_, _| {
                bands.fetch_add(1, Ordering::Relaxed);
            });
            bands.load(Ordering::Relaxed)
        };
        for n in [1usize, 2, 3] {
            let s = ExecPolicy::new().threads(n).resolve();
            let guard = s.kernel_thread_scope();
            assert_eq!(probe(), n, ".threads({n}) must be exact inside kernels");
            drop(guard);
        }
        // Outside the scope the kernels fall back to the global pool size
        // (whatever band count the deterministic chunking yields for it).
        assert_eq!(
            probe(),
            policy::chunk_ranges(96, policy::num_threads(), 1).len()
        );
    }

    #[test]
    fn resolve_matches_resolve_raw_for_builder_set_policies() {
        // With every knob pinned, the cached real environment is irrelevant:
        // resolve() and resolve_raw() must agree exactly.
        let exec = ExecPolicy::new()
            .kernel_policy(KernelPolicy::Naive)
            .sparse_mode(SparseMode::Dense)
            .block_pages(8)
            .threads(2)
            .seed(5)
            .obs(ObsMode::Metrics);
        assert_eq!(exec.resolve(), exec.resolve_raw(None, None, None, 1).0);
    }

    #[test]
    fn obs_scope_installs_and_restores_the_resolved_mode() {
        let s = ExecPolicy::new().obs(ObsMode::Metrics).resolve();
        let before = fml_obs::mode();
        {
            let _guard = s.obs_scope();
            assert_eq!(fml_obs::mode(), ObsMode::Metrics);
        }
        assert_eq!(fml_obs::mode(), before);
    }

    #[test]
    fn notifier_and_trace_observer_round_trip() {
        let trace = TraceObserver::new();
        let exec = ExecPolicy::new().observe(trace.clone());
        let pages = std::sync::atomic::AtomicU64::new(10);
        let probe = || (pages.load(std::sync::atomic::Ordering::Relaxed), 100);
        let mut notifier = FitNotifier::new(&exec, Some(&probe));
        pages.store(17, std::sync::atomic::Ordering::Relaxed);
        notifier.notify(-5.0);
        notifier.notify(-4.0);
        let events = trace.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].iteration, 0);
        assert_eq!(events[0].objective, -5.0);
        // first delta: 17 - 10 pages since the baseline reading
        assert_eq!(events[0].pages_io, 7);
        // second iteration performed no I/O
        assert_eq!(events[1].iteration, 1);
        assert_eq!(events[1].pages_io, 0);
        assert_eq!(events[1].fields_read, 0);
    }

    #[test]
    fn notifier_without_observer_is_inert() {
        let exec = ExecPolicy::new();
        let mut notifier = FitNotifier::new(&exec, None);
        notifier.notify(1.0);
        notifier.notify(2.0);
        // nothing to assert beyond "does not panic" — no observer, no events
    }

    #[test]
    fn debug_shows_observer_presence_not_contents() {
        let exec = ExecPolicy::new().observe(TraceObserver::new());
        let dbg = format!("{exec:?}");
        assert!(dbg.contains("observer"), "{dbg}");
        assert!(dbg.contains("<dyn>"), "{dbg}");
    }
}
