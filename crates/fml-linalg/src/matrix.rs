//! Row-major dense matrices.
//!
//! [`Matrix`] is the workhorse container for GMM covariance matrices, NN weight
//! matrices and all intermediate scatter/gradient accumulators.  Heavier kernels
//! (matrix-matrix and matrix-vector products, rank-1/rank-k updates) live in
//! [`crate::gemm`]; this module provides construction, element access, slicing of
//! sub-blocks and the cheap elementwise operations.

use crate::vector;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.rows,
            "row index {} out of bounds ({})",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.rows,
            "row index {} out of bounds ({})",
            i,
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "col index {} out of bounds ({})",
            j,
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the diagonal as a `Vec`.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Extracts the rectangular sub-block with rows `r0..r1` and columns `c0..c1`.
    ///
    /// This is the primitive behind the paper's `UL / UR / LL / LR` partition of a
    /// covariance inverse (Equations 9–12) and its multi-way generalization
    /// `I_{mn}` (Equation 21).
    pub fn sub_block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "sub_block: bad row range");
        assert!(c0 <= c1 && c1 <= self.cols, "sub_block: bad col range");
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            out.row_mut(i - r0).copy_from_slice(&self.row(i)[c0..c1]);
        }
        out
    }

    /// Writes `block` into this matrix starting at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows, "set_block: rows overflow");
        assert!(c0 + block.cols <= self.cols, "set_block: cols overflow");
        for i in 0..block.rows {
            self.row_mut(r0 + i)[c0..c0 + block.cols].copy_from_slice(block.row(i));
        }
    }

    /// Elementwise addition in place: `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        vector::axpy(1.0, &other.data, &mut self.data);
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// Elementwise subtraction in place: `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign: shape mismatch");
        vector::axpy(-1.0, &other.data, &mut self.data);
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Sets every entry to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        vector::max_abs_diff(&self.data, &other.data)
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> f64 {
        self.diag().iter().sum()
    }

    /// Makes the matrix exactly symmetric by averaging with its transpose.
    ///
    /// Accumulated scatter matrices can drift from exact symmetry by a few ULPs;
    /// the GMM M-step symmetrizes before the next Cholesky factorization.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize: matrix must be square");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Adds `value` to every diagonal entry (ridge/regularization term).
    pub fn add_diag(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert!(!m.is_square());
    }

    #[test]
    fn identity_and_diag() {
        let id = Matrix::identity(3);
        assert_eq!(id.diag(), vec![1.0, 1.0, 1.0]);
        assert_eq!(id.trace(), 3.0);
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(0, 0)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d[(1, 1)], 3.0);
    }

    #[test]
    fn from_rows_and_transpose() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.row(0), &[1.0, 3.0, 5.0]);
        assert_eq!(t.row(1), &[2.0, 4.0, 6.0]);
        // transposing twice gives the original back
        assert_eq!(t.transpose(), m);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn sub_block_and_set_block_roundtrip() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![5.0, 6.0, 7.0, 8.0],
            vec![9.0, 10.0, 11.0, 12.0],
        ]);
        let b = m.sub_block(1, 3, 2, 4);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.row(0), &[7.0, 8.0]);
        assert_eq!(b.row(1), &[11.0, 12.0]);

        let mut z = Matrix::zeros(3, 4);
        z.set_block(1, 2, &b);
        assert_eq!(z[(1, 2)], 7.0);
        assert_eq!(z[(2, 3)], 12.0);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0], vec![30.0, 40.0]]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[2.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.row(0), &[7.0, 14.0]);
        a.fill_zero();
        assert_eq!(a.frobenius_norm(), 0.0);
    }

    #[test]
    fn symmetrize_and_add_diag() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 5.0]]);
        m.symmetrize();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
        m.add_diag(0.5);
        assert_eq!(m[(0, 0)], 1.5);
        assert_eq!(m[(1, 1)], 5.5);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Matrix::identity(2);
        let mut b = Matrix::identity(2);
        b[(0, 1)] = 0.25;
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
