//! # fml-linalg
//!
//! Dense linear-algebra kernels used by the factorized machine-learning crates
//! (`fml-gmm`, `fml-nn`).  The crate deliberately implements only the pieces the
//! paper's algorithms need, with predictable `f64` semantics:
//!
//! * [`Vector`] / free slice kernels ([`vector`]) — dot products, AXPY, elementwise ops.
//! * [`Matrix`] ([`matrix`]) — row-major dense matrices with GEMM/GEMV ([`gemm`]),
//!   outer products and sub-block extraction.
//! * [`Cholesky`] ([`cholesky`]) — factorization of symmetric positive-definite
//!   matrices, used for `Σ⁻¹` and `log|Σ|` in the GMM E-step.
//! * [`BlockPartition`] ([`block`]) — the block decompositions at the heart of the
//!   paper: partition a feature vector / covariance matrix along relation
//!   boundaries `[d_S, d_{R_1}, …, d_{R_q}]` and evaluate quadratic forms and
//!   scatter matrices block-by-block (Equations 7–24 of the paper).
//! * [`sparse`] — one-hot kernels for categorical feature blocks: gathers,
//!   scatter-adds and quadratic forms over active-index sets ([`BlockVec`]),
//!   bit-identical to the dense naive reference under every policy.
//! * [`csr`] — general weighted-sparse kernels ([`CsrBlock`], `spmm_csr`,
//!   CSR gathers/scatters/quadratic forms) for near-sparse numeric blocks;
//!   same exactness contract as [`sparse`], with the multiplications kept.
//! * [`simd`] — the explicit `f64x4` SIMD layer the blocked kernels run on:
//!   AVX2/FMA micro-kernels with runtime dispatch ([`SimdLevel`]), a
//!   bit-exact scalar fallback, and the `FML_SIMD` override.
//! * [`sym`] — helpers for symmetric matrices (regularization, SPD checks).
//! * [`exec`] — the model-independent [`ExecPolicy`] every trainer consumes
//!   (kernel policy, sparse mode, block size, threads, seed, telemetry
//!   observer), with builder > environment > default precedence resolved in
//!   one place.
//! * [`repcache`] — the per-tuple sparse-representation caches ([`RepCache`],
//!   [`KeyedRepCache`]) encoding the lazy scan-order fill protocol shared by
//!   all six trainers.
//!
//! ## Kernel policies
//!
//! Every heavy kernel runs under a [`KernelPolicy`] ([`policy`]):
//!
//! * `Naive` — the reference triple loops, strictly sequential accumulation.
//! * `Blocked` — cache-tiled GEMM with packed panels and a register-blocked
//!   `4×8` micro-kernel; 4-way unrolled reductions elsewhere.  ~3× faster than
//!   `Naive` on a 512³ product on one AVX2 core (see `BENCH_kernels.json`).
//! * `BlockedParallel` — the blocked kernels with `MR`-aligned output bands
//!   fanned out over the persistent worker pool ([`pool`]): long-lived
//!   workers (spawned lazily, capped at [`policy::num_threads`]) with
//!   borrowed-closure dispatch, so a parallel region costs a queue push per
//!   chunk instead of a thread spawn.  Help-first draining makes nested
//!   fan-outs deadlock-free, and dispatch replicates the caller's scoped
//!   [`policy::override_threads`] into the workers so builder-set thread
//!   counts stay exact under nesting.
//!
//! **Determinism guarantees.**  For a fixed policy (and, for
//! `BlockedParallel`, a fixed thread count) every kernel is a pure function of
//! its inputs: work partitions depend only on problem shape, and parallel
//! reductions merge partial results in chunk-index order (a fixed reduction
//! tree).  `BlockedParallel` GEMM/GEMV/GER are bit-identical to `Blocked`.
//! *Across* policies, results differ only in the associativity of
//! floating-point addition — the multiplication set is identical — so they
//! agree within [`approx_eq`]-style tolerances, which is what the
//! materialized-vs-factorized equivalence tests rely on.
//!
//! The default policy is `Blocked`; override it per call (`*_with`), per
//! training run (the `kernel_policy` field on the learner configs), or
//! process-wide (`FML_KERNEL_POLICY=naive|blocked|parallel`,
//! [`policy::set_default_policy`]).  `FML_THREADS` caps the pool.
//!
//! ## SIMD layer
//!
//! The blocked kernels' inner loops run through an explicit `f64x4` SIMD
//! layer ([`simd`]): AVX2 lane primitives selected once at startup via
//! runtime CPU detection, with a scalar fallback that emulates the 4-lane
//! shape exactly.  The default mode is **bit-identical** to the scalar
//! fallback (lane-wise multiply-then-add, fixed reduction tree — no FMA
//! contraction), so every cross-policy contract above holds with SIMD on or
//! off; `FML_SIMD=off` forces the fallback and `FML_SIMD=fma` opts into a
//! fused-multiply-add fast mode that is tolerance-equal (≤ a few ULPs) to
//! the oracle instead of bit-equal.
//!
//! `unsafe` is denied crate-wide and allowed in exactly two leaf modules:
//! [`simd`]'s intrinsics module, where every `std::arch` call sits behind a
//! safe wrapper that re-verifies CPU support, and [`pool`]'s task-erasure
//! module, where the borrowed-closure dispatch is made sound by the
//! drain-before-return protocol documented there.  Everything else reaches
//! vector ISA throughput through fixed-size array tiles that the compiler
//! fully unrolls.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod cholesky;
pub mod csr;
pub mod exec;
pub mod gemm;
pub mod matrix;
pub mod policy;
pub mod pool;
pub mod repcache;
pub mod simd;
pub mod sparse;
pub mod sym;
#[doc(hidden)]
pub mod testutil;
pub mod vector;

pub use block::{BlockPartition, BlockQuadraticForm, BlockScatter};
pub use cholesky::Cholesky;
pub use csr::CsrBlock;
pub use exec::{ExecPolicy, ExecSettings, FitEvent, FitNotifier, FitObserver, TraceObserver};
pub use matrix::Matrix;
pub use policy::KernelPolicy;
pub use repcache::{KeyedRepCache, RepCache, RepSegment};
pub use simd::{SimdLevel, SimdMode};
pub use sparse::{BlockVec, SparseMode, SparseRep};
pub use vector::Vector;

/// Absolute tolerance used by the crate's own tests when comparing two floating
/// point results that were produced by algebraically equivalent computations.
pub const TEST_EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely **or**
/// relatively (whichever is more permissive), which is the right comparison for
/// results of algebraically identical computations executed in different orders.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_magnitudes() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
        assert!(!approx_eq(0.0, 1e-3, 1e-12));
    }
}
