//! Explicit `f64x4` SIMD kernel layer: AVX2/FMA micro-kernels with runtime
//! dispatch, plus a scalar fallback that emulates the 4-lane shape exactly.
//!
//! Every hot kernel in [`crate::gemm`], [`crate::csr`] and [`crate::sparse`]
//! funnels its inner loop through the dispatchers in this module.  The layer
//! has three levels, resolved **once per process** (and overridable per
//! thread for tests and benchmarks):
//!
//! * [`SimdLevel::Scalar`] — the portable fallback.  Emulates the 4-lane
//!   vector shape with fixed-size arrays: four independent accumulators,
//!   lane-wise multiply-then-add, and the fixed reduction tree
//!   `(l0+l1)+(l2+l3)`.  This is byte-for-byte the arithmetic the blocked
//!   kernels have always used.
//! * [`SimdLevel::Lanes`] — AVX2 `f64x4` intrinsics doing *exactly the same
//!   arithmetic*: one `ymm` accumulator per 4-lane group, vertical
//!   `_mm256_mul_pd` + `_mm256_add_pd` (no FMA contraction — Rust never
//!   contracts `a*b + c` on its own, and neither do we here), and a horizontal
//!   reduce that mirrors the scalar tree.  **Bit-identical to `Scalar` on
//!   every input** — the `simd_equivalence` tests and the policy proptests
//!   pin this with `f64::to_bits` comparisons.
//! * [`SimdLevel::LanesFma`] — the opt-in fast mode (`FML_SIMD=fma`): multiple
//!   `ymm` accumulators fed by `_mm256_fmadd_pd`.  Fusing the multiply-add
//!   changes rounding (one rounding step instead of two) and the wider
//!   accumulator fan changes grouping, so this level is **allowed to differ**
//!   from the oracle; it is tolerance-tested (≤ a few ULPs relative) instead
//!   of bit-tested.
//!
//! ## Level selection
//!
//! The process-wide level is chosen on first use from the `FML_SIMD`
//! environment variable and CPU feature detection
//! (`is_x86_feature_detected!`):
//!
//! | `FML_SIMD` | resolved level |
//! |------------|----------------|
//! | unset / `auto` | `Lanes` when AVX2 is available, else `Scalar` |
//! | `off` / `scalar` / `0` | `Scalar` (forced fallback, any CPU) |
//! | `fma` | `LanesFma` when AVX2+FMA are available (else degrade + warn) |
//!
//! Invalid values fall back to `auto` with a one-time warning, mirroring
//! `FML_KERNEL_POLICY` / `FML_THREADS` resolution in [`crate::policy`].
//!
//! Kernels read the level **once at entry** ([`current_level`]) and pass it
//! down into their banded closures, so a parallel fan-out can never observe a
//! mid-kernel level change and every band computes with the same arithmetic.
//!
//! ## Why the default mode changes no bits
//!
//! The blocked kernels' scalar inner loops were already written in 4-lane
//! shape (see `dot_unrolled` and the `MR×NR` micro-kernel in the original
//! `gemm.rs`).  IEEE-754 addition and multiplication are deterministic, and a
//! vertical AVX2 lane op performs the same scalar operation per lane in the
//! same order — so as long as the lane grouping and the reduction tree match,
//! the vector and scalar paths produce identical bits.  That is what lets
//! `FML_SIMD=off` serve as a true differential-testing oracle, and what keeps
//! the repo's `Naive`/`Blocked`/`BlockedParallel` cross-policy contracts
//! intact with SIMD on or off.
//!
//! On non-x86_64 targets every level degrades to the scalar fallback, so the
//! crate stays portable; the dispatchers also re-verify CPU features behind a
//! cached check, so even a hand-constructed `Lanes` level on a non-AVX2
//! machine safely runs the scalar path instead of hitting illegal
//! instructions.

use crate::gemm::{MR, NR};
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Modes and levels
// ---------------------------------------------------------------------------

/// User-facing SIMD mode, parsed from `FML_SIMD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdMode {
    /// Force the scalar 4-lane-emulating fallback.
    Off,
    /// Use bit-exact AVX2 lanes when the CPU has them (the default).
    Auto,
    /// Opt into the FMA fast mode (results may differ from the oracle by a
    /// few ULPs).
    Fma,
}

impl SimdMode {
    /// Short lowercase label (`off` / `auto` / `fma`).
    pub fn label(self) -> &'static str {
        match self {
            SimdMode::Off => "off",
            SimdMode::Auto => "auto",
            SimdMode::Fma => "fma",
        }
    }
}

impl std::str::FromStr for SimdMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" | "none" => Ok(SimdMode::Off),
            "auto" | "on" | "lanes" => Ok(SimdMode::Auto),
            "fma" | "fast" => Ok(SimdMode::Fma),
            other => Err(format!(
                "unknown SIMD mode {other:?} (expected off|auto|fma)"
            )),
        }
    }
}

impl std::fmt::Display for SimdMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The resolved instruction level the dispatchers run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar code in 4-lane shape (the bit-exact fallback).
    Scalar,
    /// AVX2 `f64x4` lanes, multiply-then-add — bit-identical to `Scalar`.
    Lanes,
    /// AVX2 + FMA fast mode — tolerance-equal to the oracle, not bit-equal.
    LanesFma,
}

impl SimdLevel {
    /// All levels, in increasing order of sophistication.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Lanes, SimdLevel::LanesFma];

    /// Short lowercase label (`scalar` / `lanes` / `fma`).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Lanes => "lanes",
            SimdLevel::LanesFma => "fma",
        }
    }

    /// Whether this level is guaranteed bit-identical to the scalar fallback.
    pub fn is_bit_exact(self) -> bool {
        !matches!(self, SimdLevel::LanesFma)
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Resolves a raw `FML_SIMD` value to a mode, with a warning for rejected
/// values (mirrors `resolve_policy_env` — typos must not silently change
/// which kernels benchmark).
pub(crate) fn resolve_simd_env(raw: Option<&str>) -> (SimdMode, Option<String>) {
    match raw {
        None => (SimdMode::Auto, None),
        Some(s) => match s.parse::<SimdMode>() {
            Ok(m) => (m, None),
            Err(e) => (
                SimdMode::Auto,
                Some(format!("FML_SIMD: {e}; falling back to `auto`")),
            ),
        },
    }
}

/// Maps a mode onto the level the detected CPU supports, warning when an
/// explicit request has to degrade (asking for `fma` on a CPU without it must
/// not be silent).
pub(crate) fn level_for(mode: SimdMode, avx2: bool, fma: bool) -> (SimdLevel, Option<String>) {
    match mode {
        SimdMode::Off => (SimdLevel::Scalar, None),
        SimdMode::Auto => {
            if avx2 {
                (SimdLevel::Lanes, None)
            } else {
                (SimdLevel::Scalar, None)
            }
        }
        SimdMode::Fma => {
            if avx2 && fma {
                (SimdLevel::LanesFma, None)
            } else if avx2 {
                (
                    SimdLevel::Lanes,
                    Some("FML_SIMD=fma: CPU lacks FMA; using bit-exact AVX2 lanes".to_string()),
                )
            } else {
                (
                    SimdLevel::Scalar,
                    Some("FML_SIMD=fma: CPU lacks AVX2; using the scalar fallback".to_string()),
                )
            }
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;

static DEFAULT_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_to_u8(l: SimdLevel) -> u8 {
    match l {
        SimdLevel::Scalar => 0,
        SimdLevel::Lanes => 1,
        SimdLevel::LanesFma => 2,
    }
}

fn level_from_u8(v: u8) -> SimdLevel {
    match v {
        1 => SimdLevel::Lanes,
        2 => SimdLevel::LanesFma,
        _ => SimdLevel::Scalar,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_features() -> (bool, bool) {
    (
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("fma"),
    )
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_features() -> (bool, bool) {
    (false, false)
}

/// The process-wide SIMD level, resolved on first use from `FML_SIMD` and CPU
/// feature detection.  Changeable at runtime with [`set_default_level`]
/// (tests/benches should prefer the scoped [`override_level`]).
pub fn default_level() -> SimdLevel {
    let v = DEFAULT_LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return level_from_u8(v);
    }
    static SIMD_WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let raw = std::env::var("FML_SIMD").ok();
    let (mode, mode_warning) = resolve_simd_env(raw.as_deref());
    let (avx2, fma) = detect_features();
    let (level, level_warning) = level_for(mode, avx2, fma);
    if let Some(msg) = mode_warning.or(level_warning) {
        fml_obs::warn_once(&SIMD_WARNED, &msg);
    }
    // Racing initializations agree (env and CPUID are stable), so a relaxed
    // store is fine.
    DEFAULT_LEVEL.store(level_to_u8(level), Ordering::Relaxed);
    // Unconditional gauge: the resolved level is a one-time scalar the
    // registry should always report, not per-record telemetry.
    fml_obs::gauge!("fml_simd_level").set(level_to_u8(level) as i64);
    level
}

/// Overrides the process-wide SIMD level.
pub fn set_default_level(level: SimdLevel) {
    DEFAULT_LEVEL.store(level_to_u8(level), Ordering::Relaxed);
    fml_obs::gauge!("fml_simd_level").set(level_to_u8(level) as i64);
}

std::thread_local! {
    /// Per-thread level override installed by [`override_level`] — the SIMD
    /// twin of the worker-count override in [`crate::policy`].  Thread-local
    /// so `cargo test`'s parallel test threads can force different levels
    /// without racing each other.
    static LEVEL_OVERRIDE: std::cell::Cell<Option<SimdLevel>> =
        const { std::cell::Cell::new(None) };
}

/// RAII guard for a scoped SIMD-level override (see [`override_level`]).
/// Dropping the guard restores the previous override, so guards nest.
#[derive(Debug)]
#[must_use = "the override is removed when the guard drops"]
pub struct SimdLevelGuard {
    prev: Option<SimdLevel>,
}

impl Drop for SimdLevelGuard {
    fn drop(&mut self) {
        LEVEL_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Installs a SIMD-level override for the current thread until the returned
/// guard drops.  Kernels capture [`current_level`] once at entry, so bands
/// spawned inside a kernel inherit the level the kernel started with even
/// though the worker threads themselves carry no override.
pub fn override_level(level: SimdLevel) -> SimdLevelGuard {
    let prev = LEVEL_OVERRIDE.with(|c| c.replace(Some(level)));
    SimdLevelGuard { prev }
}

/// Convenience wrapper running `f` under [`override_level`].
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    let _guard = override_level(level);
    f()
}

/// The level a kernel entered on this thread should use: the scoped override
/// when present, otherwise the process-wide [`default_level`].
pub fn current_level() -> SimdLevel {
    LEVEL_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(default_level)
}

// ---------------------------------------------------------------------------
// Scalar fallback: the 4-lane shape in portable code
// ---------------------------------------------------------------------------

mod scalar {
    use super::{MR, NR};

    /// 4-lane dot product: four independent accumulators merged by the fixed
    /// tree `(l0+l1)+(l2+l3)`, sequential remainder.  This is the arithmetic
    /// `gemm::dot_unrolled` has used since PR 1 — one AVX2 `ymm` accumulator
    /// in scalar clothing.
    #[inline]
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        let quads = a.len() / 4 * 4;
        let mut acc = [0.0f64; 4];
        for (ca, cb) in a[..quads].chunks_exact(4).zip(b[..quads].chunks_exact(4)) {
            for l in 0..4 {
                acc[l] += ca[l] * cb[l];
            }
        }
        let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (x, y) in a[quads..].iter().zip(b[quads..].iter()) {
            s += x * y;
        }
        s
    }

    /// `y += alpha * x`, element-wise (no accumulator grouping to mirror).
    #[inline]
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
    }

    /// `dst += src`, element-wise.
    #[inline]
    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            *d += s;
        }
    }

    /// `x *= alpha`, element-wise.
    #[inline]
    pub fn scale(alpha: f64, x: &mut [f64]) {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    /// The register-blocked `MR×NR` GEMM micro-kernel over packed panels —
    /// verbatim the scalar tile accumulation from `gemm.rs`.
    #[inline]
    pub fn microkernel(
        pa: &[f64],
        pb: &[f64],
        kb: usize,
        c: &mut [f64],
        ldc: usize,
        i0: usize,
        j0: usize,
    ) {
        let mut acc = [[0.0f64; NR]; MR];
        let pa = &pa[..kb * MR];
        let pb = &pb[..kb * NR];
        for (ak, bk) in pa.chunks_exact(MR).zip(pb.chunks_exact(NR)) {
            for r in 0..MR {
                let arv = ak[r];
                for cc in 0..NR {
                    acc[r][cc] += arv * bk[cc];
                }
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            let base = (i0 + r) * ldc + j0;
            let crow = &mut c[base..base + NR];
            for (dst, &v) in crow.iter_mut().zip(acc_row.iter()) {
                *dst += v;
            }
        }
    }

    /// Strictly sequential sparse gather `Σ_t vals[t]·v[idx[t]]` — the CSR
    /// kernels' bit contract against the dense naive oracle requires this
    /// exact accumulation order.
    #[inline]
    pub fn gather_dot(v: &[f64], idx: &[u32], vals: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &w) in idx.iter().zip(vals.iter()) {
            acc += w * v[i as usize];
        }
        acc
    }

    /// Sparse scatter `x[idx[t]] += alpha·vals[t]`.
    #[inline]
    pub fn scatter_axpy(alpha: f64, idx: &[u32], vals: &[f64], x: &mut [f64]) {
        for (&i, &w) in idx.iter().zip(vals.iter()) {
            x[i as usize] += alpha * w;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 / FMA lanes
// ---------------------------------------------------------------------------

/// The one module allowed to use `unsafe`: every function is an
/// `#[target_feature]` intrinsic body behind a safe wrapper that re-checks
/// CPU support (cached by `std`) and degrades to the scalar fallback instead
/// of faulting.  The wrappers keep the unsafety local and un-leakable: no
/// raw pointer or feature assumption escapes this module.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{scalar, MR, NR};
    use std::arch::is_x86_feature_detected;
    use std::arch::x86_64::*;

    #[inline]
    fn has_avx2() -> bool {
        // `is_x86_feature_detected!` caches in a std-internal atomic; this is
        // a relaxed load + test per call, noise next to any kernel body.
        is_x86_feature_detected!("avx2")
    }

    #[inline]
    fn has_fma() -> bool {
        is_x86_feature_detected!("fma") && has_avx2()
    }

    /// Horizontal reduce of one `ymm` with the fixed tree `(l0+l1)+(l2+l3)` —
    /// the exact merge order of the scalar 4-lane fallback.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum_tree(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v); // l0, l1
        let hi = _mm256_extractf128_pd(v, 1); // l2, l3
        let lo_sum = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)); // l0 + l1
        let hi_sum = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)); // l2 + l3
        _mm_cvtsd_f64(_mm_add_sd(lo_sum, hi_sum))
    }

    /// Bit-exact lanes dot: one `ymm` accumulator, vertical mul-then-add —
    /// per lane the same `acc[l] += a[l]*b[l]` as the scalar fallback, and
    /// the same reduction tree.
    #[target_feature(enable = "avx2")]
    fn dot_lanes_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let quads = n / 4 * 4;
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = _mm256_setzero_pd();
        let mut k = 0;
        while k < quads {
            // SAFETY: k+3 < quads <= n for both equally sized slices.
            let (va, vb) = unsafe { (_mm256_loadu_pd(pa.add(k)), _mm256_loadu_pd(pb.add(k))) };
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
            k += 4;
        }
        let mut s = hsum_tree(acc);
        for (x, y) in a[quads..].iter().zip(b[quads..].iter()) {
            s += x * y;
        }
        s
    }

    /// FMA fast-mode dot: four `ymm` accumulators (16 elements in flight)
    /// fed by `_mm256_fmadd_pd`, tree-merged, with a 4-wide then scalar
    /// `mul_add` remainder.  Different grouping and fused rounding — this is
    /// the level that is tolerance-equal, not bit-equal.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_fma_impl(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let wide = n / 16 * 16;
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut k = 0;
        while k < wide {
            // SAFETY: k+15 < wide <= n for both equally sized slices.
            unsafe {
                acc0 =
                    _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(k)), _mm256_loadu_pd(pb.add(k)), acc0);
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(k + 4)),
                    _mm256_loadu_pd(pb.add(k + 4)),
                    acc1,
                );
                acc2 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(k + 8)),
                    _mm256_loadu_pd(pb.add(k + 8)),
                    acc2,
                );
                acc3 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(pa.add(k + 12)),
                    _mm256_loadu_pd(pb.add(k + 12)),
                    acc3,
                );
            }
            k += 16;
        }
        let quads = n / 4 * 4;
        while k < quads {
            // SAFETY: k+3 < quads <= n.
            unsafe {
                acc0 =
                    _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(k)), _mm256_loadu_pd(pb.add(k)), acc0);
            }
            k += 4;
        }
        let acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
        let mut s = hsum_tree(acc);
        for (x, y) in a[quads..].iter().zip(b[quads..].iter()) {
            s = x.mul_add(*y, s);
        }
        s
    }

    /// Bit-exact lanes AXPY: per element `y[i] += alpha*x[i]`, two roundings,
    /// exactly the scalar loop.  The main loop runs 16 elements (4 ymm) per
    /// iteration to keep the load/store ports busy; elementwise ops have no
    /// reduction order, so the unroll cannot change any bit of the result.
    #[target_feature(enable = "avx2")]
    fn axpy_lanes_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let sixteens = n / 16 * 16;
        let quads = n / 4 * 4;
        let va = _mm256_set1_pd(alpha);
        let (px, py) = (x.as_ptr(), y.as_mut_ptr());
        let mut k = 0;
        while k < sixteens {
            // SAFETY: k+15 < sixteens <= n for both equally sized slices.
            unsafe {
                let p0 = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k)));
                let p1 = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k + 4)));
                let p2 = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k + 8)));
                let p3 = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k + 12)));
                _mm256_storeu_pd(py.add(k), _mm256_add_pd(_mm256_loadu_pd(py.add(k)), p0));
                _mm256_storeu_pd(
                    py.add(k + 4),
                    _mm256_add_pd(_mm256_loadu_pd(py.add(k + 4)), p1),
                );
                _mm256_storeu_pd(
                    py.add(k + 8),
                    _mm256_add_pd(_mm256_loadu_pd(py.add(k + 8)), p2),
                );
                _mm256_storeu_pd(
                    py.add(k + 12),
                    _mm256_add_pd(_mm256_loadu_pd(py.add(k + 12)), p3),
                );
            }
            k += 16;
        }
        while k < quads {
            // SAFETY: k+3 < quads <= n for both equally sized slices.
            unsafe {
                let prod = _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k)));
                _mm256_storeu_pd(py.add(k), _mm256_add_pd(_mm256_loadu_pd(py.add(k)), prod));
            }
            k += 4;
        }
        for (yi, xi) in y[quads..].iter_mut().zip(x[quads..].iter()) {
            *yi += alpha * xi;
        }
    }

    /// FMA AXPY: `y[i] = fma(alpha, x[i], y[i])` — one rounding per element,
    /// 16 elements (4 ymm) per main-loop iteration.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn axpy_fma_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let sixteens = n / 16 * 16;
        let quads = n / 4 * 4;
        let va = _mm256_set1_pd(alpha);
        let (px, py) = (x.as_ptr(), y.as_mut_ptr());
        let mut k = 0;
        while k < sixteens {
            // SAFETY: k+15 < sixteens <= n for both equally sized slices.
            unsafe {
                let r0 =
                    _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(k)), _mm256_loadu_pd(py.add(k)));
                let r1 = _mm256_fmadd_pd(
                    va,
                    _mm256_loadu_pd(px.add(k + 4)),
                    _mm256_loadu_pd(py.add(k + 4)),
                );
                let r2 = _mm256_fmadd_pd(
                    va,
                    _mm256_loadu_pd(px.add(k + 8)),
                    _mm256_loadu_pd(py.add(k + 8)),
                );
                let r3 = _mm256_fmadd_pd(
                    va,
                    _mm256_loadu_pd(px.add(k + 12)),
                    _mm256_loadu_pd(py.add(k + 12)),
                );
                _mm256_storeu_pd(py.add(k), r0);
                _mm256_storeu_pd(py.add(k + 4), r1);
                _mm256_storeu_pd(py.add(k + 8), r2);
                _mm256_storeu_pd(py.add(k + 12), r3);
            }
            k += 16;
        }
        while k < quads {
            // SAFETY: k+3 < quads <= n for both equally sized slices.
            unsafe {
                let r = _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(k)), _mm256_loadu_pd(py.add(k)));
                _mm256_storeu_pd(py.add(k), r);
            }
            k += 4;
        }
        for (yi, xi) in y[quads..].iter_mut().zip(x[quads..].iter()) {
            *yi = alpha.mul_add(*xi, *yi);
        }
    }

    /// `dst += src`, 4 lanes at a time (pure adds — identical at every level).
    #[target_feature(enable = "avx2")]
    fn add_assign_impl(dst: &mut [f64], src: &[f64]) {
        let n = dst.len();
        let quads = n / 4 * 4;
        let (pd, ps) = (dst.as_mut_ptr(), src.as_ptr());
        let mut k = 0;
        while k < quads {
            // SAFETY: k+3 < quads <= n for both equally sized slices.
            unsafe {
                let sum = _mm256_add_pd(_mm256_loadu_pd(pd.add(k)), _mm256_loadu_pd(ps.add(k)));
                _mm256_storeu_pd(pd.add(k), sum);
            }
            k += 4;
        }
        for (d, s) in dst[quads..].iter_mut().zip(src[quads..].iter()) {
            *d += s;
        }
    }

    /// `x *= alpha`, 4 lanes at a time (pure muls — identical at every level).
    #[target_feature(enable = "avx2")]
    fn scale_impl(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let quads = n / 4 * 4;
        let va = _mm256_set1_pd(alpha);
        let px = x.as_mut_ptr();
        let mut k = 0;
        while k < quads {
            // SAFETY: k+3 < quads <= n.
            unsafe {
                _mm256_storeu_pd(px.add(k), _mm256_mul_pd(va, _mm256_loadu_pd(px.add(k))));
            }
            k += 4;
        }
        for xi in x[quads..].iter_mut() {
            *xi *= alpha;
        }
    }

    /// Adds the finished register tile to `C` — shared by both micro-kernel
    /// variants; the tile add is a plain lane add at every level.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn store_tile(acc: &[[__m256d; 2]; MR], c: &mut [f64], ldc: usize, i0: usize, j0: usize) {
        for (r, acc_r) in acc.iter().enumerate() {
            let base = (i0 + r) * ldc + j0;
            let crow = c[base..base + NR].as_mut_ptr();
            // SAFETY: the slice above proves NR elements are in range.
            unsafe {
                _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc_r[0]));
                _mm256_storeu_pd(
                    crow.add(4),
                    _mm256_add_pd(_mm256_loadu_pd(crow.add(4)), acc_r[1]),
                );
            }
        }
    }

    /// Bit-exact lanes micro-kernel: the k-loop accumulates `MR` broadcast
    /// rows against two 4-lane halves of the packed B panel — per element
    /// the same `acc[r][cc] += a[r]*b[cc]` recurrence in the same k-order as
    /// the scalar tile.
    #[target_feature(enable = "avx2")]
    fn microkernel_lanes_impl(
        pa: &[f64],
        pb: &[f64],
        kb: usize,
        c: &mut [f64],
        ldc: usize,
        i0: usize,
        j0: usize,
    ) {
        debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
        let mut acc = [[_mm256_setzero_pd(); 2]; MR];
        let (ppa, ppb) = (pa.as_ptr(), pb.as_ptr());
        for k in 0..kb {
            // SAFETY: k < kb, so k*NR+7 < kb*NR <= pb.len() and
            // k*MR+MR-1 < kb*MR <= pa.len().
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_pd(ppb.add(k * NR)),
                    _mm256_loadu_pd(ppb.add(k * NR + 4)),
                )
            };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                // SAFETY: r < MR, covered by the bound above.
                let a = unsafe { _mm256_set1_pd(*ppa.add(k * MR + r)) };
                acc_r[0] = _mm256_add_pd(acc_r[0], _mm256_mul_pd(a, b0));
                acc_r[1] = _mm256_add_pd(acc_r[1], _mm256_mul_pd(a, b1));
            }
        }
        store_tile(&acc, c, ldc, i0, j0);
    }

    /// FMA micro-kernel: identical structure, fused multiply-adds in the
    /// k-loop.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn microkernel_fma_impl(
        pa: &[f64],
        pb: &[f64],
        kb: usize,
        c: &mut [f64],
        ldc: usize,
        i0: usize,
        j0: usize,
    ) {
        debug_assert!(pa.len() >= kb * MR && pb.len() >= kb * NR);
        let mut acc = [[_mm256_setzero_pd(); 2]; MR];
        let (ppa, ppb) = (pa.as_ptr(), pb.as_ptr());
        for k in 0..kb {
            // SAFETY: same bounds as the lanes variant.
            let (b0, b1) = unsafe {
                (
                    _mm256_loadu_pd(ppb.add(k * NR)),
                    _mm256_loadu_pd(ppb.add(k * NR + 4)),
                )
            };
            for (r, acc_r) in acc.iter_mut().enumerate() {
                // SAFETY: r < MR, covered by the bound above.
                let a = unsafe { _mm256_set1_pd(*ppa.add(k * MR + r)) };
                acc_r[0] = _mm256_fmadd_pd(a, b0, acc_r[0]);
                acc_r[1] = _mm256_fmadd_pd(a, b1, acc_r[1]);
            }
        }
        store_tile(&acc, c, ldc, i0, j0);
    }

    /// FMA sparse gather: 4 values at a time against a manually gathered
    /// 4-lane group of `v`, fused accumulate, fixed-tree reduce, `mul_add`
    /// remainder.  Only used at the `LanesFma` level — the bit-exact levels
    /// need the strictly sequential scalar order.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn gather_dot_fma_impl(v: &[f64], idx: &[u32], vals: &[f64]) -> f64 {
        let n = idx.len();
        let quads = n / 4 * 4;
        let mut acc = _mm256_setzero_pd();
        let mut t = 0;
        while t < quads {
            // Indexing through the safe `[]` operator keeps the documented
            // out-of-range panic; `_mm256_set_pd` takes lanes high-to-low.
            let g = _mm256_set_pd(
                v[idx[t + 3] as usize],
                v[idx[t + 2] as usize],
                v[idx[t + 1] as usize],
                v[idx[t] as usize],
            );
            // SAFETY: t+3 < quads <= vals.len() (checked by the caller's
            // idx/vals length contract).
            let w = unsafe { _mm256_loadu_pd(vals.as_ptr().add(t)) };
            acc = _mm256_fmadd_pd(w, g, acc);
            t += 4;
        }
        let mut s = hsum_tree(acc);
        for (&i, &w) in idx[quads..].iter().zip(vals[quads..].iter()) {
            s = w.mul_add(v[i as usize], s);
        }
        s
    }

    // ---- safe wrappers -----------------------------------------------------

    /// `a·b` via the AVX2 lane kernel, falling back to scalar off-AVX2.
    pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
        if has_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { dot_lanes_impl(a, b) }
        } else {
            scalar::dot(a, b)
        }
    }

    /// `a·b` via the FMA kernel, falling back to scalar off-FMA.
    pub fn dot_fma(a: &[f64], b: &[f64]) -> f64 {
        if has_fma() {
            // SAFETY: AVX2+FMA support verified at runtime.
            unsafe { dot_fma_impl(a, b) }
        } else {
            scalar::dot(a, b)
        }
    }

    /// `y += alpha·x` via the AVX2 lane kernel, scalar off-AVX2.
    pub fn axpy_lanes(alpha: f64, x: &[f64], y: &mut [f64]) {
        if has_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { axpy_lanes_impl(alpha, x, y) }
        } else {
            scalar::axpy(alpha, x, y);
        }
    }

    /// `y += alpha·x` via the FMA kernel, scalar off-FMA.
    pub fn axpy_fma(alpha: f64, x: &[f64], y: &mut [f64]) {
        if has_fma() {
            // SAFETY: AVX2+FMA support verified at runtime.
            unsafe { axpy_fma_impl(alpha, x, y) }
        } else {
            scalar::axpy(alpha, x, y);
        }
    }

    /// `dst += src` via the AVX2 lane kernel, scalar off-AVX2.
    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        if has_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { add_assign_impl(dst, src) }
        } else {
            scalar::add_assign(dst, src);
        }
    }

    /// `x *= alpha` via the AVX2 lane kernel, scalar off-AVX2.
    pub fn scale(alpha: f64, x: &mut [f64]) {
        if has_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { scale_impl(alpha, x) }
        } else {
            scalar::scale(alpha, x);
        }
    }

    /// The 4×4 GEMM microkernel via AVX2 lanes, scalar off-AVX2.
    pub fn microkernel_lanes(
        pa: &[f64],
        pb: &[f64],
        kb: usize,
        c: &mut [f64],
        ldc: usize,
        i0: usize,
        j0: usize,
    ) {
        if has_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { microkernel_lanes_impl(pa, pb, kb, c, ldc, i0, j0) }
        } else {
            scalar::microkernel(pa, pb, kb, c, ldc, i0, j0);
        }
    }

    /// The 4×4 GEMM microkernel via FMA, scalar off-FMA.
    pub fn microkernel_fma(
        pa: &[f64],
        pb: &[f64],
        kb: usize,
        c: &mut [f64],
        ldc: usize,
        i0: usize,
        j0: usize,
    ) {
        if has_fma() {
            // SAFETY: AVX2+FMA support verified at runtime.
            unsafe { microkernel_fma_impl(pa, pb, kb, c, ldc, i0, j0) }
        } else {
            scalar::microkernel(pa, pb, kb, c, ldc, i0, j0);
        }
    }

    /// Sparse gather-dot `Σ vals[t]·v[idx[t]]` via FMA, scalar off-FMA.
    pub fn gather_dot_fma(v: &[f64], idx: &[u32], vals: &[f64]) -> f64 {
        if has_fma() {
            // SAFETY: AVX2+FMA support verified at runtime.
            unsafe { gather_dot_fma_impl(v, idx, vals) }
        } else {
            scalar::gather_dot(v, idx, vals)
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

/// Dot product at an explicit level.
///
/// `Scalar` and `Lanes` produce identical bits (4-lane groups, mul-then-add,
/// fixed reduction tree); `LanesFma` uses wide fused accumulators and is
/// tolerance-equal only.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dot(level: SimdLevel, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "simd::dot: dimension mismatch");
    match level {
        SimdLevel::Scalar => scalar::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Lanes => x86::dot_lanes(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::LanesFma => x86::dot_fma(a, b),
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::dot(a, b),
    }
}

/// `y += alpha * x` at an explicit level.  Element-wise, so `Scalar` and
/// `Lanes` are bit-identical; `LanesFma` fuses the multiply-add (one rounding
/// per element instead of two).
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn axpy(level: SimdLevel, alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "simd::axpy: dimension mismatch");
    match level {
        SimdLevel::Scalar => scalar::axpy(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Lanes => x86::axpy_lanes(alpha, x, y),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::LanesFma => x86::axpy_fma(alpha, x, y),
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::axpy(alpha, x, y),
    }
}

/// `dst += src` at an explicit level.  Pure lane-wise adds — identical bits
/// at **every** level, including `LanesFma` (there is nothing to fuse), which
/// is what lets the multiply-free one-hot kernels keep their exactness
/// contract even in fast mode.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn add_assign(level: SimdLevel, dst: &mut [f64], src: &[f64]) {
    assert_eq!(dst.len(), src.len(), "simd::add_assign: dimension mismatch");
    match level {
        SimdLevel::Scalar => scalar::add_assign(dst, src),
        #[cfg(target_arch = "x86_64")]
        _ => x86::add_assign(dst, src),
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::add_assign(dst, src),
    }
}

/// `x *= alpha` at an explicit level.  Pure lane-wise muls — identical bits
/// at every level.
#[inline]
pub fn scale(level: SimdLevel, alpha: f64, x: &mut [f64]) {
    match level {
        SimdLevel::Scalar => scalar::scale(alpha, x),
        #[cfg(target_arch = "x86_64")]
        _ => x86::scale(alpha, x),
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::scale(alpha, x),
    }
}

/// The `MR×NR` GEMM micro-kernel at an explicit level: accumulates `kb`
/// packed outer products into a register tile, then adds the tile to `C`.
///
/// `Scalar` and `Lanes` perform the identical per-element
/// `acc[r][cc] += a[r]·b[cc]` recurrence in the same k-order, so they are
/// bit-identical; `LanesFma` fuses the k-loop multiply-adds.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the BLIS micro-kernel ABI: packed panels + C tile coords
pub fn microkernel(
    level: SimdLevel,
    pa: &[f64],
    pb: &[f64],
    kb: usize,
    c: &mut [f64],
    ldc: usize,
    i0: usize,
    j0: usize,
) {
    match level {
        SimdLevel::Scalar => scalar::microkernel(pa, pb, kb, c, ldc, i0, j0),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Lanes => x86::microkernel_lanes(pa, pb, kb, c, ldc, i0, j0),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::LanesFma => x86::microkernel_fma(pa, pb, kb, c, ldc, i0, j0),
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::microkernel(pa, pb, kb, c, ldc, i0, j0),
    }
}

/// Sparse gather `Σ_t vals[t]·v[idx[t]]` at an explicit level.
///
/// The bit-exact levels (`Scalar`, `Lanes`) both run the strictly sequential
/// scalar loop — the CSR exactness contract against the dense naive oracle
/// fixes the accumulation order, and a 4-lane regrouping would break it.
/// `LanesFma` vectorizes the gather with fused accumulates (tolerance-equal).
///
/// # Panics
/// Panics when `idx` and `vals` have different lengths, or an index is out of
/// range for `v`.
#[inline]
pub fn gather_dot(level: SimdLevel, v: &[f64], idx: &[u32], vals: &[f64]) -> f64 {
    assert_eq!(
        idx.len(),
        vals.len(),
        "simd::gather_dot: index/value length mismatch"
    );
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::LanesFma => x86::gather_dot_fma(v, idx, vals),
        _ => scalar::gather_dot(v, idx, vals),
    }
}

/// Sparse scatter `x[idx[t]] += alpha·vals[t]` at an explicit level.
///
/// Scatters have no vector form worth having on AVX2 (no scatter store), so
/// every level runs the scalar loop; `LanesFma` fuses the per-element
/// multiply-add, which is the only difference.
///
/// # Panics
/// Panics when `idx` and `vals` have different lengths, or an index is out of
/// range for `x`.
#[inline]
pub fn scatter_axpy(level: SimdLevel, alpha: f64, idx: &[u32], vals: &[f64], x: &mut [f64]) {
    assert_eq!(
        idx.len(),
        vals.len(),
        "simd::scatter_axpy: index/value length mismatch"
    );
    match level {
        SimdLevel::LanesFma => {
            for (&i, &w) in idx.iter().zip(vals.iter()) {
                x[i as usize] = alpha.mul_add(w, x[i as usize]);
            }
        }
        _ => scalar::scatter_axpy(alpha, idx, vals, x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, salt: u64) -> Vec<f64> {
        crate::testutil::TestRng::new(salt).vec_in(n, -1.0, 1.0)
    }

    /// Lengths chosen to hit every remainder path: empty, below one lane
    /// group, exact groups, `n % 4 ≠ 0`, and the 16-wide FMA boundary.
    const LENS: [usize; 10] = [0, 1, 2, 3, 4, 5, 7, 16, 17, 61];

    #[test]
    fn mode_labels_and_parsing_roundtrip() {
        for m in [SimdMode::Off, SimdMode::Auto, SimdMode::Fma] {
            assert_eq!(m.label().parse::<SimdMode>().unwrap(), m);
        }
        assert_eq!("scalar".parse::<SimdMode>().unwrap(), SimdMode::Off);
        assert!("bogus".parse::<SimdMode>().is_err());
    }

    #[test]
    fn env_resolution_warns_on_invalid_values() {
        assert_eq!(resolve_simd_env(None), (SimdMode::Auto, None));
        assert_eq!(resolve_simd_env(Some("off")), (SimdMode::Off, None));
        assert_eq!(resolve_simd_env(Some("fma")), (SimdMode::Fma, None));
        let (m, warning) = resolve_simd_env(Some("avx512"));
        assert_eq!(m, SimdMode::Auto);
        let msg = warning.expect("invalid mode must warn");
        assert!(msg.contains("avx512"), "warning must name the value: {msg}");
    }

    #[test]
    fn level_resolution_degrades_with_missing_features() {
        assert_eq!(level_for(SimdMode::Off, true, true).0, SimdLevel::Scalar);
        assert_eq!(level_for(SimdMode::Auto, true, true).0, SimdLevel::Lanes);
        assert_eq!(level_for(SimdMode::Auto, false, false).0, SimdLevel::Scalar);
        assert_eq!(level_for(SimdMode::Fma, true, true).0, SimdLevel::LanesFma);
        // asking for fma without the features degrades loudly
        let (l, w) = level_for(SimdMode::Fma, true, false);
        assert_eq!(l, SimdLevel::Lanes);
        assert!(w.expect("degrade must warn").contains("FMA"));
        let (l, w) = level_for(SimdMode::Fma, false, false);
        assert_eq!(l, SimdLevel::Scalar);
        assert!(w.expect("degrade must warn").contains("AVX2"));
    }

    #[test]
    fn override_guard_nests_and_restores() {
        let before = current_level();
        {
            let _outer = override_level(SimdLevel::Scalar);
            assert_eq!(current_level(), SimdLevel::Scalar);
            {
                let _inner = override_level(SimdLevel::LanesFma);
                assert_eq!(current_level(), SimdLevel::LanesFma);
            }
            assert_eq!(current_level(), SimdLevel::Scalar);
        }
        assert_eq!(current_level(), before);
    }

    #[test]
    fn override_is_thread_local() {
        let _guard = override_level(SimdLevel::Scalar);
        let seen = std::thread::spawn(current_level).join().unwrap();
        assert_eq!(seen, default_level());
    }

    #[test]
    fn lanes_dot_is_bit_identical_to_scalar() {
        for &n in &LENS {
            let a = pseudo(n, 100 + n as u64);
            let b = pseudo(n, 200 + n as u64);
            let s = dot(SimdLevel::Scalar, &a, &b);
            let l = dot(SimdLevel::Lanes, &a, &b);
            assert_eq!(s.to_bits(), l.to_bits(), "n={n}: {s} vs {l}");
        }
    }

    #[test]
    fn fma_dot_is_tolerance_equal_to_scalar() {
        for &n in &LENS {
            let a = pseudo(n, 300 + n as u64);
            let b = pseudo(n, 400 + n as u64);
            let s = dot(SimdLevel::Scalar, &a, &b);
            let f = dot(SimdLevel::LanesFma, &a, &b);
            assert!(
                crate::approx_eq(s, f, 1e-12),
                "n={n}: {s} vs {f} differ beyond tolerance"
            );
        }
    }

    #[test]
    fn lanes_axpy_scale_add_are_bit_identical_to_scalar() {
        for &n in &LENS {
            let x = pseudo(n, 500 + n as u64);
            let y0 = pseudo(n, 600 + n as u64);
            let mut ys = y0.clone();
            let mut yl = y0.clone();
            axpy(SimdLevel::Scalar, 0.37, &x, &mut ys);
            axpy(SimdLevel::Lanes, 0.37, &x, &mut yl);
            assert_eq!(ys, yl, "axpy n={n}");

            let mut ds = y0.clone();
            let mut dl = y0.clone();
            add_assign(SimdLevel::Scalar, &mut ds, &x);
            add_assign(SimdLevel::Lanes, &mut dl, &x);
            // add_assign is add-only, so even the FMA level matches exactly
            let mut df = y0.clone();
            add_assign(SimdLevel::LanesFma, &mut df, &x);
            assert_eq!(ds, dl, "add n={n}");
            assert_eq!(ds, df, "add fma n={n}");

            let mut ss = y0.clone();
            let mut sl = y0.clone();
            let mut sf = y0.clone();
            scale(SimdLevel::Scalar, -1.75, &mut ss);
            scale(SimdLevel::Lanes, -1.75, &mut sl);
            scale(SimdLevel::LanesFma, -1.75, &mut sf);
            assert_eq!(ss, sl, "scale n={n}");
            assert_eq!(ss, sf, "scale fma n={n}");
        }
    }

    #[test]
    fn microkernel_levels_agree() {
        let kb = 13; // odd depth exercises the k-loop without alignment help
        let pa = pseudo(kb * MR, 7);
        let pb = pseudo(kb * NR, 8);
        let c0 = pseudo(MR * NR, 9);
        let run = |level| {
            let mut c = c0.clone();
            microkernel(level, &pa, &pb, kb, &mut c, NR, 0, 0);
            c
        };
        let s = run(SimdLevel::Scalar);
        let l = run(SimdLevel::Lanes);
        assert_eq!(s, l, "lanes micro-kernel must match scalar bits");
        let f = run(SimdLevel::LanesFma);
        for (a, b) in s.iter().zip(f.iter()) {
            assert!(
                crate::approx_eq(*a, *b, 1e-12),
                "fma tile diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn gather_and_scatter_levels_agree() {
        let v = pseudo(50, 10);
        let idx: Vec<u32> = vec![0, 3, 7, 11, 19, 23, 31, 42, 49];
        let vals = pseudo(idx.len(), 11);
        let s = gather_dot(SimdLevel::Scalar, &v, &idx, &vals);
        let l = gather_dot(SimdLevel::Lanes, &v, &idx, &vals);
        assert_eq!(
            s.to_bits(),
            l.to_bits(),
            "lanes gather must keep scalar order"
        );
        let f = gather_dot(SimdLevel::LanesFma, &v, &idx, &vals);
        assert!(crate::approx_eq(s, f, 1e-12), "{s} vs {f}");

        let mut xs = v.clone();
        let mut xl = v.clone();
        scatter_axpy(SimdLevel::Scalar, 0.9, &idx, &vals, &mut xs);
        scatter_axpy(SimdLevel::Lanes, 0.9, &idx, &vals, &mut xl);
        assert_eq!(xs, xl);
        let mut xf = v.clone();
        scatter_axpy(SimdLevel::LanesFma, 0.9, &idx, &vals, &mut xf);
        for (a, b) in xs.iter().zip(xf.iter()) {
            assert!(crate::approx_eq(*a, *b, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(SimdLevel::Scalar, &[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_out_of_range_panics() {
        gather_dot(current_level(), &[1.0, 2.0], &[5], &[1.0]);
    }
}
