//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The GMM E-step needs, for every component `k`, the quantities `Σ_k⁻¹` (to
//! evaluate Mahalanobis distances) and `log|Σ_k|` (for the Gaussian normalizer).
//! Both are obtained from a single Cholesky factorization `Σ = L·Lᵀ`:
//!
//! * `log|Σ| = 2·Σ_i log L_ii`
//! * `Σ⁻¹ b` via forward/backward substitution, and the explicit inverse when a
//!   matrix is needed for the blocked decompositions of the factorized E-step.
//!
//! A failed factorization signals a non-SPD covariance (e.g. a degenerate cluster);
//! callers regularize (`Matrix::add_diag`) and retry.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Error returned when a matrix is not symmetric positive-definite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotPositiveDefinite {
    /// Index of the pivot at which the factorization broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (non-positive pivot at index {})",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L·Lᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers do not need to
    /// symmetrize a slightly asymmetric accumulator first (though doing so keeps
    /// all algorithm variants bit-identical).
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "Cholesky::factor: matrix must be square");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// `log|A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        self.log_det().exp()
    }

    /// Solves `A x = b` using forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.dim(), "Cholesky::solve: dimension mismatch");
        let n = self.dim();
        // forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, &yk) in y[..i].iter().enumerate() {
                sum -= self.l[(i, k)] * yk;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (off, &xk) in x[i + 1..].iter().enumerate() {
                sum -= self.l[(i + 1 + off, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Explicit inverse `A⁻¹`, built column by column from unit vectors.
    ///
    /// The factorized GMM E-step partitions this inverse into blocks (Eq. 9–12 and
    /// Eq. 21), so the dense inverse is materialized once per EM iteration per
    /// component and then reused for every tuple.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        // Enforce exact symmetry (solve() introduces tiny asymmetries).
        inv.symmetrize();
        inv
    }

    /// Mahalanobis squared distance `xᵀ A⁻¹ x` computed via a triangular solve,
    /// without forming the inverse.
    pub fn mahalanobis_sq(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "mahalanobis_sq: dimension mismatch");
        // Solve L z = x, then xᵀ A⁻¹ x = zᵀ z.
        let n = self.dim();
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = x[i];
            for (k, &zk) in z[..i].iter().enumerate() {
                sum -= self.l[(i, k)] * zk;
            }
            z[i] = sum / self.l[(i, i)];
        }
        z.iter().map(|v| v * v).sum()
    }
}

/// Convenience: inverse and log-determinant of an SPD matrix in one call.
pub fn inverse_and_log_det(a: &Matrix) -> Result<(Matrix, f64), NotPositiveDefinite> {
    let ch = Cholesky::factor(a)?;
    Ok((ch.inverse(), ch.log_det()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::gemm::matmul;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn factor_reconstructs_original() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.lower();
        let rec = matmul(l, &l.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn identity_factorization() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert_eq!(ch.lower(), &Matrix::identity(4));
        assert!(approx_eq(ch.log_det(), 0.0, 1e-15));
        assert!(approx_eq(ch.det(), 1.0, 1e-15));
    }

    #[test]
    fn log_det_matches_known_value() {
        // det of diag(2, 3, 4) = 24
        let a = Matrix::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ch.det(), 24.0, 1e-12));
        assert!(approx_eq(ch.log_det(), 24.0_f64.ln(), 1e-12));
    }

    #[test]
    fn solve_and_inverse_agree() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        // A x should equal b
        let ax = crate::gemm::matvec(&a, &x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!(approx_eq(*got, *want, 1e-10), "{got} vs {want}");
        }
        // inverse * A = I
        let inv = ch.inverse();
        let prod = matmul(&inv, &a);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn mahalanobis_matches_inverse_quadratic_form() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x = [0.3, -1.2, 2.0];
        let via_solve = ch.mahalanobis_sq(&x);
        let inv = ch.inverse();
        let via_inv = crate::gemm::quadratic_form_sym(&x, &inv);
        assert!(approx_eq(via_solve, via_inv, 1e-10));
    }

    #[test]
    fn non_spd_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        let err = Cholesky::factor(&a).unwrap_err();
        assert_eq!(err.pivot, 1);
        let zero = Matrix::zeros(2, 2);
        assert!(Cholesky::factor(&zero).is_err());
    }

    #[test]
    fn regularization_recovers_spd() {
        let mut a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]); // singular
        assert!(Cholesky::factor(&a).is_err());
        a.add_diag(1e-6);
        assert!(Cholesky::factor(&a).is_ok());
    }

    #[test]
    fn inverse_and_log_det_helper() {
        let a = spd3();
        let (inv, ld) = inverse_and_log_det(&a).unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(approx_eq(ld, ch.log_det(), 1e-14));
        assert!(inv.max_abs_diff(&ch.inverse()) < 1e-14);
    }
}
