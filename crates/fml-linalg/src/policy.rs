//! Kernel execution policies and the deterministic data-parallel helpers.
//!
//! Every heavy kernel in this crate ([`crate::gemm`], [`crate::block`]) is
//! implemented three ways and selected by a [`KernelPolicy`]:
//!
//! * [`KernelPolicy::Naive`] — the straightforward triple loops of the original
//!   implementation.  Reference semantics: strictly sequential accumulation in
//!   index order.  Kept as the oracle for the equivalence property tests.
//! * [`KernelPolicy::Blocked`] — cache-tiled kernels with packed panels and a
//!   register-blocked `MR×NR` micro-kernel (see [`crate::gemm`] for the tiling
//!   parameters).  Changes the *grouping* of floating-point additions (never the
//!   multiplication set), so results agree with `Naive` to within
//!   [`crate::TEST_EPS`]-style tolerances but are not bit-identical.
//! * [`KernelPolicy::BlockedParallel`] — the blocked kernels with the outer loop
//!   split over the persistent worker pool ([`crate::pool`]).  Work is
//!   partitioned into chunks whose
//!   boundaries depend only on the problem shape and the thread count, and
//!   per-chunk results are merged **in chunk-index order** (a fixed-shape
//!   reduction tree), so a given machine configuration always produces the same
//!   bits.  Output-disjoint kernels (GEMM row bands aligned to the register
//!   tile) are bit-identical to `Blocked`; reductions (dot products, scatter
//!   merges) agree within tolerance.
//!
//! The process-wide default policy is `Blocked`, overridable with the
//! `FML_KERNEL_POLICY` environment variable (`naive` | `blocked` | `parallel`)
//! or [`set_default_policy`].  Thread count defaults to the machine's available
//! parallelism, overridable with `FML_THREADS`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Selects which implementation of the dense kernels runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelPolicy {
    /// Reference triple loops, strictly sequential accumulation.
    Naive,
    /// Cache-tiled, register-blocked kernels (single thread).
    Blocked,
    /// Blocked kernels with deterministic multi-threaded outer loops.
    BlockedParallel,
}

impl KernelPolicy {
    /// All policies, in increasing order of sophistication.
    pub const ALL: [KernelPolicy; 3] = [
        KernelPolicy::Naive,
        KernelPolicy::Blocked,
        KernelPolicy::BlockedParallel,
    ];

    /// Short lowercase label (`naive` / `blocked` / `parallel`).
    pub fn label(self) -> &'static str {
        match self {
            KernelPolicy::Naive => "naive",
            KernelPolicy::Blocked => "blocked",
            KernelPolicy::BlockedParallel => "parallel",
        }
    }

    /// Whether this policy may fan work out to the thread pool.
    pub fn is_parallel(self) -> bool {
        matches!(self, KernelPolicy::BlockedParallel)
    }

    /// The single-threaded policy with the same per-kernel arithmetic.
    ///
    /// Training drivers that parallelize at a coarser granularity (per tuple
    /// chunk / per join group) run the kernels *inside* each worker under this
    /// policy, so the pool is never entered twice.
    pub fn sequential(self) -> KernelPolicy {
        match self {
            KernelPolicy::BlockedParallel => KernelPolicy::Blocked,
            p => p,
        }
    }
}

impl Default for KernelPolicy {
    /// The process-wide default — see [`default_policy`].
    fn default() -> Self {
        default_policy()
    }
}

impl fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for KernelPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(KernelPolicy::Naive),
            "blocked" => Ok(KernelPolicy::Blocked),
            "parallel" | "blocked_parallel" | "blocked+parallel" => {
                Ok(KernelPolicy::BlockedParallel)
            }
            other => Err(format!(
                "unknown kernel policy {other:?} (expected naive|blocked|parallel)"
            )),
        }
    }
}

/// Below this many scalar flops the parallel policy is not worth a fan-out:
/// dispatch bookkeeping dominates.  Kernels pass their flop estimate
/// (`2·m·n·k` for GEMM-shaped work) through [`effective_policy`] so
/// `BlockedParallel` degrades to the bit-identical `Blocked` kernel instead of
/// paying per-call fan-out bookkeeping (partial-result buffers, queue pushes,
/// condvar wakeups) for work that fits comfortably on one core.
///
/// Historically `1 << 20`: each parallel region paid a fresh
/// `std::thread::scope` spawn per chunk (~tens of µs).  The persistent pool
/// ([`crate::pool`]) cut the per-region cost to single-digit µs, so the
/// cutoff dropped 4× — mid-size kernels that used to run sequentially now
/// amortize a pool dispatch.
pub const PAR_MIN_FLOPS: usize = 1 << 18;

/// The fan-out cutoff for rank-1 (GER) updates, far higher than
/// [`PAR_MIN_FLOPS`]: GER reads **and writes** its whole output matrix while
/// doing only 2 flops per element, so it is memory-bandwidth-bound and extra
/// threads mostly contend for the same bus.  Dropped from `1 << 24` with the
/// persistent pool (dispatch is cheaper than a spawn, so slightly smaller
/// outer products can win), but only to `3 << 22`: below ~2048×3072 the
/// bandwidth wall — not dispatch cost — still makes extra threads useless,
/// so a 2048² update stays on the sequential blocked kernel.
pub const GER_PAR_MIN_FLOPS: usize = 3 << 22;

/// Degrades `BlockedParallel` to `Blocked` when `flops` is below `min_flops`.
///
/// The two policies are bit-identical by construction (MR-aligned bands,
/// chunk-order merges), so this is purely a dispatch decision: below the
/// cutoff the blocked kernel is *always* at least as fast, because the
/// parallel wrapper adds fan-out bookkeeping even when it ends up running a
/// single chunk.  `Naive` and `Blocked` pass through untouched.
#[inline]
pub fn effective_policy(policy: KernelPolicy, flops: usize, min_flops: usize) -> KernelPolicy {
    if policy.is_parallel() && flops < min_flops {
        KernelPolicy::Blocked
    } else {
        policy
    }
}

const POLICY_UNSET: u8 = u8::MAX;

static DEFAULT_POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);

fn policy_to_u8(p: KernelPolicy) -> u8 {
    match p {
        KernelPolicy::Naive => 0,
        KernelPolicy::Blocked => 1,
        KernelPolicy::BlockedParallel => 2,
    }
}

fn policy_from_u8(v: u8) -> KernelPolicy {
    match v {
        0 => KernelPolicy::Naive,
        2 => KernelPolicy::BlockedParallel,
        _ => KernelPolicy::Blocked,
    }
}

/// Resolves the initial default policy from a raw `FML_KERNEL_POLICY` value.
///
/// Returns the chosen policy and, when the raw value was present but invalid,
/// a warning describing the rejection and the fallback — invalid overrides
/// must never be silently swallowed (a typo like `blokced` would otherwise
/// benchmark the wrong kernels without any indication).
pub(crate) fn resolve_policy_env(raw: Option<&str>) -> (KernelPolicy, Option<String>) {
    match raw {
        None => (KernelPolicy::Blocked, None),
        Some(s) => match s.parse::<KernelPolicy>() {
            Ok(p) => (p, None),
            Err(e) => (
                KernelPolicy::Blocked,
                Some(format!(
                    "FML_KERNEL_POLICY: {e}; falling back to the default policy `blocked`"
                )),
            ),
        },
    }
}

/// Resolves the worker-thread count from a raw `FML_THREADS` value, falling
/// back to `available` (the machine's available parallelism).
///
/// Returns the chosen count and a warning when the raw value was present but
/// rejected — unparsable strings and the meaningless `0` both fall back.
pub(crate) fn resolve_threads_env(raw: Option<&str>, available: usize) -> (usize, Option<String>) {
    match raw {
        None => (available, None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => (
                available,
                Some(format!(
                    "FML_THREADS: thread count must be >= 1, got 0; \
                     falling back to available parallelism ({available})"
                )),
            ),
            Ok(n) => (n, None),
            Err(_) => (
                available,
                Some(format!(
                    "FML_THREADS: invalid thread count {s:?}; \
                     falling back to available parallelism ({available})"
                )),
            ),
        },
    }
}

/// Prints an environment-override warning exactly once per guard flag, and
/// counts every occurrence (first or suppressed) in the `fml-obs`
/// `fml_env_warnings_total` counter — the workspace's single warn-once sink.
fn warn_once(guard: &std::sync::atomic::AtomicBool, msg: &str) {
    fml_obs::warn_once(guard, msg);
}

/// The process-wide default policy used by the non-`_with` kernel entry points.
///
/// Initialized on first use from `FML_KERNEL_POLICY` (falling back to
/// `Blocked`, with a one-time warning naming any rejected value); changeable
/// at runtime with [`set_default_policy`].
pub fn default_policy() -> KernelPolicy {
    let v = DEFAULT_POLICY.load(Ordering::Relaxed);
    if v != POLICY_UNSET {
        return policy_from_u8(v);
    }
    static POLICY_WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let raw = std::env::var("FML_KERNEL_POLICY").ok();
    let (initial, warning) = resolve_policy_env(raw.as_deref());
    if let Some(msg) = warning {
        warn_once(&POLICY_WARNED, &msg);
    }
    // Racing initializations agree (env is stable), so a relaxed store is fine.
    DEFAULT_POLICY.store(policy_to_u8(initial), Ordering::Relaxed);
    initial
}

/// Overrides the process-wide default policy.
pub fn set_default_policy(policy: KernelPolicy) {
    DEFAULT_POLICY.store(policy_to_u8(policy), Ordering::Relaxed);
}

std::thread_local! {
    /// Per-thread worker-count override installed by [`override_threads`].
    ///
    /// When a trainer or scorer resolves an explicit `ExecPolicy::threads`
    /// value, it installs the resolved count here for the duration of its
    /// run, so `par_row_bands`-based kernels invoked under the
    /// `BlockedParallel` policy fan out to exactly that many workers instead
    /// of the process-global [`num_threads`] pool size.
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// RAII guard for a scoped worker-count override (see [`override_threads`]).
/// Dropping the guard restores the previous override, so guards nest.
#[derive(Debug)]
#[must_use = "the override is removed when the guard drops"]
pub struct ThreadCountGuard {
    prev: Option<usize>,
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Installs a worker-count override for the current thread until the returned
/// guard drops: every [`par_chunks`] / [`par_row_bands`] fan-out on this
/// thread splits into at most `threads` chunks, regardless of `FML_THREADS`
/// or the machine's available parallelism.
///
/// This is how a builder-set [`crate::ExecPolicy::threads`] becomes exact
/// *inside* `BlockedParallel` kernel regions, not just in the trainers'
/// explicit [`par_chunks_with_threads`] fan-outs: the trainers and the
/// scoring paths install the resolved count at entry, and any kernel they
/// (or the caller) invoke under the parallel policy reads it through
/// [`current_threads`].
pub fn override_threads(threads: usize) -> ThreadCountGuard {
    let threads = threads.max(1);
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads)));
    ThreadCountGuard { prev }
}

/// Convenience wrapper running `f` under [`override_threads`].
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _guard = override_threads(threads);
    f()
}

/// The worker count a parallel fan-out on this thread should use: the scoped
/// override installed by [`override_threads`] when present, otherwise the
/// process-wide [`num_threads`].
pub fn current_threads() -> usize {
    current_override().unwrap_or_else(num_threads)
}

/// The raw scoped override, if any — `None` when the thread runs under the
/// global default.  Pool dispatch ([`crate::pool::run`]) captures this and
/// installs it in each worker for the duration of the task, so builder-set
/// `ExecPolicy::threads` stays exact inside nested fan-outs.
pub(crate) fn current_override() -> Option<usize> {
    THREAD_OVERRIDE.with(|c| c.get())
}

/// Number of worker threads the `BlockedParallel` policy fans out to:
/// `FML_THREADS` if set and valid, otherwise the machine's available
/// parallelism.  Invalid values (unparsable, or `0`) emit a one-time warning
/// naming the rejected value and the fallback.
pub fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let available = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        static THREADS_WARNED: std::sync::atomic::AtomicBool =
            std::sync::atomic::AtomicBool::new(false);
        let raw = std::env::var("FML_THREADS").ok();
        let (threads, warning) = resolve_threads_env(raw.as_deref(), available);
        if let Some(msg) = warning {
            warn_once(&THREADS_WARNED, &msg);
        }
        threads
    })
}

/// Deterministic chunk boundaries: splits `0..n` into at most `max_chunks`
/// contiguous ranges of near-equal length, each a multiple of `align` except
/// possibly the last.  Depends only on the arguments — never on scheduling.
pub fn chunk_ranges(n: usize, max_chunks: usize, align: usize) -> Vec<Range<usize>> {
    let align = align.max(1);
    if n == 0 || max_chunks <= 1 {
        let mut whole = Vec::new();
        if n > 0 {
            whole.push(0..n);
        }
        return whole;
    }
    let aligned_units = n.div_ceil(align);
    let chunks = max_chunks.min(aligned_units);
    let units_per_chunk = aligned_units.div_ceil(chunks);
    let step = units_per_chunk * align;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    while start < n {
        let end = (start + step).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `f` over deterministic chunks of `0..n` — on the persistent worker
/// pool ([`crate::pool`]) when `parallel` is true and the work splits — and
/// returns the per-chunk results **in chunk-index order**.  Callers merge the
/// returned values front-to-back, which fixes the reduction order regardless
/// of which thread finished first.
///
/// The worker count is [`current_threads`]: a scoped [`override_threads`]
/// installed by the caller (the trainers and scorers install their resolved
/// `ExecPolicy::threads`) beats the process-global pool size.
pub fn par_chunks<T, F>(parallel: bool, n: usize, align: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let threads = if parallel { current_threads() } else { 1 };
    par_chunks_with_threads(threads, n, align, f)
}

/// [`par_chunks`] with an explicit worker count — lets callers (and tests on
/// single-core machines) force a genuine multi-chunk fan-out regardless of
/// `FML_THREADS` / available parallelism.
pub fn par_chunks_with_threads<T, F>(threads: usize, n: usize, align: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, threads, align);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    // Each chunk writes its own slot, so the merge below is in chunk-index
    // order no matter which pool worker (or the caller, via help-first
    // draining) ran it.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    crate::pool::run(
        slots
            .iter_mut()
            .zip(ranges)
            .map(|(slot, range)| {
                let f = &f;
                move || *slot = Some(f(range))
            })
            .collect(),
    );
    slots
        .into_iter()
        .map(|s| s.expect("pool task completed"))
        .collect()
}

/// Splits `data` into bands of `band_rows * row_len` elements and runs `f` on
/// each band — in parallel when `parallel` is true.  Band boundaries are
/// row-aligned and deterministic; each element of `data` belongs to exactly one
/// band, so the result is independent of scheduling.
///
/// `f` receives `(first_row_of_band, band_slice)`.
///
/// The worker count is [`current_threads`], so a scoped [`override_threads`]
/// (the resolved `ExecPolicy::threads` of the enclosing training or scoring
/// run) bounds the fan-out of every policy-routed kernel exactly.
pub fn par_row_bands<F>(parallel: bool, data: &mut [f64], row_len: usize, align_rows: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let threads = if parallel { current_threads() } else { 1 };
    par_row_bands_with_threads(threads, data, row_len, align_rows, f);
}

/// [`par_row_bands`] with an explicit worker count (see
/// [`par_chunks_with_threads`] for why this exists).
pub fn par_row_bands_with_threads<F>(
    threads: usize,
    data: &mut [f64],
    row_len: usize,
    align_rows: usize,
    f: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(
        row_len > 0 && data.len().is_multiple_of(row_len),
        "par_row_bands: ragged data"
    );
    let rows = data.len() / row_len;
    let ranges = chunk_ranges(rows, threads, align_rows);
    if ranges.len() <= 1 {
        f(0, data);
        return;
    }
    // Bands are disjoint `split_at_mut` slices, so the pool tasks never
    // alias; determinism comes from the band boundaries alone.
    let mut rest = data;
    let mut tasks = Vec::with_capacity(ranges.len());
    for range in ranges {
        let band_len = (range.end - range.start) * row_len;
        let (band, tail) = rest.split_at_mut(band_len);
        rest = tail;
        let f = &f;
        let first_row = range.start;
        tasks.push(move || f(first_row, band));
    }
    debug_assert!(rest.is_empty());
    crate::pool::run(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_parsing_roundtrip() {
        for p in KernelPolicy::ALL {
            assert_eq!(p.label().parse::<KernelPolicy>().unwrap(), p);
        }
        assert!("bogus".parse::<KernelPolicy>().is_err());
    }

    /// Pins the small-kernel cutoff: `BlockedParallel` degrades to `Blocked`
    /// strictly below the threshold, stays parallel at and above it, and the
    /// sequential policies are never touched.  This is the fix for the
    /// small-`d` quadratic-form regression (parallel at 0.56–0.73× naive on
    /// dR5–dR15): those shapes are orders of magnitude below `PAR_MIN_FLOPS`,
    /// so they now route to the plain blocked kernel with zero fan-out
    /// bookkeeping.
    #[test]
    fn effective_policy_degrades_parallel_below_cutoff() {
        let par = KernelPolicy::BlockedParallel;
        assert_eq!(
            effective_policy(par, PAR_MIN_FLOPS - 1, PAR_MIN_FLOPS),
            KernelPolicy::Blocked
        );
        assert_eq!(effective_policy(par, PAR_MIN_FLOPS, PAR_MIN_FLOPS), par);
        assert_eq!(effective_policy(par, usize::MAX, PAR_MIN_FLOPS), par);
        // a dR15 quadratic form (2·15·15 flops) is far below the cutoff
        assert_eq!(
            effective_policy(par, 2 * 15 * 15, PAR_MIN_FLOPS),
            KernelPolicy::Blocked
        );
        // sequential policies pass through regardless of size
        for p in [KernelPolicy::Naive, KernelPolicy::Blocked] {
            assert_eq!(effective_policy(p, 0, PAR_MIN_FLOPS), p);
            assert_eq!(effective_policy(p, usize::MAX, PAR_MIN_FLOPS), p);
        }
        // the GER cutoff is deliberately much higher: a 2048² outer product
        // (8.4M flops) must stay sequential under the bandwidth-bound cutoff
        assert_eq!(
            effective_policy(par, 2 * 2048 * 2048, GER_PAR_MIN_FLOPS),
            KernelPolicy::Blocked
        );
    }

    #[test]
    fn default_policy_is_settable() {
        let before = default_policy();
        set_default_policy(KernelPolicy::Naive);
        assert_eq!(default_policy(), KernelPolicy::Naive);
        set_default_policy(before);
        assert_eq!(default_policy(), before);
    }

    #[test]
    fn policy_env_resolution_warns_on_invalid_values() {
        // valid values parse with no warning
        assert_eq!(
            resolve_policy_env(Some("naive")),
            (KernelPolicy::Naive, None)
        );
        assert_eq!(
            resolve_policy_env(Some("parallel")),
            (KernelPolicy::BlockedParallel, None)
        );
        // unset falls back silently
        assert_eq!(resolve_policy_env(None), (KernelPolicy::Blocked, None));
        // a typo falls back to blocked WITH a warning naming the value
        let (p, warning) = resolve_policy_env(Some("blokced"));
        assert_eq!(p, KernelPolicy::Blocked);
        let msg = warning.expect("invalid policy must warn");
        assert!(
            msg.contains("blokced"),
            "warning must name the value: {msg}"
        );
        assert!(
            msg.contains("blocked"),
            "warning must name the fallback: {msg}"
        );
    }

    /// The invalid-value warning is guarded per flag: a second resolution of
    /// the same variable must not warn again (one warning per process, not
    /// one per training run).
    #[test]
    fn warn_once_fires_exactly_once_per_guard() {
        let guard = std::sync::atomic::AtomicBool::new(false);
        assert!(!guard.load(Ordering::Relaxed));
        warn_once(&guard, "first");
        assert!(
            guard.load(Ordering::Relaxed),
            "first call must trip the guard"
        );
        // the second call sees the tripped guard and stays silent — the swap
        // returning true is exactly the "already warned" branch
        warn_once(&guard, "second");
        assert!(guard.swap(true, Ordering::Relaxed), "guard stays tripped");
    }

    #[test]
    fn threads_env_resolution_warns_on_invalid_values() {
        assert_eq!(resolve_threads_env(None, 8), (8, None));
        assert_eq!(resolve_threads_env(Some("3"), 8), (3, None));
        // zero is meaningless and must warn
        let (n, warning) = resolve_threads_env(Some("0"), 8);
        assert_eq!(n, 8);
        assert!(warning.expect("zero must warn").contains("0"));
        // unparsable strings must warn and name the value
        let (n, warning) = resolve_threads_env(Some("four"), 2);
        assert_eq!(n, 2);
        let msg = warning.expect("garbage must warn");
        assert!(msg.contains("four"), "warning must name the value: {msg}");
        assert!(msg.contains("2"), "warning must name the fallback: {msg}");
    }

    /// Property test over randomized shapes: the ranges tile `0..n` exactly
    /// once in order, every range but the last ends on an `align` multiple,
    /// and the count never exceeds `max_chunks` (nor 1 when `n` fits).
    #[test]
    fn chunk_ranges_invariants_hold_across_randomized_shapes() {
        let mut rng = crate::testutil::TestRng::new(42);
        for case in 0..500 {
            let n = rng.range(0, 5000);
            let max_chunks = rng.range(1, 33);
            let align = rng.range(1, 65);
            let ranges = chunk_ranges(n, max_chunks, align);
            // tiles 0..n exactly: contiguous, in order, non-empty
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "case {case}: gap/overlap at {}", r.start);
                assert!(r.end > r.start, "case {case}: empty range");
                next = r.end;
            }
            assert_eq!(next, n, "case {case}: ranges must cover 0..{n}");
            // n == 0 produces no ranges at all
            if n == 0 {
                assert!(ranges.is_empty(), "case {case}");
            }
            // all but the last range end on an align multiple
            for r in ranges.iter().rev().skip(1) {
                assert_eq!(
                    r.end % align,
                    0,
                    "case {case}: range end {} not a multiple of {align}",
                    r.end
                );
            }
            // never more than max_chunks ranges
            assert!(
                ranges.len() <= max_chunks,
                "case {case}: {} ranges exceeds max_chunks {max_chunks}",
                ranges.len()
            );
        }
    }

    #[test]
    fn chunk_ranges_cover_everything_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8] {
                for align in [1usize, 4, 8] {
                    let ranges = chunk_ranges(n, chunks, align);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next);
                        assert!(r.end > r.start);
                        next = r.end;
                    }
                    assert_eq!(next, n, "n={n} chunks={chunks} align={align}");
                    // all but the last chunk are aligned
                    for r in ranges.iter().rev().skip(1) {
                        assert_eq!(r.end % align, 0);
                    }
                }
            }
        }
    }

    #[test]
    fn par_chunks_preserves_chunk_order() {
        // explicit thread count: spawns real scoped threads even on 1 core
        let results = par_chunks_with_threads(4, 100, 1, |r| r.start);
        assert!(results.len() > 1, "fan-out must actually split");
        let mut sorted = results.clone();
        sorted.sort_unstable();
        assert_eq!(results, sorted, "results must arrive in chunk order");
        let total: usize = par_chunks_with_threads(4, 1000, 8, |r| r.len())
            .iter()
            .sum();
        assert_eq!(total, 1000);
    }

    /// A "counting pool probe": each band/chunk invokes `f` exactly once, so
    /// counting invocations measures how many workers the fan-out engaged.
    fn probe_row_bands(parallel: bool, rows: usize) -> usize {
        use std::sync::atomic::AtomicUsize;
        let bands = AtomicUsize::new(0);
        let mut data = vec![0.0f64; rows * 3];
        par_row_bands(parallel, &mut data, 3, 1, |_, _| {
            bands.fetch_add(1, Ordering::Relaxed);
        });
        bands.load(Ordering::Relaxed)
    }

    #[test]
    fn override_threads_bounds_par_row_bands_exactly() {
        // With the override installed, the fan-out splits into exactly the
        // overridden count (the shape is large enough to split further).
        for n in [1usize, 2, 3] {
            let bands = with_threads(n, || probe_row_bands(true, 64));
            assert_eq!(bands, n, "override {n} must bound the band count");
        }
        // Sequential fan-outs ignore the override entirely.
        assert_eq!(with_threads(4, || probe_row_bands(false, 64)), 1);
    }

    #[test]
    fn override_threads_bounds_par_chunks_exactly() {
        for n in [1usize, 2, 5] {
            let chunks = with_threads(n, || par_chunks(true, 100, 1, |r| r.len()).len());
            assert_eq!(chunks, n, "override {n} must bound the chunk count");
        }
    }

    #[test]
    fn override_guard_nests_and_restores() {
        let outer = override_threads(2);
        assert_eq!(current_threads(), 2);
        {
            let _inner = override_threads(3);
            assert_eq!(current_threads(), 3);
        }
        assert_eq!(current_threads(), 2, "inner guard must restore the outer");
        drop(outer);
        assert_eq!(
            current_threads(),
            num_threads(),
            "dropping the last guard must restore the global pool size"
        );
        // zero is clamped: an override can never disable the caller itself
        let _g = override_threads(0);
        assert_eq!(current_threads(), 1);
    }

    #[test]
    fn override_is_thread_local() {
        let _guard = override_threads(2);
        // A bare `std::thread::spawn` does not inherit the override — it
        // reads the global pool size.  Pool workers are the exception: a
        // dispatch through `pool::run` explicitly captures and installs the
        // caller's override (see `pool::tests`).
        let seen = std::thread::spawn(current_threads).join().unwrap();
        assert_eq!(seen, num_threads());
    }

    #[test]
    fn par_row_bands_touches_each_row_once() {
        let rows = 37;
        let cols = 5;
        let mut data = vec![0.0f64; rows * cols];
        par_row_bands_with_threads(4, &mut data, cols, 4, |first_row, band| {
            for (i, row) in band.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first_row + i) as f64;
                }
            }
        });
        for (i, row) in data.chunks_exact(cols).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64), "row {i} wrong: {row:?}");
        }
    }
}
