//! Block decompositions along relation boundaries.
//!
//! The factorized algorithms of the paper never materialize the denormalized
//! feature vector `x = [x_S  x_{R_1} … x_{R_q}]`.  Instead every d-dimensional
//! quantity is partitioned along the relation boundaries
//! `[d_S, d_{R_1}, …, d_{R_q}]`:
//!
//! * the quadratic form `(x−µ)ᵀ Σ⁻¹ (x−µ)` becomes the sum
//!   `Σ_{i,j} PD_iᵀ I_{ij} PD_j` over sub-blocks of the covariance inverse
//!   (Equations 7–12 for the binary case, Equation 19 for multi-way joins);
//! * the scatter matrix `(x−µ)(x−µ)ᵀ` becomes the `(q+1)×(q+1)` grid of outer
//!   products `M_{ij} = PD_i PD_jᵀ` (Equations 14–18 and 23–24).
//!
//! [`BlockPartition`] describes the split, [`BlockQuadraticForm`] evaluates the
//! partitioned quadratic form (with per-block access so that the `R`-only terms can
//! be cached per distinct `R` tuple), and [`BlockScatter`] assembles a full `d×d`
//! matrix from per-block outer-product contributions.

use crate::csr;
use crate::gemm;
use crate::matrix::Matrix;
use crate::policy::KernelPolicy;
use crate::sparse::{self, BlockVec};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A partition of a `d`-dimensional feature space into contiguous segments, one per
/// relation participating in the join (`S` first, then `R_1 … R_q`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPartition {
    sizes: Vec<usize>,
    offsets: Vec<usize>,
}

impl BlockPartition {
    /// Creates a partition from the per-relation feature counts.
    ///
    /// # Panics
    /// Panics when `sizes` is empty.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(
            !sizes.is_empty(),
            "BlockPartition: at least one block required"
        );
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in sizes {
            offsets.push(acc);
            acc += s;
        }
        Self {
            sizes: sizes.to_vec(),
            offsets,
        }
    }

    /// Convenience constructor for the binary-join case `[d_S, d_R]`.
    pub fn binary(d_s: usize, d_r: usize) -> Self {
        Self::new(&[d_s, d_r])
    }

    /// Number of blocks (`q + 1` for a join of `S` with `q` dimension tables).
    pub fn num_blocks(&self) -> usize {
        self.sizes.len()
    }

    /// Total dimension `d = Σ sizes`.
    pub fn total_dim(&self) -> usize {
        self.offsets.last().unwrap() + self.sizes.last().unwrap()
    }

    /// Size of block `i`.
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Offset of block `i` within the concatenated feature vector.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Index range of block `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.offsets[i]..self.offsets[i] + self.sizes[i]
    }

    /// All block sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Splits a full `d`-dimensional slice into per-block sub-slices.
    pub fn split<'a>(&self, x: &'a [f64]) -> Vec<&'a [f64]> {
        assert_eq!(
            x.len(),
            self.total_dim(),
            "BlockPartition::split: vector length {} != partition dim {}",
            x.len(),
            self.total_dim()
        );
        (0..self.num_blocks()).map(|i| &x[self.range(i)]).collect()
    }

    /// Extracts the `(i, j)` sub-block of a `d×d` matrix.
    pub fn matrix_block(&self, m: &Matrix, i: usize, j: usize) -> Matrix {
        let ri = self.range(i);
        let rj = self.range(j);
        m.sub_block(ri.start, ri.end, rj.start, rj.end)
    }

    /// Partitions a square `d×d` matrix into the full grid of sub-blocks.
    pub fn partition_matrix(&self, m: &Matrix) -> Vec<Vec<Matrix>> {
        assert_eq!(
            m.rows(),
            self.total_dim(),
            "partition_matrix: row dim mismatch"
        );
        assert_eq!(
            m.cols(),
            self.total_dim(),
            "partition_matrix: col dim mismatch"
        );
        (0..self.num_blocks())
            .map(|i| {
                (0..self.num_blocks())
                    .map(|j| self.matrix_block(m, i, j))
                    .collect()
            })
            .collect()
    }
}

/// A quadratic form `vᵀ A v` pre-partitioned into blocks, so that individual terms
/// `PD_iᵀ A_{ij} PD_j` can be evaluated (and cached) independently.
#[derive(Debug, Clone)]
pub struct BlockQuadraticForm {
    partition: BlockPartition,
    blocks: Vec<Vec<Matrix>>,
    policy: KernelPolicy,
}

impl BlockQuadraticForm {
    /// Partitions the (typically `Σ⁻¹`) matrix `a` according to `partition`,
    /// evaluating with the process-default [`KernelPolicy`].
    pub fn new(partition: BlockPartition, a: &Matrix) -> Self {
        Self::new_with(partition, a, KernelPolicy::default())
    }

    /// Partitions `a` and pins the kernel policy used for every evaluation.
    pub fn new_with(partition: BlockPartition, a: &Matrix, policy: KernelPolicy) -> Self {
        let blocks = partition.partition_matrix(a);
        Self {
            partition,
            blocks,
            policy,
        }
    }

    /// The kernel policy this form evaluates under.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// The underlying partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// Borrows the `(i, j)` block of the partitioned matrix.
    pub fn block(&self, i: usize, j: usize) -> &Matrix {
        &self.blocks[i][j]
    }

    /// Evaluates the single term `pd_iᵀ A_{ij} pd_j` (one tile of the
    /// partitioned form).
    pub fn term(&self, i: usize, j: usize, pd_i: &[f64], pd_j: &[f64]) -> f64 {
        gemm::quadratic_form_with(self.policy, pd_i, &self.blocks[i][j], pd_j)
    }

    /// [`term`](Self::term) dispatching on the block representation: one-hot
    /// sides degenerate into row/column gathers of `A_{ij}`
    /// ([`sparse::quadratic_form_onehot`] and friends), CSR sides into their
    /// weighted counterparts ([`csr::quadratic_form_csr`] etc.), dense/dense
    /// falls back to the dense kernel.  Sparse inputs reproduce the dense
    /// naive result bit-for-bit (see [`crate::sparse`] and [`crate::csr`]).
    pub fn term_rep(&self, i: usize, j: usize, u: BlockVec<'_>, v: BlockVec<'_>) -> f64 {
        let a = &self.blocks[i][j];
        match (u, v) {
            (BlockVec::Dense(u), BlockVec::Dense(v)) => {
                gemm::quadratic_form_with(self.policy, u, a, v)
            }
            (BlockVec::OneHot(idx), BlockVec::Dense(v)) => {
                sparse::quadratic_form_onehot_with(self.policy, idx, a, v)
            }
            (BlockVec::Csr { idx, vals }, BlockVec::Dense(v)) => {
                csr::quadratic_form_csr_with(self.policy, idx, vals, a, v)
            }
            (BlockVec::Dense(u), BlockVec::OneHot(idx)) => {
                // uᵀ A e_idx = u · (A·e_idx): gather-sum the selected columns,
                // then one dense dot.
                let w = sparse::matvec_onehot_with(self.policy, a, idx);
                crate::vector::dot(u, &w)
            }
            (BlockVec::Dense(u), BlockVec::Csr { idx, vals }) => {
                let w = csr::matvec_csr_with(self.policy, a, idx, vals);
                crate::vector::dot(u, &w)
            }
            (BlockVec::OneHot(ridx), BlockVec::OneHot(cidx)) => {
                sparse::quadratic_form_onehot_pair(ridx, a, cidx)
            }
            (BlockVec::Csr { idx, vals }, BlockVec::Csr { idx: ci, vals: cv }) => {
                csr::quadratic_form_csr_pair(idx, vals, a, ci, cv)
            }
            // Mixed one-hot/CSR pairs: one generic weighted pair loop shared
            // by both orientations, treating one-hot values as 1.0
            // (`1.0·x` and `x·1.0` are bitwise no-ops, so this is an exact
            // generalization of the specialized pair kernels above).
            (u, v) => {
                let (ridx, rvals) = match u {
                    BlockVec::OneHot(idx) => (idx, None),
                    BlockVec::Csr { idx, vals } => (idx, Some(vals)),
                    BlockVec::Dense(_) => unreachable!("dense pairs handled above"),
                };
                let (cidx, cvals) = match v {
                    BlockVec::OneHot(idx) => (idx, None),
                    BlockVec::Csr { idx, vals } => (idx, Some(vals)),
                    BlockVec::Dense(_) => unreachable!("dense pairs handled above"),
                };
                sparse::check_block_indices(ridx, a.rows(), "term_rep u");
                sparse::check_block_indices(cidx, a.cols(), "term_rep v");
                sparse::record_onehot_call();
                csr::record_csr_call();
                let mut acc = 0.0;
                for (t, &i) in ridx.iter().enumerate() {
                    let row = a.row(i as usize);
                    let mut inner = 0.0;
                    for (u, &j) in cidx.iter().enumerate() {
                        let term = row[j as usize];
                        inner += cvals.map_or(term, |v| term * v[u]);
                    }
                    acc += rvals.map_or(inner, |v| v[t] * inner);
                }
                acc
            }
        }
    }

    /// Pre-multiplies block `(i, j)` with `pd_j`: returns `A_{ij} · pd_j`.
    ///
    /// The factorized E-step caches, per distinct `R` tuple, the vector
    /// `A_{S,R} · PD_R` so that each matching `S` tuple only needs a `d_S`-length
    /// dot product for the cross terms.
    pub fn block_times(&self, i: usize, j: usize, pd_j: &[f64]) -> Vec<f64> {
        gemm::matvec_with(self.policy, &self.blocks[i][j], pd_j)
    }

    /// Evaluates the full quadratic form `Σ_{ij} pd_iᵀ A_{ij} pd_j` from per-block
    /// slices (Equation 19).
    pub fn eval_parts(&self, parts: &[&[f64]]) -> f64 {
        assert_eq!(
            parts.len(),
            self.partition.num_blocks(),
            "eval_parts: expected {} parts, got {}",
            self.partition.num_blocks(),
            parts.len()
        );
        let q = parts.len();
        let mut acc = 0.0;
        for i in 0..q {
            for j in 0..q {
                acc += self.term(i, j, parts[i], parts[j]);
            }
        }
        acc
    }

    /// Evaluates the quadratic form on an unpartitioned dense vector, splitting it
    /// internally.  Useful in tests comparing against [`gemm::quadratic_form_sym`].
    pub fn eval_dense(&self, x: &[f64]) -> f64 {
        let parts = self.partition.split(x);
        self.eval_parts(&parts)
    }
}

/// Accumulates a `d×d` matrix from weighted outer products of partition segments.
///
/// `BlockScatter` is how the factorized M-step assembles
/// `Σ_n γ_n (x_n−µ)(x_n−µ)ᵀ` without ever forming the centered denormalized
/// vectors: each contribution is added block-by-block with
/// [`add_outer`](Self::add_outer), and the per-`R`-tuple blocks are added once per
/// distinct `R` tuple with an aggregated weight.
#[derive(Debug, Clone)]
pub struct BlockScatter {
    partition: BlockPartition,
    acc: Matrix,
    policy: KernelPolicy,
}

impl BlockScatter {
    /// Creates a zeroed accumulator for the given partition, accumulating with
    /// the process-default [`KernelPolicy`].
    pub fn new(partition: BlockPartition) -> Self {
        Self::new_with(partition, KernelPolicy::default())
    }

    /// Creates a zeroed accumulator pinned to an explicit kernel policy.
    pub fn new_with(partition: BlockPartition, policy: KernelPolicy) -> Self {
        let d = partition.total_dim();
        Self {
            partition,
            acc: Matrix::zeros(d, d),
            policy,
        }
    }

    /// The kernel policy this accumulator updates under.
    pub fn policy(&self) -> KernelPolicy {
        self.policy
    }

    /// Merges another accumulator over the same partition into this one.
    ///
    /// Used by the parallel training paths: each worker accumulates into a
    /// private `BlockScatter`, and the partials are merged **in worker-index
    /// order** so the reduction tree — and therefore the floating-point result
    /// — is fixed for a given chunking.
    pub fn merge_from(&mut self, other: &BlockScatter) {
        assert_eq!(
            self.partition, other.partition,
            "BlockScatter::merge_from: partition mismatch"
        );
        self.acc.add_assign(&other.acc);
    }

    /// The underlying partition.
    pub fn partition(&self) -> &BlockPartition {
        &self.partition
    }

    /// Adds `alpha · u vᵀ` into block `(i, j)`.
    ///
    /// `u` must have the length of block `i` and `v` the length of block `j`.
    pub fn add_outer(&mut self, i: usize, j: usize, alpha: f64, u: &[f64], v: &[f64]) {
        assert_eq!(u.len(), self.partition.size(i), "add_outer: bad u length");
        assert_eq!(v.len(), self.partition.size(j), "add_outer: bad v length");
        let r0 = self.partition.offset(i);
        let c0 = self.partition.offset(j);
        // Branch-free tile update: one scaled AXPY per tile row.  The centered
        // vectors this receives are dense, so per-element zero tests cost more
        // than they save; one-hot blocks go through `add_outer_rep`, which
        // scatters only the active rows/columns.
        for (bi, &ui) in u.iter().enumerate() {
            let row = &mut self.acc.row_mut(r0 + bi)[c0..c0 + v.len()];
            let s = alpha * ui;
            for (dst, &vj) in row.iter_mut().zip(v.iter()) {
                *dst += s * vj;
            }
        }
    }

    /// [`add_outer`](Self::add_outer) dispatching on the block representation.
    ///
    /// One-hot sides turn the rank-1 update into a row scatter
    /// ([`sparse::ger_onehot`]-style), a column scatter, or — when both sides
    /// are one-hot — `nnz_u × nnz_v` scalar adds ([`sparse::scatter_onehot_pair`]).
    /// CSR sides do the same with the weighted values multiplied through
    /// ([`csr::ger_csr`]-style), using the dense GER's scaling order
    /// (`alpha·u_i` first, then times `v_j`).  Sparse inputs reproduce the
    /// dense update bit-for-bit.
    pub fn add_outer_rep(
        &mut self,
        i: usize,
        j: usize,
        alpha: f64,
        u: BlockVec<'_>,
        v: BlockVec<'_>,
    ) {
        let r0 = self.partition.offset(i);
        let c0 = self.partition.offset(j);
        let (di, dj) = (self.partition.size(i), self.partition.size(j));
        match (u, v) {
            (BlockVec::Dense(u), BlockVec::Dense(v)) => self.add_outer(i, j, alpha, u, v),
            (BlockVec::OneHot(idx), BlockVec::Dense(v)) => {
                assert_eq!(v.len(), dj, "add_outer_rep: bad v length");
                sparse::check_block_indices(idx, di, "add_outer_rep u");
                sparse::record_onehot_call();
                for &bi in idx {
                    let row = &mut self.acc.row_mut(r0 + bi as usize)[c0..c0 + dj];
                    crate::vector::axpy(alpha, v, row);
                }
            }
            (BlockVec::Csr { idx, vals }, BlockVec::Dense(v)) => {
                assert_eq!(v.len(), dj, "add_outer_rep: bad v length");
                sparse::check_block_indices(idx, di, "add_outer_rep u");
                csr::record_csr_call();
                for (&bi, &ui) in idx.iter().zip(vals.iter()) {
                    let row = &mut self.acc.row_mut(r0 + bi as usize)[c0..c0 + dj];
                    crate::vector::axpy(alpha * ui, v, row);
                }
            }
            (BlockVec::Dense(u), BlockVec::OneHot(idx)) => {
                assert_eq!(u.len(), di, "add_outer_rep: bad u length");
                sparse::check_block_indices(idx, dj, "add_outer_rep v");
                sparse::record_onehot_call();
                for (bi, &ui) in u.iter().enumerate() {
                    let row = self.acc.row_mut(r0 + bi);
                    let s = alpha * ui;
                    for &bj in idx {
                        row[c0 + bj as usize] += s;
                    }
                }
            }
            (BlockVec::Dense(u), BlockVec::Csr { idx, vals }) => {
                assert_eq!(u.len(), di, "add_outer_rep: bad u length");
                sparse::check_block_indices(idx, dj, "add_outer_rep v");
                csr::record_csr_call();
                for (bi, &ui) in u.iter().enumerate() {
                    let row = self.acc.row_mut(r0 + bi);
                    let s = alpha * ui;
                    for (&bj, &vj) in idx.iter().zip(vals.iter()) {
                        row[c0 + bj as usize] += s * vj;
                    }
                }
            }
            (BlockVec::OneHot(ridx), BlockVec::OneHot(cidx)) => {
                sparse::check_block_indices(ridx, di, "add_outer_rep u");
                sparse::check_block_indices(cidx, dj, "add_outer_rep v");
                sparse::record_onehot_call();
                for &bi in ridx {
                    let row = self.acc.row_mut(r0 + bi as usize);
                    for &bj in cidx {
                        row[c0 + bj as usize] += alpha;
                    }
                }
            }
            (u, v) => {
                // Remaining sparse×sparse mixes (CSR on either or both sides):
                // one generic weighted pair scatter, treating one-hot values
                // as 1.0 (`alpha·1.0` and `s·1.0` are bitwise no-ops, so the
                // specialized arms above remain exact shortcuts of this loop).
                let (ridx, rvals) = match u {
                    BlockVec::OneHot(idx) => (idx, None),
                    BlockVec::Csr { idx, vals } => (idx, Some(vals)),
                    BlockVec::Dense(_) => unreachable!("dense pairs handled above"),
                };
                let (cidx, cvals) = match v {
                    BlockVec::OneHot(idx) => (idx, None),
                    BlockVec::Csr { idx, vals } => (idx, Some(vals)),
                    BlockVec::Dense(_) => unreachable!("dense pairs handled above"),
                };
                sparse::check_block_indices(ridx, di, "add_outer_rep u");
                sparse::check_block_indices(cidx, dj, "add_outer_rep v");
                csr::record_csr_call();
                for (t, &bi) in ridx.iter().enumerate() {
                    let row = self.acc.row_mut(r0 + bi as usize);
                    let s = alpha * rvals.map_or(1.0, |v| v[t]);
                    for (uu, &bj) in cidx.iter().enumerate() {
                        row[c0 + bj as usize] += s * cvals.map_or(1.0, |v| v[uu]);
                    }
                }
            }
        }
    }

    /// Adds a full dense contribution `alpha · x xᵀ` (all blocks at once); used by
    /// the materialized/streaming variants so every variant shares one accumulator
    /// implementation.
    pub fn add_dense(&mut self, alpha: f64, x: &[f64]) {
        assert_eq!(x.len(), self.partition.total_dim(), "add_dense: bad length");
        gemm::ger_with(self.policy, alpha, x, x, &mut self.acc);
    }

    /// Adds an already formed `d_i × d_j` matrix into block `(i, j)` with weight
    /// `alpha`.
    pub fn add_block_matrix(&mut self, i: usize, j: usize, alpha: f64, block: &Matrix) {
        assert_eq!(
            block.rows(),
            self.partition.size(i),
            "add_block_matrix: bad rows"
        );
        assert_eq!(
            block.cols(),
            self.partition.size(j),
            "add_block_matrix: bad cols"
        );
        let r0 = self.partition.offset(i);
        let c0 = self.partition.offset(j);
        for bi in 0..block.rows() {
            let src = block.row(bi);
            let dst = &mut self.acc.row_mut(r0 + bi)[c0..c0 + block.cols()];
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += alpha * s;
            }
        }
    }

    /// Current accumulated matrix (borrow).
    pub fn matrix(&self) -> &Matrix {
        &self.acc
    }

    /// Consumes the accumulator returning the assembled matrix.
    pub fn into_matrix(self) -> Matrix {
        self.acc
    }

    /// Resets the accumulator to zero, keeping the allocation.
    pub fn reset(&mut self) {
        self.acc.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::gemm::{outer, quadratic_form_sym};

    fn partition_3way() -> BlockPartition {
        BlockPartition::new(&[2, 3, 1])
    }

    #[test]
    fn partition_geometry() {
        let p = partition_3way();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.total_dim(), 6);
        assert_eq!(p.size(1), 3);
        assert_eq!(p.offset(2), 5);
        assert_eq!(p.range(1), 2..5);
        assert_eq!(p.sizes(), &[2, 3, 1]);
        let bin = BlockPartition::binary(5, 15);
        assert_eq!(bin.total_dim(), 20);
        assert_eq!(bin.num_blocks(), 2);
    }

    #[test]
    fn split_vector() {
        let p = partition_3way();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let parts = p.split(&x);
        assert_eq!(parts[0], &[1.0, 2.0]);
        assert_eq!(parts[1], &[3.0, 4.0, 5.0]);
        assert_eq!(parts[2], &[6.0]);
    }

    #[test]
    #[should_panic(expected = "vector length")]
    fn split_wrong_length_panics() {
        partition_3way().split(&[1.0, 2.0]);
    }

    #[test]
    fn matrix_block_extraction() {
        let p = BlockPartition::binary(1, 2);
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let blocks = p.partition_matrix(&m);
        assert_eq!(blocks[0][0].shape(), (1, 1));
        assert_eq!(blocks[0][1].row(0), &[2.0, 3.0]);
        assert_eq!(blocks[1][0].col(0), vec![4.0, 7.0]);
        assert_eq!(blocks[1][1].row(1), &[8.0, 9.0]);
    }

    #[test]
    fn block_quadratic_form_matches_dense() {
        // Symmetric positive-ish matrix; the block decomposition must be exact for
        // any square matrix, symmetry is not required.
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.2],
            vec![1.0, 3.0, 0.1, 0.4],
            vec![0.5, 0.1, 2.0, 0.3],
            vec![0.2, 0.4, 0.3, 5.0],
        ]);
        let x = [0.7, -1.1, 2.3, 0.9];
        let dense = quadratic_form_sym(&x, &m);

        for sizes in [vec![2, 2], vec![1, 3], vec![1, 1, 2], vec![4]] {
            let p = BlockPartition::new(&sizes);
            let q = BlockQuadraticForm::new(p, &m);
            let blocked = q.eval_dense(&x);
            assert!(
                approx_eq(dense, blocked, 1e-12),
                "partition {:?}: {} vs {}",
                sizes,
                dense,
                blocked
            );
        }
    }

    #[test]
    fn block_times_caches_cross_term() {
        let m = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 0.5],
            vec![0.0, 0.5, 4.0],
        ]);
        let p = BlockPartition::binary(1, 2);
        let q = BlockQuadraticForm::new(p, &m);
        let pd_s = [2.0];
        let pd_r = [1.0, -1.0];
        // cached vector A_{S,R} · pd_r
        let w = q.block_times(0, 1, &pd_r);
        let cross_via_cache: f64 = pd_s.iter().zip(w.iter()).map(|(a, b)| a * b).sum();
        let cross_direct = q.term(0, 1, &pd_s, &pd_r);
        assert!(approx_eq(cross_via_cache, cross_direct, 1e-14));
    }

    #[test]
    fn block_scatter_matches_dense_outer() {
        let p = BlockPartition::binary(2, 2);
        let x = [1.0, 2.0, 3.0, 4.0];
        let gamma = 0.7;

        // dense accumulation
        let mut dense = BlockScatter::new(p.clone());
        dense.add_dense(gamma, &x);

        // factorized accumulation block by block
        let parts = p.split(&x);
        let mut fact = BlockScatter::new(p.clone());
        for i in 0..2 {
            for j in 0..2 {
                fact.add_outer(i, j, gamma, parts[i], parts[j]);
            }
        }
        assert!(dense.matrix().max_abs_diff(fact.matrix()) < 1e-14);
    }

    #[test]
    fn block_scatter_add_block_matrix() {
        let p = BlockPartition::binary(1, 2);
        let mut sc = BlockScatter::new(p);
        let block = outer(&[2.0], &[3.0, 4.0]);
        sc.add_block_matrix(0, 1, 0.5, &block);
        let m = sc.matrix();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(0, 2)], 4.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn term_rep_matches_dense_term_for_every_representation_mix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.2],
            vec![1.0, 3.0, 0.1, 0.4],
            vec![0.5, 0.1, 2.0, 0.3],
            vec![0.2, 0.4, 0.3, 5.0],
        ]);
        let p = BlockPartition::binary(2, 2);
        let q = BlockQuadraticForm::new_with(p, &m, KernelPolicy::Naive);
        let idx = [1u32];
        let onehot = [0.0, 1.0];
        let dense = [0.3, -0.8];
        // one-hot left
        assert_eq!(
            q.term_rep(1, 0, BlockVec::OneHot(&idx), BlockVec::Dense(&dense)),
            q.term(1, 0, &onehot, &dense)
        );
        // one-hot right
        let direct = q.term(0, 1, &dense, &onehot);
        let rep = q.term_rep(0, 1, BlockVec::Dense(&dense), BlockVec::OneHot(&idx));
        assert!((direct - rep).abs() < 1e-15);
        // one-hot both: Σ A[i][j] over the selected entries
        assert_eq!(
            q.term_rep(1, 1, BlockVec::OneHot(&idx), BlockVec::OneHot(&idx)),
            m[(3, 3)]
        );
        // dense/dense falls through to term()
        assert_eq!(
            q.term_rep(0, 0, BlockVec::Dense(&dense), BlockVec::Dense(&dense)),
            q.term(0, 0, &dense, &dense)
        );
    }

    #[test]
    fn add_outer_rep_matches_dense_add_outer() {
        let p = BlockPartition::binary(2, 3);
        let idx = [0u32, 2];
        let onehot = [1.0, 0.0, 1.0];
        let u = [0.7, -1.2];
        for (i, j, urep, vrep, udense, vdense) in [
            (
                0usize,
                1usize,
                BlockVec::Dense(&u[..]),
                BlockVec::OneHot(&idx[..]),
                &u[..],
                &onehot[..],
            ),
            (
                1,
                0,
                BlockVec::OneHot(&idx[..]),
                BlockVec::Dense(&u[..]),
                &onehot[..],
                &u[..],
            ),
            (
                1,
                1,
                BlockVec::OneHot(&idx[..]),
                BlockVec::OneHot(&idx[..]),
                &onehot[..],
                &onehot[..],
            ),
        ] {
            let mut dense = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
            dense.add_outer(i, j, 0.9, udense, vdense);
            let mut rep = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
            rep.add_outer_rep(i, j, 0.9, urep, vrep);
            assert_eq!(dense.matrix(), rep.matrix(), "block ({i},{j})");
        }
    }

    #[test]
    fn block_scatter_reset() {
        let p = BlockPartition::binary(1, 1);
        let mut sc = BlockScatter::new(p);
        sc.add_dense(1.0, &[1.0, 1.0]);
        assert!(sc.matrix().frobenius_norm() > 0.0);
        sc.reset();
        assert_eq!(sc.matrix().frobenius_norm(), 0.0);
    }
}
