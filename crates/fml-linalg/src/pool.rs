//! The persistent worker pool behind every parallel fan-out.
//!
//! Before this module existed, each [`crate::policy::par_chunks`] /
//! [`crate::policy::par_row_bands`] region paid a fresh
//! `std::thread::scope` — one OS thread spawn **per chunk per region**
//! (~20–60 µs each), which is why the `BlockedParallel` FLOP cutoffs in
//! [`crate::policy`] had to be set so high.  The pool replaces that with a
//! fixed set of long-lived workers and a borrowed-closure dispatch whose
//! per-region cost is one queue push plus a condvar wakeup per chunk
//! (single-digit microseconds for a whole region).
//!
//! ## Dispatch protocol
//!
//! [`run`] takes a `Vec` of closures that may **borrow from the caller's
//! stack** (no `'static` bound — the same ergonomics `std::thread::scope`
//! gave the old code).  It enqueues all but the last onto the shared queue,
//! runs the last inline on the calling thread, then *helps*: it drains its
//! own region's still-queued tasks inline before sleeping, and only blocks
//! once every remaining task of the region is actively running on a worker.
//! The call returns (or resumes a worker's panic) strictly after every task
//! has finished, which is the invariant that makes the borrowed closures
//! sound.
//!
//! Help-first draining is also the no-deadlock argument for **nested**
//! fan-outs (a scoring fan-out whose kernels also request the parallel
//! policy): a worker that dispatches an inner region never waits on threads
//! that could be waiting on it — if no worker is free, it simply executes
//! the inner tasks itself.  Region nesting forms a tree, every blocked
//! dispatcher's outstanding tasks are running on some other thread, and leaf
//! regions complete inline, so progress is always possible even with zero
//! pool workers.
//!
//! ## Sizing and override inheritance
//!
//! The pool holds at most [`crate::policy::num_threads`] workers
//! (`FML_THREADS`, else available parallelism), spawned lazily on first
//! demand and kept for the life of the process.  Regions that ask for more
//! chunks than there are workers still complete — the extra chunks run on
//! the dispatcher via help-first draining.
//!
//! Each dispatched task carries the **caller's** scoped thread-count
//! override ([`crate::policy::override_threads`]) and installs it in the
//! worker for the duration of the task, so a builder-set
//! `ExecPolicy::threads` stays exact inside nested fan-outs: a kernel
//! invoked from a pool worker splits by the same bound the caller resolved,
//! exactly as if it had run on the calling thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::policy;

/// Locks a mutex, ignoring poisoning: pool bookkeeping is plain counters and
/// queues whose invariants hold at every await point, and task panics are
/// caught before they can unwind through a guard.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The type-erased borrowed tasks.  This is the only module in the crate
/// outside `simd` that needs `unsafe`: a closure borrowing the dispatcher's
/// stack is sent to a long-lived worker as a raw pointer, and the safety
/// argument (the dispatcher never returns before the region drains) lives in
/// [`run`].
#[allow(unsafe_code)]
mod raw {
    /// A type-erased pointer to an `Option<F>` on the dispatcher's stack,
    /// plus the monomorphized shim that takes and calls the closure.
    pub(super) struct RawTask {
        data: *mut (),
        call: unsafe fn(*mut ()),
    }

    // SAFETY: `RawTask` is only constructed by `run<F>` where `F: Send`, and
    // the pointee outlives the task (the dispatcher blocks until the region
    // drains), so moving the pointer to a worker thread is exactly moving
    // the `F` — which is `Send` by bound.
    unsafe impl Send for RawTask {}

    impl RawTask {
        /// Erases `cell` (which must stay alive and untouched by the caller
        /// until the task has run) into a sendable task.
        pub(super) fn new<F: FnOnce()>(cell: &mut Option<F>) -> Self {
            /// Takes and calls the closure behind the erased pointer.
            ///
            /// # Safety
            /// `data` must point to the live `Option<F>` this shim was
            /// monomorphized for, with no concurrent access — guaranteed by
            /// the dispatch protocol: each task is popped from the queue
            /// exactly once, and the dispatcher keeps the pointee alive
            /// until the region drains.
            unsafe fn shim<F: FnOnce()>(data: *mut ()) {
                // SAFETY: `data` is the `Option<F>` this shim was erased
                // from; the dispatch protocol guarantees it is still alive
                // and that no other thread touches it concurrently (each
                // task is popped from the queue exactly once).
                let cell = unsafe { &mut *(data as *mut Option<F>) };
                if let Some(f) = cell.take() {
                    f();
                }
            }
            RawTask {
                data: (cell as *mut Option<F>).cast(),
                call: shim::<F>,
            }
        }

        /// Runs the erased closure.
        ///
        /// # Safety
        /// The `Option<F>` behind `data` must still be alive, and this task
        /// must be invoked at most once.  Both are guaranteed by [`super::run`]:
        /// tasks are popped from the queue exactly once, and the dispatcher
        /// does not return (even on panic) until the region has drained.
        pub(super) unsafe fn invoke(self) {
            // SAFETY: forwarding the caller's own contract — the pointee is
            // alive and this is the task's single invocation.
            unsafe { (self.call)(self.data) }
        }
    }
}

use raw::RawTask;

/// Completion state of one [`run`] call: the count of dispatched tasks not
/// yet finished, and the first worker panic (resumed on the dispatcher).
struct Region {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Region {
    fn new(tasks: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Marks one task finished and wakes the dispatcher when the region is
    /// fully drained.
    fn finish_one(&self) {
        let mut pending = lock_unpoisoned(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every dispatched task of this region has finished.
    fn wait_drained(&self) {
        let mut pending = lock_unpoisoned(&self.pending);
        while *pending > 0 {
            pending = self.done.wait(pending).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records the first task panic (later ones are dropped — one resume is
    /// all the dispatcher can do).
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock_unpoisoned(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// One queued unit of work: the erased task, its region, the dispatcher's
/// thread-count override to install in the worker, and (when metrics are on)
/// the enqueue time for the dispatch-latency histogram.
struct Message {
    task: RawTask,
    region: Arc<Region>,
    inherit: Option<usize>,
    submitted: Option<Instant>,
}

impl Message {
    /// Runs the task (catching panics into the region) and marks it done.
    fn execute(self) {
        let _guard = self.inherit.map(policy::override_threads);
        // SAFETY: `invoke`'s contract holds — this message was popped from
        // the queue exactly once, and its dispatcher is blocked in
        // `wait_drained`/help until `finish_one` below runs.
        #[allow(unsafe_code)]
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { self.task.invoke() }));
        if let Err(payload) = result {
            self.region.record_panic(payload);
        }
        self.region.finish_one();
    }
}

struct PoolState {
    queue: VecDeque<Message>,
    /// Workers currently blocked waiting for work.
    idle: usize,
    /// Workers ever spawned (never shrinks; capped at [`policy::num_threads`]).
    workers: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();
/// Total tasks ever executed by pool workers (observability; see
/// [`worker_tasks_executed`]) — the `fml_pool_worker_tasks_total` registry
/// counter, recorded unconditionally because tests assert on its deltas in
/// every `FML_OBS` mode.
static WORKER_TASKS: fml_obs::LazyCounter =
    fml_obs::LazyCounter::new("fml_pool_worker_tasks_total");

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            idle: 0,
            workers: 0,
        }),
        work: Condvar::new(),
    })
}

impl Pool {
    /// Enqueues `messages` and makes sure enough workers exist to drain them
    /// (spawning lazily up to the [`policy::num_threads`] cap).
    fn submit(&self, messages: Vec<Message>) {
        let mut state = lock_unpoisoned(&self.state);
        for m in messages {
            state.queue.push_back(m);
        }
        if fml_obs::metrics_enabled() {
            fml_obs::gauge!("fml_pool_queue_depth").set(state.queue.len() as i64);
        }
        let cap = policy::num_threads();
        while state.workers < cap && state.idle < state.queue.len() {
            match std::thread::Builder::new()
                .name(format!("fml-pool-{}", state.workers))
                .spawn(worker_loop)
            {
                // The new worker counts as idle until it first checks the
                // queue, so a burst of submissions does not over-spawn.
                Ok(_) => {
                    state.workers += 1;
                    state.idle += 1;
                }
                // Spawn failure is not fatal: help-first draining completes
                // every region even with zero workers.
                Err(_) => break,
            }
        }
        if fml_obs::metrics_enabled() {
            fml_obs::gauge!("fml_pool_workers").set(state.workers as i64);
            fml_obs::gauge!("fml_pool_idle_workers").set(state.idle as i64);
        }
        drop(state);
        self.work.notify_all();
    }

    /// Removes one still-queued task belonging to `region`, if any.
    fn steal_own(&self, region: &Arc<Region>) -> Option<Message> {
        let mut state = lock_unpoisoned(&self.state);
        let at = state
            .queue
            .iter()
            .position(|m| Arc::ptr_eq(&m.region, region))?;
        state.queue.remove(at)
    }
}

fn worker_loop() {
    let pool = pool();
    // Compensate for the optimistic `idle += 1` performed at spawn.
    lock_unpoisoned(&pool.state).idle -= 1;
    loop {
        let msg = {
            let mut state = lock_unpoisoned(&pool.state);
            loop {
                if let Some(m) = state.queue.pop_front() {
                    break m;
                }
                state.idle += 1;
                state = pool.work.wait(state).unwrap_or_else(|e| e.into_inner());
                state.idle -= 1;
            }
        };
        WORKER_TASKS.get().inc();
        if let Some(submitted) = msg.submitted {
            // Dispatch latency: enqueue to worker pickup.  `submitted` is only
            // stamped when metrics were on at dispatch, so this records at
            // most what the run's resolved mode asked for.
            fml_obs::histogram!("fml_pool_dispatch_ns").record_duration(submitted.elapsed());
        }
        msg.execute();
    }
}

/// Waits out the region even when the dispatcher's own inline work panics:
/// workers may still hold pointers into this stack frame, so unwinding past
/// it before the region drains would be unsound.
struct DrainOnUnwind<'a> {
    region: &'a Arc<Region>,
    armed: bool,
}

impl Drop for DrainOnUnwind<'_> {
    fn drop(&mut self) {
        if self.armed {
            // Help with our own queued tasks first so the drain cannot
            // depend on workers being available.
            while let Some(msg) = pool().steal_own(self.region) {
                msg.execute();
            }
            self.region.wait_drained();
        }
    }
}

/// Runs every closure in `tasks` to completion — the last inline on the
/// calling thread, the rest on the persistent pool — and returns only once
/// all have finished.  A panic in any task is resumed on the caller after
/// the region drains.
///
/// The closures may borrow the caller's stack (no `'static` bound); the
/// drain-before-return protocol is what makes that sound.  Execution order
/// across threads is unspecified — callers that need deterministic merges
/// write into per-task slots, as [`crate::policy::par_chunks`] does.
pub fn run<F>(mut tasks: Vec<F>)
where
    F: FnOnce() + Send,
{
    let Some(local) = tasks.pop() else { return };
    if tasks.is_empty() {
        local();
        return;
    }
    let region = Region::new(tasks.len());
    let inherit = policy::current_override();
    let metrics = fml_obs::metrics_enabled();
    let submitted = if metrics { Some(Instant::now()) } else { None };
    let mut cells: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
    let messages: Vec<Message> = cells
        .iter_mut()
        .map(|cell| Message {
            task: RawTask::new(cell),
            region: Arc::clone(&region),
            inherit,
            submitted,
        })
        .collect();
    pool().submit(messages);
    {
        let mut drain = DrainOnUnwind {
            region: &region,
            armed: true,
        };
        local();
        // Help-first: run our own still-queued tasks inline, then block
        // until the ones running on workers finish.
        while let Some(msg) = pool().steal_own(&region) {
            if metrics {
                fml_obs::counter!("fml_pool_inline_steals_total").inc();
            }
            msg.execute();
        }
        region.wait_drained();
        drain.armed = false;
    }
    let payload = lock_unpoisoned(&region.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Number of pool workers currently alive (0 until the first multi-chunk
/// parallel region runs; never exceeds [`policy::num_threads`]).
pub fn worker_count() -> usize {
    POOL.get()
        .map(|p| lock_unpoisoned(&p.state).workers)
        .unwrap_or(0)
}

/// Total tasks executed *on pool workers* since process start (tasks the
/// dispatcher ran inline — the last chunk, help-first steals — are not
/// counted).  Monotonic; used by tests and benches to verify the pool is
/// actually engaged rather than everything collapsing to inline execution.
pub fn worker_tasks_executed() -> usize {
    WORKER_TASKS.get().get() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{
        current_threads, par_chunks, par_chunks_with_threads, par_row_bands_with_threads,
        with_threads,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Every task runs exactly once and borrowed results land in the right
    /// slots regardless of which thread executed them.
    #[test]
    fn run_executes_each_task_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        let mut slots = vec![0usize; 8];
        run(slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let counts = &counts;
                move || {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                    *slot = i * 10;
                }
            })
            .collect());
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran once");
        }
        assert_eq!(slots, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_handles_empty_and_singleton_regions_inline() {
        run(Vec::<fn()>::new());
        let mut hit = false;
        run(vec![|| hit = true]);
        assert!(hit);
    }

    /// Workers persist across regions: the worker count after many regions
    /// is bounded by the pool cap, not by the number of regions dispatched.
    #[test]
    fn workers_are_reused_across_regions() {
        for _ in 0..20 {
            let total: usize = par_chunks_with_threads(4, 64, 1, |r| r.len()).iter().sum();
            assert_eq!(total, 64);
        }
        assert!(
            worker_count() <= crate::policy::num_threads(),
            "pool must not grow past num_threads(): {} workers",
            worker_count()
        );
    }

    /// The no-deadlock property for nested fan-outs: every task of an outer
    /// region dispatches its own inner region (the scorer-fans-out-while-
    /// kernels-request-parallel shape), with a third level underneath.  With
    /// help-first draining this completes on any pool size — including the
    /// zero/one-worker pools of single-core machines.
    #[test]
    fn nested_regions_complete_without_deadlock() {
        let outer = par_chunks_with_threads(4, 16, 1, |outer_range| {
            let inner: usize = par_chunks_with_threads(4, 16, 1, |inner_range| {
                let mut data = vec![1.0f64; 32];
                par_row_bands_with_threads(2, &mut data, 1, 1, |_, band| {
                    for v in band.iter_mut() {
                        *v += 1.0;
                    }
                });
                assert!(data.iter().all(|&v| v == 2.0));
                inner_range.len()
            })
            .into_iter()
            .sum();
            assert_eq!(inner, 16);
            outer_range.len()
        });
        assert_eq!(outer.into_iter().sum::<usize>(), 16);
    }

    /// A panic inside a pool-dispatched task resurfaces on the dispatching
    /// thread with the original payload, after the region has drained (the
    /// pool must stay usable afterwards).
    #[test]
    fn worker_panics_propagate_to_the_dispatcher() {
        let result = std::panic::catch_unwind(|| {
            par_chunks_with_threads(4, 100, 1, |r| {
                if r.start == 0 {
                    panic!("chunk zero exploded");
                }
                r.len()
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("chunk zero exploded"), "payload: {msg}");
        // The pool survives: the next region runs normally.
        let total: usize = par_chunks_with_threads(4, 100, 1, |r| r.len()).iter().sum();
        assert_eq!(total, 100);
    }

    /// Satellite fix pinned: pool workers inherit the *dispatcher's* scoped
    /// thread-count override, so `ExecPolicy::threads` stays exact under
    /// nesting.  (A bare `std::thread::spawn` still does not inherit — see
    /// `policy::tests::override_is_thread_local`.)
    #[test]
    fn workers_inherit_the_dispatchers_thread_override() {
        let seen = with_threads(3, || {
            par_chunks_with_threads(4, 4, 1, |_| current_threads())
        });
        assert_eq!(
            seen,
            vec![3; 4],
            "every chunk (worker or inline) must see the caller's override"
        );
        // And without an override, workers read the global pool size.
        let seen = par_chunks_with_threads(2, 2, 1, |_| current_threads());
        assert_eq!(seen, vec![crate::policy::num_threads(); 2]);
    }

    /// The inherited override also bounds *nested* fan-outs executed on
    /// workers: an inner `par_chunks(true, ..)` inside a pool task splits by
    /// the dispatcher's override, not the machine's parallelism.
    #[test]
    fn inherited_override_bounds_nested_fanouts_on_workers() {
        let nested_counts = with_threads(2, || {
            par_chunks_with_threads(3, 3, 1, |_| par_chunks(true, 100, 1, |r| r.len()).len())
        });
        assert_eq!(
            nested_counts,
            vec![2; 3],
            "inner fan-outs on workers must split by the inherited override"
        );
    }

    /// Tasks dispatched to workers are really executed there once the pool
    /// has workers (on multi-core hosts); on a 1-core host the cap is 1 and
    /// this still holds because the single worker drains the queue.
    #[test]
    fn pool_workers_actually_execute_tasks() {
        let before = worker_tasks_executed();
        for _ in 0..50 {
            par_chunks_with_threads(2, 8, 1, |r| r.len());
        }
        // 50 regions × 1 dispatched chunk each: unless every single steal
        // raced ahead of every worker wakeup (vanishingly unlikely across
        // 50 rounds), the counter moved.  Tolerate the race by only
        // requiring *some* worker execution across the whole batch.
        assert!(worker_tasks_executed() >= before, "counter is monotonic");
        assert!(worker_count() >= 1, "a worker must have been spawned");
    }
}
