//! Dense vectors and slice kernels.
//!
//! Most numerical inner loops in the training algorithms operate on borrowed
//! `&[f64]` slices (feature vectors read straight out of storage pages), so the
//! primitive kernels here are free functions over slices.  [`Vector`] is a thin
//! owned wrapper that adds convenience constructors and operators on top.
//!
//! The kernels here are the **frozen sequential reference**: strictly
//! left-to-right accumulation with no unrolling, the arithmetic the `Naive`
//! kernel policy and the sparse exactness contracts are defined against.
//! They must never be vectorized or reassociated — the SIMD twins the blocked
//! policies run on live in [`crate::simd`] and are tested bit-for-bit (or, in
//! `fma` mode, to tolerance) against these.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// Dot product of two equally sized slices.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` (the BLAS AXPY kernel).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Elementwise `out = a - b`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub_into: dimension mismatch");
    assert_eq!(a.len(), out.len(), "sub_into: output dimension mismatch");
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x - y;
    }
}

/// Elementwise `out = a + b`.
#[inline]
pub fn add_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "add_into: dimension mismatch");
    assert_eq!(a.len(), out.len(), "add_into: output dimension mismatch");
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x + y;
    }
}

/// Scales every element of `x` in place by `alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Sum of all elements.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// Arithmetic mean; returns 0 for an empty slice.
#[inline]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f64
    }
}

/// Maximum absolute difference between two slices — handy in convergence checks
/// and tests that compare models produced by different algorithm variants.
#[inline]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: dimension mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// An owned dense `f64` vector.
///
/// `Vector` dereferences to `[f64]`, so all the free kernels above apply to it
/// directly.  It implements the arithmetic operators needed for readable model
/// update code (`+`, `-`, scalar `*`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Wraps an existing `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Self { data }
    }

    /// Builds a vector from a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &Vector) -> f64 {
        dot(&self.data, &other.data)
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        norm2(&self.data)
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        axpy(alpha, &other.data, &mut self.data);
    }

    /// Scales the vector in place.
    pub fn scale(&mut self, alpha: f64) {
        scale(alpha, &mut self.data);
    }

    /// Concatenates several vectors/slices into one, in order.
    ///
    /// This mirrors how a denormalized feature vector `x = [x_S x_R1 … x_Rq]` is
    /// assembled from the per-relation feature vectors.
    pub fn concat(parts: &[&[f64]]) -> Self {
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            data.extend_from_slice(p);
        }
        Self { data }
    }

    /// Iterator over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

impl std::ops::Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        axpy(1.0, rhs.as_slice(), out.as_mut_slice());
        out
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        let mut out = self.clone();
        axpy(-1.0, rhs.as_slice(), out.as_mut_slice());
        out
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        axpy(1.0, rhs.as_slice(), self.as_mut_slice());
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        axpy(-1.0, rhs.as_slice(), self.as_mut_slice());
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn sub_add_into() {
        let mut out = vec![0.0; 3];
        sub_into(&[5.0, 6.0, 7.0], &[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, vec![4.0, 4.0, 4.0]);
        add_into(&[5.0, 6.0, 7.0], &[1.0, 2.0, 3.0], &mut out);
        assert_eq!(out, vec![6.0, 8.0, 10.0]);
    }

    #[test]
    fn norms_and_stats() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 3.0]), 2.0);
    }

    #[test]
    fn vector_ops() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.dot(&b), 13.0);
        let mut c = Vector::zeros(2);
        c += &a;
        c -= &b;
        assert_eq!(c.as_slice(), &[-2.0, -3.0]);
    }

    #[test]
    fn vector_concat_matches_denormalized_layout() {
        let xs = [1.0, 2.0];
        let xr1 = [3.0];
        let xr2 = [4.0, 5.0];
        let x = Vector::concat(&[&xs, &xr1, &xr2]);
        assert_eq!(x.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(x.len(), 5);
    }

    #[test]
    fn fill_zero_keeps_len() {
        let mut v = Vector::filled(4, 7.0);
        v.fill_zero();
        assert_eq!(v.as_slice(), &[0.0; 4]);
    }
}
