//! One-hot / sparse kernels for categorical feature blocks.
//!
//! The paper's "Sparse" workloads one-hot encode categorical attributes, so a
//! width-`d` feature block carries only `s ≪ d` nonzeros per row — and every
//! nonzero is exactly `1.0`.  The kernels here exploit that structure directly:
//! a one-hot row is represented as its sorted **active column indices**
//! (`&[u32]`), and every dense multiply against such a row degenerates into a
//! gather (read the selected rows/columns) or a scatter-add (write the selected
//! rows/columns).  No multiplications are performed at all.
//!
//! ## Exactness contract
//!
//! Each kernel accumulates in **ascending index order**, which is exactly the
//! order in which the naive dense kernels visit the same nonzero terms.
//! Because the nonzero values are `1.0` (`1.0 * b == b` bitwise) and skipped
//! terms contribute an exact `±0.0`, every kernel in this module reproduces the
//! dense [`KernelPolicy::Naive`] reference **bit-for-bit** on one-hot inputs
//! (the property tests in `tests/proptests.rs` assert this).  The `_with`
//! variants accept a policy for API uniformity with [`crate::gemm`]; the
//! parallel policy only splits **output-disjoint** row bands (via
//! [`crate::policy::par_row_bands`]), which cannot change any output bit, and
//! scalar reductions are far too small (`s²` terms) to be worth fanning out, so
//! the bit-exactness guarantee holds under *every* policy — a stronger contract
//! than the dense kernels offer.
//!
//! ## Representation helpers
//!
//! [`onehot_indices`] recognizes a dense slice that is secretly one-hot (all
//! entries `0.0`/`1.0`, occupancy ≤ ½) and returns its index form; the trainers
//! use it to engage the sparse path automatically ([`SparseMode::Auto`]).
//! [`BlockVec`] is the typed per-block view (`Dense` slice vs `OneHot`
//! indices) that [`crate::block::BlockScatter`] and
//! [`crate::block::BlockQuadraticForm`] dispatch on.

use crate::csr;
use crate::matrix::Matrix;
use crate::policy::{self, KernelPolicy};
use crate::simd;
use crate::vector;
use serde::{Deserialize, Serialize};

/// How a trainer decides between the dense and sparse kernel paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SparseMode {
    /// Detect sparse blocks at scan time — one-hot first
    /// ([`onehot_indices`], 0/1 values at ≤ ½ occupancy), weighted CSR second
    /// ([`csr::csr_indices`], any values at ≤ ¼ occupancy) — and route them
    /// through the sparse kernels.  The default.
    #[default]
    Auto,
    /// Always use the dense kernels, even for sparse blocks.  Used as the
    /// comparison baseline by the equivalence tests and the bench sweeps.
    Dense,
}

/// Number of [`SparseMode::detect`] invocations in this process (monotonic).
///
/// The trainers cache detection per tuple; the regression tests use the delta
/// of this counter to prove that an EM iteration / epoch does **not** rescan
/// immutable data (detection runs at most once per tuple, not once per pass).
static DETECT_CALLS: fml_obs::LazyCounter =
    fml_obs::LazyCounter::new("fml_sparse_detect_calls_total");

/// Reads the process-global detection-invocation counter (an `fml-obs`
/// registry counter, `fml_sparse_detect_calls_total` — recorded
/// unconditionally so the counter-delta tests hold in every `FML_OBS` mode).
pub fn detect_calls() -> u64 {
    DETECT_CALLS.get().get()
}

/// An owned sparse representation of one feature row, as produced by
/// [`SparseMode::detect`] and cached per tuple by the trainers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseRep {
    /// Ascending active indices; every active value is exactly `1.0`.
    OneHot(Vec<u32>),
    /// Ascending nonzero indices with their (arbitrary) values.
    Csr {
        /// Ascending column indices of the nonzeros.
        idx: Vec<u32>,
        /// The nonzero values, matching `idx`.
        vals: Vec<f64>,
    },
}

impl SparseRep {
    /// Borrows the representation as a [`BlockVec`] for the block-dispatch
    /// methods in [`crate::block`].
    pub fn as_block_vec(&self) -> BlockVec<'_> {
        match self {
            SparseRep::OneHot(idx) => BlockVec::OneHot(idx),
            SparseRep::Csr { idx, vals } => BlockVec::Csr { idx, vals },
        }
    }

    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        match self {
            SparseRep::OneHot(idx) => idx.len(),
            SparseRep::Csr { idx, .. } => idx.len(),
        }
    }

    /// `x · v` for this sparse `x` and a dense `v` — a gather-sum for one-hot
    /// rows, a weighted gather for CSR rows.
    pub fn gather_dot(&self, v: &[f64]) -> f64 {
        match self {
            SparseRep::OneHot(idx) => gather_sum(v, idx),
            SparseRep::Csr { idx, vals } => csr::gather_dot(v, idx, vals),
        }
    }

    /// `out[i] += alpha · x[i]` over the nonzeros of this sparse `x`.
    pub fn axpy_into(&self, alpha: f64, out: &mut [f64]) {
        match self {
            SparseRep::OneHot(idx) => axpy_onehot(alpha, idx, out),
            SparseRep::Csr { idx, vals } => csr::axpy_csr(alpha, idx, vals, out),
        }
    }

    /// `A · x` for this sparse `x` (a column gather for one-hot rows).
    pub fn matvec(&self, kp: KernelPolicy, a: &Matrix) -> Vec<f64> {
        match self {
            SparseRep::OneHot(idx) => matvec_onehot_with(kp, a, idx),
            SparseRep::Csr { idx, vals } => csr::matvec_csr_with(kp, a, idx, vals),
        }
    }

    /// `Aᵀ · x` for this sparse `x` (a row gather for one-hot rows).
    pub fn matvec_transposed(&self, kp: KernelPolicy, a: &Matrix) -> Vec<f64> {
        match self {
            SparseRep::OneHot(idx) => matvec_transposed_onehot_with(kp, a, idx),
            SparseRep::Csr { idx, vals } => csr::matvec_transposed_csr_with(kp, a, idx, vals),
        }
    }

    /// `A += alpha · delta xᵀ` for this sparse `x` — the NN first-layer
    /// gradient column scatter.
    pub fn ger_cols(&self, kp: KernelPolicy, alpha: f64, delta: &[f64], a: &mut Matrix) {
        match self {
            SparseRep::OneHot(idx) => ger_onehot_cols_with(kp, alpha, delta, idx, a),
            SparseRep::Csr { idx, vals } => csr::ger_csr_cols_with(kp, alpha, delta, idx, vals, a),
        }
    }

    /// `xᵀ A x` for this sparse `x` — the raw (uncentered) diagonal quadratic
    /// form used by the mean decomposition.
    pub fn quadratic_form_pair(&self, a: &Matrix) -> f64 {
        match self {
            SparseRep::OneHot(idx) => quadratic_form_onehot_pair(idx, a, idx),
            SparseRep::Csr { idx, vals } => csr::quadratic_form_csr_pair(idx, vals, a, idx, vals),
        }
    }

    /// `A += alpha · x xᵀ` over the nonzero index pairs of this sparse `x` —
    /// the raw scatter of the M-step mean decomposition.
    pub fn scatter_pair(&self, alpha: f64, a: &mut Matrix) {
        match self {
            SparseRep::OneHot(idx) => scatter_onehot_pair(alpha, idx, idx, a),
            SparseRep::Csr { idx, vals } => csr::scatter_csr_pair(alpha, idx, vals, idx, vals, a),
        }
    }
}

impl SparseMode {
    /// Short lowercase label (`auto` / `dense`).
    pub fn label(self) -> &'static str {
        match self {
            SparseMode::Auto => "auto",
            SparseMode::Dense => "dense",
        }
    }

    /// The trainers' detection gate: under `Auto`, tries [`onehot_indices`]
    /// first (multiply-free kernels, ≤ ½ occupancy) and falls back to
    /// [`csr::csr_indices`] (weighted kernels, ≤ ¼ occupancy); always `None`
    /// under `Dense`.  Lives here so every trainer shares one detection
    /// policy.  Each call bumps [`detect_calls`] — callers are expected to
    /// cache the result per tuple rather than re-detect per pass.
    pub fn detect(self, features: &[f64]) -> Option<SparseRep> {
        match self {
            SparseMode::Auto => {
                DETECT_CALLS.get().inc();
                if let Some(idx) = onehot_indices(features) {
                    return Some(SparseRep::OneHot(idx));
                }
                csr::csr_indices(features).map(|(idx, vals)| SparseRep::Csr { idx, vals })
            }
            SparseMode::Dense => None,
        }
    }
}

/// Total number of one-hot kernel invocations in this process (monotonic).
///
/// The trainer integration tests use the delta of this counter to prove that
/// the sparse path actually engaged (or stayed silent under
/// [`SparseMode::Dense`]).  Monotonic and process-global, so concurrent tests
/// can only *increase* deltas — assertions should use `>=` / `== 0` patterns
/// inside single-test binaries.
static ONEHOT_KERNEL_CALLS: fml_obs::LazyCounter =
    fml_obs::LazyCounter::new("fml_sparse_onehot_kernel_calls_total");

#[inline]
fn count_call() {
    ONEHOT_KERNEL_CALLS.get().inc();
}

/// Records one one-hot kernel invocation performed outside this module (the
/// block-dispatch methods in [`crate::block`] call this for their one-hot arms).
#[inline]
pub fn record_onehot_call() {
    count_call();
}

/// Reads the process-global one-hot kernel invocation counter (the
/// `fml_sparse_onehot_kernel_calls_total` registry counter, recorded
/// unconditionally in every `FML_OBS` mode).
pub fn onehot_kernel_calls() -> u64 {
    ONEHOT_KERNEL_CALLS.get().get()
}

/// Maximum occupancy (`nnz / width`) at which [`onehot_indices`] still reports
/// a slice as one-hot.  Above half occupancy the dense kernels win on memory
/// traffic, so detection declines even for genuinely 0/1-valued data.
pub const MAX_AUTO_OCCUPANCY_NUM: usize = 1;
/// Denominator of the auto-detection occupancy cutoff (`nnz/width ≤ 1/2`).
pub const MAX_AUTO_OCCUPANCY_DEN: usize = 2;

/// Returns the ascending active indices of `x` when it is a one-hot block
/// worth treating sparsely: every entry exactly `0.0` or `1.0` and occupancy
/// at most ½.  Empty slices qualify (zero indices).  Returns `None` for
/// anything else — including 0/1 data that is too dense to profit.
pub fn onehot_indices(x: &[f64]) -> Option<Vec<u32>> {
    let mut idx = Vec::new();
    for (i, &v) in x.iter().enumerate() {
        if v == 1.0 {
            idx.push(i as u32);
        } else if v != 0.0 {
            return None;
        }
    }
    if idx.len() * MAX_AUTO_OCCUPANCY_DEN > x.len() * MAX_AUTO_OCCUPANCY_NUM {
        return None;
    }
    Some(idx)
}

/// A per-relation block of one feature vector, in whichever representation the
/// data actually has.  [`crate::block::BlockScatter::add_outer_rep`] and
/// [`crate::block::BlockQuadraticForm::term_rep`] dispatch on this.
#[derive(Debug, Clone, Copy)]
pub enum BlockVec<'a> {
    /// A dense slice of block width.
    Dense(&'a [f64]),
    /// Sorted active indices of a one-hot block (every active value is `1.0`).
    OneHot(&'a [u32]),
    /// Sorted nonzero indices of a weighted-sparse block with their values.
    Csr {
        /// Ascending column indices of the nonzeros.
        idx: &'a [u32],
        /// The nonzero values, matching `idx`.
        vals: &'a [f64],
    },
}

impl<'a> BlockVec<'a> {
    /// Number of nonzero entries.
    pub fn nnz(&self) -> usize {
        match self {
            BlockVec::Dense(x) => x.iter().filter(|&&v| v != 0.0).count(),
            BlockVec::OneHot(idx) => idx.len(),
            BlockVec::Csr { idx, .. } => idx.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Gathers (products that READ selected rows/columns)
// ---------------------------------------------------------------------------

/// `Σ_{i ∈ idx} v[i]` — the dot product `x · v` for one-hot `x`.
///
/// # Panics
/// Panics when any index is out of range.
#[inline]
pub fn gather_sum(v: &[f64], idx: &[u32]) -> f64 {
    count_call();
    let mut acc = 0.0;
    for &i in idx {
        acc += v[i as usize];
    }
    acc
}

/// `y = A · x` for one-hot `x`: the sum of the columns of `A` selected by
/// `idx`, under the default policy.
pub fn matvec_onehot(a: &Matrix, idx: &[u32]) -> Vec<f64> {
    matvec_onehot_with(policy::default_policy(), a, idx)
}

/// [`matvec_onehot`] under an explicit policy.
pub fn matvec_onehot_with(policy: KernelPolicy, a: &Matrix, idx: &[u32]) -> Vec<f64> {
    let mut y = vec![0.0; a.rows()];
    matvec_onehot_acc_with(policy, a, idx, &mut y);
    y
}

/// `y += A · x` for one-hot `x` (column gather-sum), under an explicit policy.
///
/// Row-major `A` is walked row by row; each output element accumulates its
/// row's selected entries in ascending index order, matching the naive dense
/// GEMV term order bit-for-bit.  The parallel policy splits the (disjoint)
/// output rows into bands.
pub fn matvec_onehot_acc_with(policy: KernelPolicy, a: &Matrix, idx: &[u32], y: &mut [f64]) {
    assert_eq!(
        a.rows(),
        y.len(),
        "matvec_onehot: output dimension mismatch"
    );
    check_indices(idx, a.cols(), "matvec_onehot");
    count_call();
    let rows = a.rows();
    let par = policy.is_parallel() && rows * idx.len() >= PAR_MIN_OPS;
    policy::par_row_bands(par, y, 1, 8, |first_row, band| {
        for (i, yi) in band.iter_mut().enumerate() {
            let row = a.row(first_row + i);
            let mut acc = 0.0;
            for &j in idx {
                acc += row[j as usize];
            }
            *yi += acc;
        }
    });
}

/// `y = Aᵀ · x` for one-hot `x`: the sum of the **rows** of `A` selected by
/// `idx`, under the default policy.
pub fn matvec_transposed_onehot(a: &Matrix, idx: &[u32]) -> Vec<f64> {
    matvec_transposed_onehot_with(policy::default_policy(), a, idx)
}

/// [`matvec_transposed_onehot`] under an explicit policy.
///
/// Rows are added front-to-back in index order (the same order as the naive
/// dense transposed GEMV visits its nonzero terms); the reduction is `s` AXPYs
/// and far below any useful parallel threshold, so every policy runs the same
/// sequential loop.  Each row add is a pure lane-wise [`simd::add_assign`]
/// (`1.0 * b == b` bitwise), identical at every SIMD level.
pub fn matvec_transposed_onehot_with(_policy: KernelPolicy, a: &Matrix, idx: &[u32]) -> Vec<f64> {
    check_indices(idx, a.rows(), "matvec_transposed_onehot");
    count_call();
    let lv = simd::current_level();
    let mut y = vec![0.0; a.cols()];
    for &i in idx {
        simd::add_assign(lv, &mut y, a.row(i as usize));
    }
    y
}

/// One-hot × dense product `C += X · B` where row `r` of `X` is one-hot with
/// active indices `rows_idx[r·nnz .. (r+1)·nnz]`, under the default policy.
pub fn spmm_onehot(rows_idx: &[u32], nnz_per_row: usize, b: &Matrix, c: &mut Matrix) {
    spmm_onehot_with(policy::default_policy(), rows_idx, nnz_per_row, b, c);
}

/// [`spmm_onehot`] under an explicit policy: each output row of `C` gathers
/// (sums) the rows of `B` its indices select — no multiplications at all.
///
/// Output rows are disjoint, so the parallel policy splits them into bands;
/// banding cannot change any bit of the result.
///
/// # Panics
/// Panics when `rows_idx.len()` is not a multiple of `nnz_per_row` (unless
/// both are zero), when the implied row count disagrees with `c.rows()`, or
/// when any index is out of range for `b.rows()`.
pub fn spmm_onehot_with(
    policy: KernelPolicy,
    rows_idx: &[u32],
    nnz_per_row: usize,
    b: &Matrix,
    c: &mut Matrix,
) {
    let m = c.rows();
    if nnz_per_row == 0 {
        assert!(rows_idx.is_empty(), "spmm_onehot: indices with zero nnz");
        return;
    }
    assert_eq!(
        rows_idx.len(),
        m * nnz_per_row,
        "spmm_onehot: expected {m} rows of {nnz_per_row} indices, got {} indices",
        rows_idx.len()
    );
    check_indices(rows_idx, b.rows(), "spmm_onehot");
    count_call();
    let n = b.cols();
    if m == 0 || n == 0 {
        return;
    }
    let par = policy.is_parallel() && m * nnz_per_row * n >= PAR_MIN_OPS;
    let lv = simd::current_level();
    policy::par_row_bands(par, c.as_mut_slice(), n, 8, |first_row, band| {
        for (r, crow) in band.chunks_exact_mut(n).enumerate() {
            let idx = &rows_idx[(first_row + r) * nnz_per_row..(first_row + r + 1) * nnz_per_row];
            for &k in idx {
                // Plain adds — the active values are 1.0, so no multiply at
                // all (bit-identical to `+= 1.0 * b`, one vector op cheaper).
                // Pure lane-wise adds are identical at every SIMD level.
                simd::add_assign(lv, crow, b.row(k as usize));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Scatters (rank-1 updates that WRITE selected rows/columns)
// ---------------------------------------------------------------------------

/// `A += alpha · x yᵀ` for one-hot `x`: adds `alpha · y` to the rows of `A`
/// selected by `idx`, under the default policy.
pub fn ger_onehot(alpha: f64, idx: &[u32], y: &[f64], a: &mut Matrix) {
    ger_onehot_with(policy::default_policy(), alpha, idx, y, a);
}

/// [`ger_onehot`] under an explicit policy.
///
/// Touches `s` rows where the dense GER touches all of them; the written rows
/// are disjoint and visited in ascending order, so the result is bit-identical
/// to the dense naive GER on the equivalent one-hot vector.  The row set is
/// tiny, so every policy runs the same sequential loop.
pub fn ger_onehot_with(_policy: KernelPolicy, alpha: f64, idx: &[u32], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.cols(), y.len(), "ger_onehot: col dimension mismatch");
    check_indices(idx, a.rows(), "ger_onehot");
    count_call();
    let lv = simd::current_level();
    for &i in idx {
        simd::axpy(lv, alpha, y, a.row_mut(i as usize));
    }
}

/// `A += alpha · x yᵀ` for one-hot `y`: adds `alpha · x[i]` to the entries of
/// row `i` at the columns selected by `idx`, under the default policy.
pub fn ger_onehot_cols(alpha: f64, x: &[f64], idx: &[u32], a: &mut Matrix) {
    ger_onehot_cols_with(policy::default_policy(), alpha, x, idx, a);
}

/// [`ger_onehot_cols`] under an explicit policy: the first-layer gradient
/// scatter of the NN trainers (`∂E/∂W += δ · xᵀ` with one-hot `x`).
///
/// Output rows are disjoint; the parallel policy splits them into bands.
pub fn ger_onehot_cols_with(
    policy: KernelPolicy,
    alpha: f64,
    x: &[f64],
    idx: &[u32],
    a: &mut Matrix,
) {
    assert_eq!(a.rows(), x.len(), "ger_onehot_cols: row dimension mismatch");
    check_indices(idx, a.cols(), "ger_onehot_cols");
    count_call();
    let cols = a.cols();
    if cols == 0 || x.is_empty() {
        return;
    }
    let par = policy.is_parallel() && x.len() * idx.len() >= PAR_MIN_OPS;
    policy::par_row_bands(par, a.as_mut_slice(), cols, 8, |first_row, band| {
        for (i, row) in band.chunks_exact_mut(cols).enumerate() {
            let s = alpha * x[first_row + i];
            for &j in idx {
                row[j as usize] += s;
            }
        }
    });
}

/// `A[i][j] += alpha` for every `(i, j) ∈ rows_idx × cols_idx` — the outer
/// product of two one-hot vectors, scattered directly into the accumulator.
pub fn scatter_onehot_pair(alpha: f64, rows_idx: &[u32], cols_idx: &[u32], a: &mut Matrix) {
    check_indices(rows_idx, a.rows(), "scatter_onehot_pair rows");
    check_indices(cols_idx, a.cols(), "scatter_onehot_pair cols");
    count_call();
    for &i in rows_idx {
        let row = a.row_mut(i as usize);
        for &j in cols_idx {
            row[j as usize] += alpha;
        }
    }
}

/// `x[i] += alpha` for every `i ∈ idx` — AXPY with a one-hot right-hand side.
pub fn axpy_onehot(alpha: f64, idx: &[u32], x: &mut [f64]) {
    check_indices(idx, x.len(), "axpy_onehot");
    count_call();
    for &i in idx {
        x[i as usize] += alpha;
    }
}

// ---------------------------------------------------------------------------
// Quadratic forms
// ---------------------------------------------------------------------------

/// `xᵀ A y` for one-hot `x` and dense `y`: `Σ_{i ∈ idx} A.row(i) · y`, under
/// the default policy.
pub fn quadratic_form_onehot(idx: &[u32], a: &Matrix, y: &[f64]) -> f64 {
    quadratic_form_onehot_with(policy::default_policy(), idx, a, y)
}

/// [`quadratic_form_onehot`] under an explicit policy.
///
/// The dense naive quadratic form already skips zero entries of `x` and sums
/// `x_i · (A.row(i)·y)` in ascending `i`; with `x_i = 1.0` this loop is that
/// computation verbatim, so the result is bit-identical.  `s` dot products are
/// far below any parallel threshold, so every policy runs sequentially.
pub fn quadratic_form_onehot_with(
    _policy: KernelPolicy,
    idx: &[u32],
    a: &Matrix,
    y: &[f64],
) -> f64 {
    assert_eq!(a.cols(), y.len(), "quadratic_form_onehot: col mismatch");
    check_indices(idx, a.rows(), "quadratic_form_onehot");
    count_call();
    let mut acc = 0.0;
    for &i in idx {
        acc += vector::dot(a.row(i as usize), y);
    }
    acc
}

/// `xᵀ A y` for one-hot `x` **and** one-hot `y`:
/// `Σ_{i ∈ rows} Σ_{j ∈ cols} A[i][j]` — `s²` loads, zero multiplications.
pub fn quadratic_form_onehot_pair(rows_idx: &[u32], a: &Matrix, cols_idx: &[u32]) -> f64 {
    check_indices(rows_idx, a.rows(), "quadratic_form_onehot_pair rows");
    check_indices(cols_idx, a.cols(), "quadratic_form_onehot_pair cols");
    count_call();
    let mut acc = 0.0;
    for &i in rows_idx {
        let row = a.row(i as usize);
        let mut row_acc = 0.0;
        for &j in cols_idx {
            row_acc += row[j as usize];
        }
        acc += row_acc;
    }
    acc
}

/// Work threshold below which the parallel policy stays on one thread (same
/// role as `gemm::PAR_MIN_FLOPS`, scaled for gather/scatter memory ops).
const PAR_MIN_OPS: usize = 1 << 18;

#[inline]
fn check_indices(idx: &[u32], bound: usize, what: &str) {
    for &i in idx {
        assert!(
            (i as usize) < bound,
            "{what}: index {i} out of range for width {bound}"
        );
    }
}

/// Bounds-checks a one-hot index set against a block width (shared with the
/// block-dispatch methods in [`crate::block`]).
///
/// # Panics
/// Panics when any index is `>= bound`.
#[inline]
pub fn check_block_indices(idx: &[u32], bound: usize, what: &str) {
    check_indices(idx, bound, what);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    fn pseudo(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut rng = crate::testutil::TestRng::new(salt);
        Matrix::from_vec(rows, cols, rng.vec_in(rows * cols, -1.0, 1.0))
    }

    /// Dense 0/1 vector from indices.
    fn densify(idx: &[u32], width: usize) -> Vec<f64> {
        let mut v = vec![0.0; width];
        for &i in idx {
            v[i as usize] = 1.0;
        }
        v
    }

    #[test]
    fn detection_accepts_onehot_and_rejects_dense() {
        assert_eq!(
            onehot_indices(&[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]),
            Some(vec![1, 4])
        );
        assert_eq!(onehot_indices(&[]), Some(vec![]));
        assert_eq!(onehot_indices(&[0.0, 0.0]), Some(vec![]));
        // non-0/1 value
        assert_eq!(onehot_indices(&[0.0, 0.5]), None);
        // above half occupancy: correct but not profitable
        assert_eq!(onehot_indices(&[1.0, 1.0, 1.0, 0.0]), None);
        // exactly half occupancy still qualifies
        assert_eq!(onehot_indices(&[1.0, 0.0, 1.0, 0.0]), Some(vec![0, 2]));
        // cardinality-1 column alone is all ones
        assert_eq!(onehot_indices(&[1.0]), None);
    }

    #[test]
    fn gathers_match_dense_naive_bitwise() {
        let a = pseudo(9, 7, 1);
        let idx = [1u32, 4, 6];
        let x = densify(&idx, 7);
        let xr = densify(&idx[..2], 9);
        for p in KernelPolicy::ALL {
            // A·x: dense naive GEMV vs column gather
            let dense = gemm::matvec_with(KernelPolicy::Naive, &a, &x);
            assert_eq!(matvec_onehot_with(p, &a, &idx), dense, "{p}");
            // Aᵀ·x: dense naive transposed GEMV vs row gather
            let dense_t = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &xr);
            assert_eq!(
                matvec_transposed_onehot_with(p, &a, &[1, 4]),
                dense_t,
                "{p}"
            );
        }
        assert_eq!(gather_sum(&[1.0, 2.0, 3.0], &[0, 2]), 4.0);
    }

    #[test]
    fn spmm_matches_dense_naive_bitwise() {
        let b = pseudo(9, 5, 2);
        let rows_idx: Vec<u32> = vec![0, 3, 1, 4, 2, 8, 0, 7];
        let nnz = 2;
        let m = rows_idx.len() / nnz;
        let mut x = Matrix::zeros(m, 9);
        for (r, pair) in rows_idx.chunks_exact(nnz).enumerate() {
            for &j in pair {
                x[(r, j as usize)] = 1.0;
            }
        }
        let mut dense = Matrix::zeros(m, 5);
        gemm::matmul_acc_with(KernelPolicy::Naive, &x, &b, &mut dense);
        for p in KernelPolicy::ALL {
            let mut c = Matrix::zeros(m, 5);
            spmm_onehot_with(p, &rows_idx, nnz, &b, &mut c);
            assert_eq!(c, dense, "{p}");
        }
    }

    #[test]
    fn scatters_match_dense_naive_bitwise() {
        let y = crate::testutil::TestRng::new(3).vec_in(6, -1.0, 1.0);
        let idx = [2u32, 5];
        let x_rows = densify(&idx, 8);
        for p in KernelPolicy::ALL {
            let mut dense = pseudo(8, 6, 4);
            let mut sparse = dense.clone();
            gemm::ger_with(KernelPolicy::Naive, 0.7, &x_rows, &y, &mut dense);
            ger_onehot_with(p, 0.7, &idx, &y, &mut sparse);
            assert_eq!(dense, sparse, "{p}");
        }
        // column scatter: A += alpha x yᵀ with one-hot y
        let x = crate::testutil::TestRng::new(5).vec_in(8, -1.0, 1.0);
        let ycols = densify(&idx, 6);
        for p in KernelPolicy::ALL {
            let mut dense = pseudo(8, 6, 6);
            let mut sparse = dense.clone();
            gemm::ger_with(KernelPolicy::Naive, -1.3, &x, &ycols, &mut dense);
            ger_onehot_cols_with(p, -1.3, &x, &idx, &mut sparse);
            assert_eq!(dense, sparse, "{p}");
        }
    }

    #[test]
    fn pair_scatter_and_axpy() {
        let mut a = Matrix::zeros(4, 4);
        scatter_onehot_pair(0.5, &[1, 3], &[0, 2], &mut a);
        assert_eq!(a[(1, 0)], 0.5);
        assert_eq!(a[(3, 2)], 0.5);
        assert_eq!(a[(0, 0)], 0.0);

        let mut v = vec![1.0; 4];
        axpy_onehot(2.0, &[0, 3], &mut v);
        assert_eq!(v, vec![3.0, 1.0, 1.0, 3.0]);
    }

    #[test]
    fn quadratic_forms_match_dense_naive_bitwise() {
        let a = pseudo(7, 7, 8);
        let idx = [0u32, 2, 6];
        let x = densify(&idx, 7);
        let y = crate::testutil::TestRng::new(9).vec_in(7, -1.0, 1.0);
        let dense = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &y);
        for p in KernelPolicy::ALL {
            assert_eq!(quadratic_form_onehot_with(p, &idx, &a, &y), dense, "{p}");
        }
        let jdx = [1u32, 5];
        let yj = densify(&jdx, 7);
        let dense_pair = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &yj);
        let sparse_pair = quadratic_form_onehot_pair(&idx, &a, &jdx);
        assert!((dense_pair - sparse_pair).abs() < 1e-15);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let a = pseudo(4, 4, 10);
        assert_eq!(matvec_onehot(&a, &[]), vec![0.0; 4]);
        assert_eq!(matvec_transposed_onehot(&a, &[]), vec![0.0; 4]);
        assert_eq!(quadratic_form_onehot(&[], &a, &[0.0; 4]), 0.0);
        let mut c = Matrix::zeros(0, 4);
        spmm_onehot(&[], 2, &a, &mut c);
        spmm_onehot(&[], 0, &a, &mut c);
        let mut m = pseudo(4, 4, 11);
        let before = m.clone();
        ger_onehot(1.0, &[], &[0.0; 4], &mut m);
        ger_onehot_cols(1.0, &[0.0; 4], &[], &mut m);
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let a = Matrix::zeros(3, 3);
        let _ = matvec_onehot(&a, &[3]);
    }

    #[test]
    fn kernel_counter_is_monotonic() {
        let before = onehot_kernel_calls();
        let _ = gather_sum(&[1.0], &[0]);
        assert!(onehot_kernel_calls() > before);
    }

    #[test]
    fn sparse_mode_labels() {
        assert_eq!(SparseMode::default(), SparseMode::Auto);
        assert_eq!(SparseMode::Auto.label(), "auto");
        assert_eq!(SparseMode::Dense.label(), "dense");
    }

    #[test]
    fn detect_prefers_onehot_then_csr_then_dense() {
        let before = detect_calls();
        // 0/1 at ≤ ½ occupancy → one-hot
        assert_eq!(
            SparseMode::Auto.detect(&[0.0, 1.0, 0.0, 0.0]),
            Some(SparseRep::OneHot(vec![1]))
        );
        // weighted nonzeros at ≤ ¼ occupancy → CSR
        assert_eq!(
            SparseMode::Auto.detect(&[0.0, 0.0, 2.5, 0.0, 0.0, 0.0, -1.0, 0.0]),
            Some(SparseRep::Csr {
                idx: vec![2, 6],
                vals: vec![2.5, -1.0],
            })
        );
        // weighted but too dense → dense path
        assert_eq!(SparseMode::Auto.detect(&[1.5, 2.5, 0.0, 0.0]), None);
        // Auto detection must bump the process-global counter (≥, not ==:
        // other tests in this binary may detect concurrently)
        assert!(
            detect_calls() >= before + 3,
            "Auto detection must bump the counter"
        );
        // Dense mode never detects (and takes the non-counting arm)
        assert_eq!(SparseMode::Dense.detect(&[0.0, 1.0]), None);
    }

    #[test]
    fn sparse_rep_helpers_dispatch_to_the_right_kernels() {
        let onehot = SparseRep::OneHot(vec![0, 2]);
        let csr = SparseRep::Csr {
            idx: vec![0, 2],
            vals: vec![2.0, -1.0],
        };
        assert_eq!(onehot.nnz(), 2);
        assert_eq!(csr.nnz(), 2);
        let v = [1.0, 10.0, 3.0];
        assert_eq!(onehot.gather_dot(&v), 4.0);
        assert_eq!(csr.gather_dot(&v), -1.0);
        let mut out = vec![0.0; 3];
        onehot.axpy_into(2.0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, 2.0]);
        let mut out = vec![0.0; 3];
        csr.axpy_into(2.0, &mut out);
        assert_eq!(out, vec![4.0, 0.0, -2.0]);
        // quadratic form pair: xᵀ A x against the densified oracle
        let a = pseudo(3, 3, 21);
        let x_one = densify(&[0, 2], 3);
        let dense = crate::gemm::quadratic_form_with(KernelPolicy::Naive, &x_one, &a, &x_one);
        assert_eq!(onehot.quadratic_form_pair(&a), dense);
        let x_csr = [2.0, 0.0, -1.0];
        let dense = crate::gemm::quadratic_form_with(KernelPolicy::Naive, &x_csr, &a, &x_csr);
        assert_eq!(csr.quadratic_form_pair(&a), dense);
    }
}
