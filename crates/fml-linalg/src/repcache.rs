//! Per-tuple sparse-representation caches shared by every trainer.
//!
//! Under [`SparseMode::Auto`] the trainers detect each tuple's representation
//! ([`SparseRep`]: one-hot, weighted CSR, or dense) **once** and reuse the
//! result for every later pass and iteration — detection is a full scan of
//! the feature row, and the feature data is immutable, so re-detecting per
//! pass would be pure waste (the learner crates' counter tests pin "at most
//! one detection per tuple").
//!
//! Two cache shapes cover all six trainers:
//!
//! * [`RepCache`] — **scan-order**: the dense-pass drivers (`M`/`S`) and the
//!   binary factorized trainers replay tuples in a deterministic scan order,
//!   so the cache is a position-indexed vector filled lazily during the first
//!   pass.  The fill protocol supports the trainers' chunked parallel loops:
//!   workers detect into private [`RepSegment`]s which the driver merges back
//!   **in chunk-index order**, keeping the cache layout identical to the
//!   sequential fill.
//! * [`KeyedRepCache`] — **FK-keyed**: the multi-way trainers look dimension
//!   tuples up by foreign key (each distinct tuple is shared by many facts),
//!   so the cache is a hash map filled on first encounter.
//!
//! Both read as "always dense" under [`SparseMode::Dense`] without ever
//! invoking detection, which is how the forced-dense baseline stays silent in
//! the kernel-counter tests.

use crate::sparse::{SparseMode, SparseRep};
use std::collections::HashMap;

/// A lazily filled, scan-order cache of per-tuple sparse representations.
///
/// Lifecycle: construct with the run's [`SparseMode`]; during the **fill
/// pass** (the first pass over the data) call [`RepCache::rep_or_detect`] for
/// every tuple in scan order (or fan out with [`RepCache::segment`] /
/// [`RepCache::merge`]); call [`RepCache::finish_fill`] when the pass
/// completes; every later pass reads with [`RepCache::get`] (or
/// `rep_or_detect`, which reads once filling is done).
#[derive(Debug, Default)]
pub struct RepCache {
    mode: SparseMode,
    reps: Vec<Option<SparseRep>>,
    filling: bool,
}

impl RepCache {
    /// Creates a cache for one training run.  Under [`SparseMode::Dense`] the
    /// cache is born finished: nothing is ever detected and every lookup
    /// reads as dense.
    pub fn new(mode: SparseMode) -> Self {
        Self {
            mode,
            reps: Vec::new(),
            filling: mode == SparseMode::Auto,
        }
    }

    /// The detection mode this cache was built with.
    pub fn mode(&self) -> SparseMode {
        self.mode
    }

    /// Whether the cache is still in its fill pass.
    pub fn filling(&self) -> bool {
        self.filling
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether the cache holds no positions (always true under `Dense`).
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Reads the representation cached at scan position `index`; positions
    /// beyond the cache (the forced-dense mode caches nothing) read as dense.
    pub fn get(&self, index: usize) -> Option<&SparseRep> {
        self.reps.get(index).and_then(Option::as_ref)
    }

    /// Fill-or-read: during the fill pass, detects `features` and appends the
    /// result (positions must arrive in scan order); afterwards, a plain
    /// [`RepCache::get`].
    pub fn rep_or_detect(&mut self, index: usize, features: &[f64]) -> Option<&SparseRep> {
        if self.filling {
            debug_assert_eq!(
                index,
                self.reps.len(),
                "RepCache fill must follow scan order"
            );
            let rep = self.mode.detect(features);
            self.reps.push(rep);
        }
        self.get(index)
    }

    /// Opens a worker-local view for one chunk of the fill pass, starting at
    /// absolute scan position `base`.  Outside the fill pass the segment is a
    /// read-only cursor over the shared cache.
    pub fn segment(&self, base: usize) -> RepSegment<'_> {
        RepSegment {
            cache: self,
            base,
            detected: Vec::new(),
        }
    }

    /// Merges one chunk's detections back into the cache.  Chunks **must** be
    /// merged in chunk-index order — the whole point of the protocol is that
    /// the merged layout matches the sequential scan order exactly.
    pub fn merge(&mut self, detected: Vec<Option<SparseRep>>) {
        debug_assert!(
            self.filling || detected.is_empty(),
            "RepCache::merge outside the fill pass"
        );
        self.reps.extend(detected);
    }

    /// Marks the fill pass complete; later passes only read.
    pub fn finish_fill(&mut self) {
        self.filling = false;
    }
}

/// A worker-local view over one chunk of a [`RepCache`] fill pass.
///
/// During the fill pass, [`RepSegment::rep_or_detect`] detects into a private
/// buffer (the shared cache is only borrowed immutably, so chunks run in
/// parallel); once filling is done it reads straight from the shared cache.
/// The worker returns [`RepSegment::into_detected`] as part of its chunk
/// result, and the driver merges the buffers in chunk order.
#[derive(Debug)]
pub struct RepSegment<'a> {
    cache: &'a RepCache,
    base: usize,
    detected: Vec<Option<SparseRep>>,
}

impl RepSegment<'_> {
    /// Fill-or-read at absolute scan position `index` (positions must arrive
    /// in scan order within the chunk).
    pub fn rep_or_detect(&mut self, index: usize, features: &[f64]) -> Option<&SparseRep> {
        if self.cache.filling {
            debug_assert_eq!(
                index,
                self.base + self.detected.len(),
                "RepSegment fill must follow scan order"
            );
            self.detected.push(self.cache.mode.detect(features));
            self.detected.last().and_then(Option::as_ref)
        } else {
            self.cache.get(index)
        }
    }

    /// The chunk's detections, for [`RepCache::merge`] (empty outside the
    /// fill pass).
    pub fn into_detected(self) -> Vec<Option<SparseRep>> {
        self.detected
    }
}

/// A sparse-representation cache keyed by foreign key, for the multi-way
/// trainers' dimension tuples.  Detection runs on the first encounter of each
/// distinct key and persists for the whole training run.
#[derive(Debug, Default)]
pub struct KeyedRepCache {
    mode: SparseMode,
    reps: HashMap<u64, Option<SparseRep>>,
}

impl KeyedRepCache {
    /// Creates a cache for one training run.
    pub fn new(mode: SparseMode) -> Self {
        Self {
            mode,
            reps: HashMap::new(),
        }
    }

    /// Fill-or-read: detects `features` on the first encounter of `key`,
    /// reads the cached result afterwards.  Never detects under
    /// [`SparseMode::Dense`] ([`SparseMode::detect`] returns `None` without
    /// counting).
    pub fn rep_or_detect(&mut self, key: u64, features: &[f64]) -> Option<&SparseRep> {
        let mode = self.mode;
        self.reps
            .entry(key)
            .or_insert_with(|| mode.detect(features))
            .as_ref()
    }

    /// Reads the representation cached for `key`.
    ///
    /// # Panics
    /// Panics when `key` was never passed to [`KeyedRepCache::rep_or_detect`]
    /// — the trainers guarantee every FK is detected during the first pass,
    /// so a miss here is a protocol bug, not a dense tuple.
    pub fn get(&self, key: u64) -> Option<&SparseRep> {
        self.reps
            .get(&key)
            .unwrap_or_else(|| panic!("KeyedRepCache: key {key} was never detected"))
            .as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::detect_calls;

    fn onehot_row() -> Vec<f64> {
        vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0]
    }

    fn dense_row() -> Vec<f64> {
        vec![1.5, 2.5, 3.5, 0.5, 1.0, 2.0]
    }

    #[test]
    fn sequential_fill_then_read() {
        let mut cache = RepCache::new(SparseMode::Auto);
        assert!(cache.filling());
        assert!(cache.rep_or_detect(0, &onehot_row()).is_some());
        assert!(cache.rep_or_detect(1, &dense_row()).is_none());
        cache.finish_fill();
        assert!(!cache.filling());
        assert_eq!(cache.len(), 2);
        // later passes read the cached reps without re-detecting
        let before = detect_calls();
        assert!(cache.rep_or_detect(0, &onehot_row()).is_some());
        assert!(cache.get(1).is_none());
        assert_eq!(detect_calls(), before, "read pass must not re-detect");
    }

    #[test]
    fn dense_mode_never_detects_and_reads_as_dense() {
        let before = detect_calls();
        let mut cache = RepCache::new(SparseMode::Dense);
        assert!(!cache.filling(), "Dense caches are born finished");
        assert!(cache.rep_or_detect(0, &onehot_row()).is_none());
        assert!(cache.get(12345).is_none());
        assert!(cache.is_empty());
        assert_eq!(detect_calls(), before);
    }

    #[test]
    fn chunked_fill_merges_in_chunk_order() {
        // Simulate the trainers' parallel fill: two chunks detect privately,
        // the driver merges in chunk order, and the final layout matches the
        // sequential fill exactly.
        let rows = [onehot_row(), dense_row(), onehot_row(), dense_row()];
        let mut sequential = RepCache::new(SparseMode::Auto);
        for (i, row) in rows.iter().enumerate() {
            sequential.rep_or_detect(i, row);
        }
        sequential.finish_fill();

        let mut chunked = RepCache::new(SparseMode::Auto);
        let mut buffers = Vec::new();
        for chunk in [0..2usize, 2..4] {
            let mut seg = chunked.segment(chunk.start);
            for i in chunk {
                seg.rep_or_detect(i, &rows[i]);
            }
            buffers.push(seg.into_detected());
        }
        for buf in buffers {
            chunked.merge(buf);
        }
        chunked.finish_fill();

        assert_eq!(chunked.len(), sequential.len());
        for i in 0..rows.len() {
            assert_eq!(chunked.get(i), sequential.get(i), "position {i}");
        }
    }

    #[test]
    fn segments_read_through_after_fill() {
        let mut cache = RepCache::new(SparseMode::Auto);
        cache.rep_or_detect(0, &onehot_row());
        cache.rep_or_detect(1, &dense_row());
        cache.finish_fill();
        let before = detect_calls();
        let mut seg = cache.segment(0);
        assert!(seg.rep_or_detect(0, &onehot_row()).is_some());
        assert!(seg.rep_or_detect(1, &dense_row()).is_none());
        assert!(
            seg.into_detected().is_empty(),
            "read-only segments buffer nothing"
        );
        assert_eq!(detect_calls(), before);
    }

    #[test]
    fn keyed_cache_detects_once_per_key() {
        let mut cache = KeyedRepCache::new(SparseMode::Auto);
        let before = detect_calls();
        assert!(cache.rep_or_detect(7, &onehot_row()).is_some());
        assert!(cache.rep_or_detect(7, &onehot_row()).is_some());
        assert!(cache.rep_or_detect(9, &dense_row()).is_none());
        assert_eq!(detect_calls(), before + 2, "one detection per distinct key");
        assert!(cache.get(7).is_some());
        assert!(cache.get(9).is_none());
    }

    #[test]
    #[should_panic(expected = "never detected")]
    fn keyed_cache_panics_on_undetected_key() {
        let cache = KeyedRepCache::new(SparseMode::Auto);
        let _ = cache.get(42);
    }
}
