//! General CSR kernels for *weighted* sparse feature blocks.
//!
//! [`crate::sparse`] handles the one-hot case (every nonzero is exactly `1.0`,
//! fixed nnz per row); real normalized data also carries weighted sparse
//! numerics — TF-IDF-ish encodings, scaled indicators, near-sparse measure
//! columns — with arbitrary values and variable row support.  This module
//! generalizes the gather/scatter machinery to compressed sparse rows:
//!
//! * a single sparse **row** is `(idx, vals)` — ascending column indices plus
//!   the matching nonzero values;
//! * a sparse **block** of rows is a [`CsrBlock`] (`values` + `col_idx` +
//!   `row_ptr`), the classic CSR triplet.
//!
//! ## Exactness contract
//!
//! Every kernel here performs the same multiplications as the dense
//! [`KernelPolicy::Naive`] reference, in the same ascending-index order; the
//! only terms skipped are products with an exactly-`0.0` operand, which
//! contribute an exact `±0.0` to the dense accumulation.  The results are
//! therefore equal (under `f64` comparison, which identifies `-0.0 == 0.0`) to
//! the dense naive oracle — the property tests in `tests/proptests.rs` assert
//! this under **every** policy.  The `_with` variants only ever parallelize
//! output-disjoint row bands (via [`crate::policy::par_row_bands`]), which
//! cannot regroup any accumulation.
//!
//! ## Detection
//!
//! [`csr_indices`] recognizes a dense slice that is profitably sparse but not
//! one-hot: occupancy at most [`MAX_CSR_OCCUPANCY_NUM`]`/`[`MAX_CSR_OCCUPANCY_DEN`]
//! (¼ — the weighted kernels still pay one multiply per nonzero, so the
//! break-even occupancy is lower than the multiply-free one-hot cutoff of ½).
//! The shared trainer gate is [`crate::sparse::SparseMode::detect`], which
//! tries the one-hot form first and falls back to CSR.

use crate::matrix::Matrix;
use crate::policy::{self, KernelPolicy};
use crate::simd;
use crate::vector;

/// Total number of CSR kernel invocations in this process (monotonic) — the
/// weighted-sparse counterpart of [`crate::sparse::onehot_kernel_calls`],
/// held as the `fml_sparse_csr_kernel_calls_total` registry counter and
/// recorded unconditionally in every `FML_OBS` mode.
static CSR_KERNEL_CALLS: fml_obs::LazyCounter =
    fml_obs::LazyCounter::new("fml_sparse_csr_kernel_calls_total");

#[inline]
fn count_call() {
    CSR_KERNEL_CALLS.get().inc();
}

/// Records one CSR kernel invocation performed outside this module (the
/// block-dispatch methods in [`crate::block`] call this for their CSR arms).
#[inline]
pub fn record_csr_call() {
    count_call();
}

/// Reads the process-global CSR kernel invocation counter.
pub fn csr_kernel_calls() -> u64 {
    CSR_KERNEL_CALLS.get().get()
}

/// Maximum occupancy (`nnz / width`) at which [`csr_indices`] still reports a
/// slice as worth treating as weighted-sparse.
pub const MAX_CSR_OCCUPANCY_NUM: usize = 1;
/// Denominator of the CSR detection cutoff (`nnz/width ≤ 1/4`).
pub const MAX_CSR_OCCUPANCY_DEN: usize = 4;

/// Returns the ascending nonzero `(indices, values)` of `x` when the slice is
/// sparse enough to profit from the weighted kernels (occupancy ≤ ¼).  Returns
/// `None` otherwise.  Callers that also want the cheaper one-hot form should
/// try [`crate::sparse::onehot_indices`] first — 0/1 data at ≤ ½ occupancy is
/// better served there.
pub fn csr_indices(x: &[f64]) -> Option<(Vec<u32>, Vec<f64>)> {
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    let cutoff = x.len() * MAX_CSR_OCCUPANCY_NUM / MAX_CSR_OCCUPANCY_DEN;
    for (i, &v) in x.iter().enumerate() {
        if v != 0.0 {
            if idx.len() >= cutoff {
                return None; // too dense, bail before scanning the rest
            }
            idx.push(i as u32);
            vals.push(v);
        }
    }
    Some((idx, vals))
}

/// A compressed-sparse-row block: `rows()` sparse rows over `cols` columns.
///
/// Row `r` holds `col_idx[row_ptr[r]..row_ptr[r+1]]` (ascending) with values
/// `values[row_ptr[r]..row_ptr[r+1]]`.  Row supports may differ — the
/// generalization over [`crate::sparse`]'s fixed-nnz one-hot layout.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrBlock {
    values: Vec<f64>,
    col_idx: Vec<u32>,
    row_ptr: Vec<usize>,
    cols: usize,
}

impl CsrBlock {
    /// Builds a block from the raw CSR triplet.
    ///
    /// # Panics
    /// Panics when the triplet is inconsistent: `row_ptr` must start at 0, be
    /// non-decreasing and end at `values.len()`; `values` and `col_idx` must
    /// have equal length; every row's indices must be strictly ascending and
    /// in range.
    pub fn new(values: Vec<f64>, col_idx: Vec<u32>, row_ptr: Vec<usize>, cols: usize) -> Self {
        assert_eq!(
            values.len(),
            col_idx.len(),
            "CsrBlock: values/col_idx length mismatch"
        );
        assert!(!row_ptr.is_empty(), "CsrBlock: row_ptr must not be empty");
        assert_eq!(row_ptr[0], 0, "CsrBlock: row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            values.len(),
            "CsrBlock: row_ptr must end at nnz"
        );
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "CsrBlock: row_ptr must be non-decreasing");
            let row = &col_idx[w[0]..w[1]];
            for pair in row.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "CsrBlock: column indices must be strictly ascending per row"
                );
            }
            if let Some(&last) = row.last() {
                assert!(
                    (last as usize) < cols,
                    "CsrBlock: column index {last} out of range for width {cols}"
                );
            }
        }
        Self {
            values,
            col_idx,
            row_ptr,
            cols,
        }
    }

    /// Compresses a dense matrix, keeping every nonzero entry.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = Vec::with_capacity(m.rows() + 1);
        row_ptr.push(0);
        for r in 0..m.rows() {
            for (j, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    values.push(v);
                    col_idx.push(j as u32);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            values,
            col_idx,
            row_ptr,
            cols: m.cols(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns (the encoded block width).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of the dense `rows × cols` layout that is stored (`1.0` for an
    /// empty shape, mirroring `FeatureBlock::occupancy`).
    pub fn occupancy(&self) -> f64 {
        let dense = self.rows() * self.cols;
        if dense == 0 {
            return 1.0;
        }
        self.nnz() as f64 / dense as f64
    }

    /// Row `r` as `(indices, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Expands to a dense matrix (tests and oracles).
    pub fn to_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols);
        for r in 0..self.rows() {
            let (idx, vals) = self.row(r);
            let row = m.row_mut(r);
            for (&j, &v) in idx.iter().zip(vals.iter()) {
                row[j as usize] = v;
            }
        }
        m
    }
}

#[inline]
fn check_row(idx: &[u32], vals: &[f64], bound: usize, what: &str) {
    assert_eq!(idx.len(), vals.len(), "{what}: index/value length mismatch");
    for &i in idx {
        assert!(
            (i as usize) < bound,
            "{what}: index {i} out of range for width {bound}"
        );
    }
}

// ---------------------------------------------------------------------------
// Gathers (products that READ selected rows/columns, weighted)
// ---------------------------------------------------------------------------

/// `x · v = Σ_t vals[t] · v[idx[t]]` — the weighted counterpart of
/// [`crate::sparse::gather_sum`].
///
/// Runs through [`simd::gather_dot`]: the bit-exact levels keep the strictly
/// sequential accumulation the exactness contract requires; the opt-in FMA
/// level vectorizes the gather (tolerance-equal).
#[inline]
pub fn gather_dot(v: &[f64], idx: &[u32], vals: &[f64]) -> f64 {
    count_call();
    simd::gather_dot(simd::current_level(), v, idx, vals)
}

/// `y = A · x` for sparse `x`, under the default policy.
pub fn matvec_csr(a: &Matrix, idx: &[u32], vals: &[f64]) -> Vec<f64> {
    matvec_csr_with(policy::default_policy(), a, idx, vals)
}

/// [`matvec_csr`] under an explicit policy: each output element sums its row's
/// selected entries scaled by the matching values, in ascending index order —
/// the exact nonzero subsequence of the naive dense GEMV.  The parallel policy
/// splits the (disjoint) output rows into bands.
pub fn matvec_csr_with(policy: KernelPolicy, a: &Matrix, idx: &[u32], vals: &[f64]) -> Vec<f64> {
    check_row(idx, vals, a.cols(), "matvec_csr");
    count_call();
    let mut y = vec![0.0; a.rows()];
    let par = policy.is_parallel() && a.rows() * idx.len() >= PAR_MIN_OPS;
    let lv = simd::current_level();
    policy::par_row_bands(par, &mut y, 1, 8, |first_row, band| {
        for (i, yi) in band.iter_mut().enumerate() {
            *yi = simd::gather_dot(lv, a.row(first_row + i), idx, vals);
        }
    });
    y
}

/// `y = Aᵀ · x` for sparse `x`, under the default policy.
pub fn matvec_transposed_csr(a: &Matrix, idx: &[u32], vals: &[f64]) -> Vec<f64> {
    matvec_transposed_csr_with(policy::default_policy(), a, idx, vals)
}

/// [`matvec_transposed_csr`] under an explicit policy: `Σ_t vals[t]·A.row(idx[t])`,
/// added front-to-back in index order — the naive dense transposed GEMV with
/// the zero AXPYs skipped.  The reduction is `nnz` AXPYs, far below any useful
/// parallel threshold, so every policy runs the same sequential loop.
pub fn matvec_transposed_csr_with(
    _policy: KernelPolicy,
    a: &Matrix,
    idx: &[u32],
    vals: &[f64],
) -> Vec<f64> {
    check_row(idx, vals, a.rows(), "matvec_transposed_csr");
    count_call();
    let lv = simd::current_level();
    let mut y = vec![0.0; a.cols()];
    for (&i, &w) in idx.iter().zip(vals.iter()) {
        simd::axpy(lv, w, a.row(i as usize), &mut y);
    }
    y
}

/// CSR × dense product `C += X · B`, under the default policy.
pub fn spmm_csr(x: &CsrBlock, b: &Matrix, c: &mut Matrix) {
    spmm_csr_with(policy::default_policy(), x, b, c);
}

/// [`spmm_csr`] under an explicit policy: each output row of `C` accumulates
/// `vals[t] · B.row(idx[t])` in ascending index order — the exact nonzero
/// subsequence of the naive dense GEMM's `i`-`k`-`j` loop.  Output rows are
/// disjoint, so the parallel policy splits them into bands without changing
/// any result.
///
/// # Panics
/// Panics when the shapes disagree (`x.rows() == c.rows()`,
/// `x.cols() == b.rows()`, `b.cols() == c.cols()`).
pub fn spmm_csr_with(policy: KernelPolicy, x: &CsrBlock, b: &Matrix, c: &mut Matrix) {
    assert_eq!(x.rows(), c.rows(), "spmm_csr: output rows mismatch");
    assert_eq!(x.cols(), b.rows(), "spmm_csr: inner dimension mismatch");
    assert_eq!(b.cols(), c.cols(), "spmm_csr: output cols mismatch");
    count_call();
    let n = b.cols();
    if x.rows() == 0 || n == 0 {
        return;
    }
    let par = policy.is_parallel() && x.nnz() * n >= PAR_MIN_OPS;
    let lv = simd::current_level();
    policy::par_row_bands(par, c.as_mut_slice(), n, 8, |first_row, band| {
        for (r, crow) in band.chunks_exact_mut(n).enumerate() {
            let (idx, vals) = x.row(first_row + r);
            for (&k, &w) in idx.iter().zip(vals.iter()) {
                simd::axpy(lv, w, b.row(k as usize), crow);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Scatters (rank-1 updates that WRITE selected rows/columns, weighted)
// ---------------------------------------------------------------------------

/// `A += alpha · x yᵀ` for sparse `x`, under the default policy.
pub fn ger_csr(alpha: f64, idx: &[u32], vals: &[f64], y: &[f64], a: &mut Matrix) {
    ger_csr_with(policy::default_policy(), alpha, idx, vals, y, a);
}

/// [`ger_csr`] under an explicit policy: adds `(alpha·vals[t]) · y` to row
/// `idx[t]` — the naive dense GER restricted to the nonzero rows, same scaling
/// order (`alpha * x_i` first, then times `y_j`).  The touched row set is
/// tiny, so every policy runs the same sequential loop.
pub fn ger_csr_with(
    _policy: KernelPolicy,
    alpha: f64,
    idx: &[u32],
    vals: &[f64],
    y: &[f64],
    a: &mut Matrix,
) {
    assert_eq!(a.cols(), y.len(), "ger_csr: col dimension mismatch");
    check_row(idx, vals, a.rows(), "ger_csr");
    count_call();
    let lv = simd::current_level();
    for (&i, &w) in idx.iter().zip(vals.iter()) {
        simd::axpy(lv, alpha * w, y, a.row_mut(i as usize));
    }
}

/// `A += alpha · x yᵀ` for sparse `y`, under the default policy — the
/// first-layer gradient scatter of the NN trainers for weighted-sparse inputs.
pub fn ger_csr_cols(alpha: f64, x: &[f64], idx: &[u32], vals: &[f64], a: &mut Matrix) {
    ger_csr_cols_with(policy::default_policy(), alpha, x, idx, vals, a);
}

/// [`ger_csr_cols`] under an explicit policy: row `i` receives
/// `(alpha·x[i])·vals[t]` at column `idx[t]` — the naive dense GER's
/// `row[j] += s·y[j]` with the zero columns skipped.  Output rows are
/// disjoint; the parallel policy splits them into bands.
pub fn ger_csr_cols_with(
    policy: KernelPolicy,
    alpha: f64,
    x: &[f64],
    idx: &[u32],
    vals: &[f64],
    a: &mut Matrix,
) {
    assert_eq!(a.rows(), x.len(), "ger_csr_cols: row dimension mismatch");
    check_row(idx, vals, a.cols(), "ger_csr_cols");
    count_call();
    let cols = a.cols();
    if cols == 0 || x.is_empty() {
        return;
    }
    let par = policy.is_parallel() && x.len() * idx.len() >= PAR_MIN_OPS;
    policy::par_row_bands(par, a.as_mut_slice(), cols, 8, |first_row, band| {
        for (i, row) in band.chunks_exact_mut(cols).enumerate() {
            let s = alpha * x[first_row + i];
            for (&j, &w) in idx.iter().zip(vals.iter()) {
                row[j as usize] += s * w;
            }
        }
    });
}

/// `A[i][j] += alpha · x_i · y_j` over the nonzero index pairs — the outer
/// product of two sparse rows, scattered directly into the accumulator with
/// the dense GER's scaling order (`s = alpha·x_i`, then `s·y_j`).
pub fn scatter_csr_pair(
    alpha: f64,
    rows_idx: &[u32],
    rows_vals: &[f64],
    cols_idx: &[u32],
    cols_vals: &[f64],
    a: &mut Matrix,
) {
    check_row(rows_idx, rows_vals, a.rows(), "scatter_csr_pair rows");
    check_row(cols_idx, cols_vals, a.cols(), "scatter_csr_pair cols");
    count_call();
    for (&i, &xi) in rows_idx.iter().zip(rows_vals.iter()) {
        let row = a.row_mut(i as usize);
        let s = alpha * xi;
        for (&j, &yj) in cols_idx.iter().zip(cols_vals.iter()) {
            row[j as usize] += s * yj;
        }
    }
}

/// `x[idx[t]] += alpha · vals[t]` — AXPY with a sparse right-hand side.
/// Runs through [`simd::scatter_axpy`] (scalar at the bit-exact levels, fused
/// multiply-adds in FMA mode).
pub fn axpy_csr(alpha: f64, idx: &[u32], vals: &[f64], x: &mut [f64]) {
    check_row(idx, vals, x.len(), "axpy_csr");
    count_call();
    simd::scatter_axpy(simd::current_level(), alpha, idx, vals, x);
}

// ---------------------------------------------------------------------------
// Quadratic forms
// ---------------------------------------------------------------------------

/// `xᵀ A y` for sparse `x` and dense `y`, under the default policy.
pub fn quadratic_form_csr(idx: &[u32], vals: &[f64], a: &Matrix, y: &[f64]) -> f64 {
    quadratic_form_csr_with(policy::default_policy(), idx, vals, a, y)
}

/// [`quadratic_form_csr`] under an explicit policy:
/// `Σ_t vals[t]·(A.row(idx[t])·y)` in ascending index order — exactly the
/// naive dense form, which already skips zero entries of `x`.  `nnz` dot
/// products stay below any parallel threshold, so every policy runs
/// sequentially.
pub fn quadratic_form_csr_with(
    _policy: KernelPolicy,
    idx: &[u32],
    vals: &[f64],
    a: &Matrix,
    y: &[f64],
) -> f64 {
    assert_eq!(a.cols(), y.len(), "quadratic_form_csr: col mismatch");
    check_row(idx, vals, a.rows(), "quadratic_form_csr");
    count_call();
    let lv = simd::current_level();
    let mut acc = 0.0;
    for (&i, &w) in idx.iter().zip(vals.iter()) {
        // The bit contract pins this to the naive oracle's `vector::dot`
        // (strictly sequential); only the opt-in FMA level may diverge, where
        // the wide fused dot takes over.
        let row_dot = if lv == simd::SimdLevel::LanesFma {
            simd::dot(lv, a.row(i as usize), y)
        } else {
            vector::dot(a.row(i as usize), y)
        };
        acc += w * row_dot;
    }
    acc
}

/// `xᵀ A y` for sparse `x` **and** sparse `y`:
/// `Σ_t vals[t] · (Σ_u A[i_t][j_u]·yvals[u])` — `nnz_x · nnz_y` multiply-adds.
pub fn quadratic_form_csr_pair(
    rows_idx: &[u32],
    rows_vals: &[f64],
    a: &Matrix,
    cols_idx: &[u32],
    cols_vals: &[f64],
) -> f64 {
    check_row(
        rows_idx,
        rows_vals,
        a.rows(),
        "quadratic_form_csr_pair rows",
    );
    check_row(
        cols_idx,
        cols_vals,
        a.cols(),
        "quadratic_form_csr_pair cols",
    );
    count_call();
    // The inner sum is itself a gather: `Σ_u A[i][j_u]·yvals[u]`.  Routing it
    // through the SIMD layer keeps sequential bits at the exact levels and
    // vectorizes the gather−µᵀw cross terms of the factorized GMM in FMA mode.
    let lv = simd::current_level();
    let mut acc = 0.0;
    for (&i, &xi) in rows_idx.iter().zip(rows_vals.iter()) {
        let inner = simd::gather_dot(lv, a.row(i as usize), cols_idx, cols_vals);
        acc += xi * inner;
    }
    acc
}

/// Work threshold below which the parallel policy stays on one thread (same
/// role as the one in [`crate::sparse`]).
const PAR_MIN_OPS: usize = 1 << 18;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm;

    fn pseudo(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut rng = crate::testutil::TestRng::new(salt);
        Matrix::from_vec(rows, cols, rng.vec_in(rows * cols, -1.0, 1.0))
    }

    fn densify(idx: &[u32], vals: &[f64], width: usize) -> Vec<f64> {
        let mut v = vec![0.0; width];
        for (&i, &w) in idx.iter().zip(vals.iter()) {
            v[i as usize] = w;
        }
        v
    }

    #[test]
    fn detection_accepts_sparse_and_rejects_dense() {
        // 2 nonzeros of 8 (25%) qualifies exactly at the cutoff
        let x = [0.0, 1.5, 0.0, 0.0, -0.3, 0.0, 0.0, 0.0];
        assert_eq!(csr_indices(&x), Some((vec![1, 4], vec![1.5, -0.3])));
        // 3 of 8 is too dense
        assert_eq!(csr_indices(&[1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0]), None);
        // all-zero slices qualify (empty row)
        assert_eq!(csr_indices(&[0.0; 4]), Some((vec![], vec![])));
        assert_eq!(csr_indices(&[]), Some((vec![], vec![])));
        // short slices where the cutoff rounds to zero reject any nonzero
        assert_eq!(csr_indices(&[1.0, 0.0]), None);
    }

    #[test]
    fn csr_block_geometry_and_round_trip() {
        let m = Matrix::from_rows(&[
            vec![0.0, 2.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![-1.0, 0.0, 0.0, 0.5],
        ]);
        let b = CsrBlock::from_dense(&m);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.cols(), 4);
        assert_eq!(b.nnz(), 3);
        assert_eq!(b.occupancy(), 0.25);
        assert_eq!(b.row(0), (&[1u32][..], &[2.0][..]));
        assert_eq!(b.row(1), (&[][..], &[][..]));
        assert_eq!(b.to_matrix(), m);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn csr_block_rejects_unsorted_rows() {
        CsrBlock::new(vec![1.0, 2.0], vec![3, 1], vec![0, 2], 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn csr_block_rejects_out_of_range_index() {
        CsrBlock::new(vec![1.0], vec![4], vec![0, 1], 4);
    }

    #[test]
    fn gathers_match_dense_naive() {
        let a = pseudo(9, 7, 1);
        let idx = [1u32, 4, 6];
        let vals = [0.5, -2.0, 1.25];
        let x = densify(&idx, &vals, 7);
        let xr = densify(&idx, &vals, 9);
        for p in KernelPolicy::ALL {
            let dense = gemm::matvec_with(KernelPolicy::Naive, &a, &x);
            assert_eq!(matvec_csr_with(p, &a, &idx, &vals), dense, "{p}");
            let dense_t = gemm::matvec_transposed_with(KernelPolicy::Naive, &a, &xr);
            assert_eq!(
                matvec_transposed_csr_with(p, &a, &idx, &vals),
                dense_t,
                "{p}"
            );
        }
        assert_eq!(gather_dot(&[1.0, 2.0, 3.0], &[0, 2], &[2.0, -1.0]), -1.0);
    }

    #[test]
    fn spmm_matches_dense_naive() {
        let b = pseudo(9, 5, 2);
        let mut dense_x = Matrix::zeros(4, 9);
        dense_x[(0, 3)] = 1.5;
        dense_x[(0, 7)] = -0.25;
        // row 1 empty
        dense_x[(2, 0)] = 2.0;
        dense_x[(3, 8)] = -3.0;
        let x = CsrBlock::from_dense(&dense_x);
        let seed = pseudo(4, 5, 3);
        let mut reference = seed.clone();
        gemm::matmul_acc_with(KernelPolicy::Naive, &dense_x, &b, &mut reference);
        for p in KernelPolicy::ALL {
            let mut c = seed.clone();
            spmm_csr_with(p, &x, &b, &mut c);
            assert_eq!(c, reference, "{p}");
        }
    }

    #[test]
    fn scatters_match_dense_naive() {
        let idx = [2u32, 5];
        let vals = [1.5, -0.5];
        let y = crate::testutil::TestRng::new(3).vec_in(6, -1.0, 1.0);
        let x_rows = densify(&idx, &vals, 8);
        for p in KernelPolicy::ALL {
            let mut dense = pseudo(8, 6, 4);
            let mut sparse = dense.clone();
            gemm::ger_with(KernelPolicy::Naive, 0.7, &x_rows, &y, &mut dense);
            ger_csr_with(p, 0.7, &idx, &vals, &y, &mut sparse);
            assert_eq!(dense, sparse, "{p}");
        }
        let x = crate::testutil::TestRng::new(5).vec_in(8, -1.0, 1.0);
        let ycols = densify(&idx, &vals, 6);
        for p in KernelPolicy::ALL {
            let mut dense = pseudo(8, 6, 6);
            let mut sparse = dense.clone();
            gemm::ger_with(KernelPolicy::Naive, -1.3, &x, &ycols, &mut dense);
            ger_csr_cols_with(p, -1.3, &x, &idx, &vals, &mut sparse);
            assert_eq!(dense, sparse, "{p}");
        }
    }

    #[test]
    fn pair_scatter_and_axpy_match_dense() {
        let ridx = [1u32, 3];
        let rvals = [2.0, -1.0];
        let cidx = [0u32, 2];
        let cvals = [0.5, 4.0];
        let xr = densify(&ridx, &rvals, 4);
        let yc = densify(&cidx, &cvals, 4);
        let mut dense = pseudo(4, 4, 7);
        let mut sparse = dense.clone();
        gemm::ger_with(KernelPolicy::Naive, 0.5, &xr, &yc, &mut dense);
        scatter_csr_pair(0.5, &ridx, &rvals, &cidx, &cvals, &mut sparse);
        assert_eq!(dense, sparse);

        let mut v = vec![1.0; 4];
        let mut dense_v = v.clone();
        axpy_csr(2.0, &cidx, &cvals, &mut v);
        vector::axpy(2.0, &yc, &mut dense_v);
        assert_eq!(v, dense_v);
    }

    #[test]
    fn quadratic_forms_match_dense_naive() {
        let a = pseudo(7, 7, 8);
        let idx = [0u32, 2, 6];
        let vals = [1.1, -0.4, 2.5];
        let x = densify(&idx, &vals, 7);
        let y = crate::testutil::TestRng::new(9).vec_in(7, -1.0, 1.0);
        let dense = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &y);
        for p in KernelPolicy::ALL {
            assert_eq!(
                quadratic_form_csr_with(p, &idx, &vals, &a, &y),
                dense,
                "{p}"
            );
        }
        let jdx = [1u32, 5];
        let jvals = [3.0, -0.25];
        let yj = densify(&jdx, &jvals, 7);
        let dense_pair = gemm::quadratic_form_with(KernelPolicy::Naive, &x, &a, &yj);
        let sparse_pair = quadratic_form_csr_pair(&idx, &vals, &a, &jdx, &jvals);
        assert_eq!(dense_pair, sparse_pair);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let a = pseudo(4, 4, 10);
        assert_eq!(matvec_csr(&a, &[], &[]), vec![0.0; 4]);
        assert_eq!(matvec_transposed_csr(&a, &[], &[]), vec![0.0; 4]);
        assert_eq!(quadratic_form_csr(&[], &[], &a, &[0.0; 4]), 0.0);
        let empty = CsrBlock::new(vec![], vec![], vec![0, 0], 4);
        assert_eq!(empty.rows(), 1);
        let mut c = Matrix::zeros(1, 4);
        spmm_csr(&empty, &a, &mut c);
        assert_eq!(c, Matrix::zeros(1, 4));
        let mut m = pseudo(4, 4, 11);
        let before = m.clone();
        ger_csr(1.0, &[], &[], &[0.0; 4], &mut m);
        ger_csr_cols(1.0, &[0.0; 4], &[], &[], &mut m);
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let a = Matrix::zeros(3, 3);
        let _ = matvec_csr(&a, &[3], &[1.0]);
    }

    #[test]
    fn kernel_counter_is_monotonic() {
        let before = csr_kernel_calls();
        let _ = gather_dot(&[1.0], &[0], &[2.0]);
        assert!(csr_kernel_calls() > before);
    }
}
