//! Matrix product kernels: GEMM, GEMV, rank-1 (GER) updates and quadratic
//! forms, each implemented under every [`KernelPolicy`].
//!
//! Three implementations back every entry point:
//!
//! * **naive** — the reference triple loops with the inner loop running along
//!   contiguous row-major memory and strictly sequential accumulation.
//! * **blocked** — BLIS-style cache tiling.  `C += A·B` is decomposed into
//!   `NC`-column × `KC`-depth panels of `B` and `MC`-row panels of `A`, both
//!   packed into contiguous buffers, and the innermost computation is a
//!   register-blocked `MR×NR` micro-kernel that holds a `4×8` accumulator tile
//!   in registers and streams packed panels with unit stride.  Vector kernels
//!   (GEMV, quadratic forms) use 4-way unrolled dot products for instruction-
//!   level parallelism.
//! * **parallel** — the blocked kernels with the output rows split into bands
//!   aligned to the `MR` register tile and fanned out over scoped threads
//!   ([`crate::policy::par_row_bands`]).  Because band boundaries are aligned
//!   to the register tile and reductions are merged in fixed chunk order, the
//!   parallel results are bit-identical to the single-threaded blocked results
//!   for output-disjoint kernels (GEMM, GEMV, GER) and tolerance-identical for
//!   scalar reductions.
//!
//! ### Tiling parameters
//!
//! | constant | value | role |
//! |----------|-------|------|
//! | `MR`     | 4     | micro-kernel rows (A panel interleave) |
//! | `NR`     | 8     | micro-kernel columns (B panel interleave) |
//! | `KC`     | 256   | depth of packed panels (L1/L2 resident) |
//! | `MC`     | 64    | rows of A packed per macro block |
//! | `NC`     | 512   | columns of B packed per macro block |
//!
//! The non-`_with` entry points dispatch on [`crate::policy::default_policy`];
//! `_with` variants take an explicit policy, which the training crates thread
//! through from their configs.
//!
//! ### SIMD
//!
//! The blocked/parallel inner loops (micro-kernel, dot products, row AXPYs)
//! run through the explicit `f64x4` layer in [`crate::simd`]: each kernel
//! reads [`crate::simd::current_level`] **once at entry** and passes it into
//! its banded closures, so every band of a parallel fan-out computes with the
//! same arithmetic.  The default level is bit-identical to the scalar
//! fallback, so the cross-policy bit contracts above are unaffected by SIMD
//! being on or off; the `Naive` policy never routes through the SIMD layer at
//! all — it stays the strictly sequential oracle.  Parallel dispatch degrades
//! to `Blocked` below [`policy::PAR_MIN_FLOPS`]
//! (or [`policy::GER_PAR_MIN_FLOPS`] for the bandwidth-bound rank-1 update)
//! via [`policy::effective_policy`], so small shapes never pay fan-out
//! bookkeeping.

use crate::matrix::Matrix;
use crate::policy::{self, KernelPolicy};
use crate::simd::{self, SimdLevel};
use crate::vector;

/// Micro-kernel rows.
pub const MR: usize = 4;
/// Micro-kernel columns.
pub const NR: usize = 8;
/// Packed panel depth.
pub const KC: usize = 256;
/// Rows of `A` packed per macro block.
pub const MC: usize = 64;
/// Columns of `B` packed per macro block.
pub const NC: usize = 512;

use policy::{GER_PAR_MIN_FLOPS, PAR_MIN_FLOPS};

// ---------------------------------------------------------------------------
// Kernel invocation accounting (fml-obs)
// ---------------------------------------------------------------------------

static GEMM_CALLS: fml_obs::LazyCounter = fml_obs::LazyCounter::new("fml_gemm_calls_total");
static GEMV_CALLS: fml_obs::LazyCounter = fml_obs::LazyCounter::new("fml_gemv_calls_total");
static GER_CALLS: fml_obs::LazyCounter = fml_obs::LazyCounter::new("fml_ger_calls_total");
static KERNEL_FLOPS: fml_obs::LazyCounter = fml_obs::LazyCounter::new("fml_kernel_flops_total");

/// Records one kernel invocation and its nominal FLOP count (`2·m·n·k`-style,
/// counting multiply+add) into the registry.  Gated on the single relaxed
/// `metrics_enabled` load, so `FML_OBS=off` pays a few nanoseconds per kernel
/// *entry* (never per element) and records nothing.
#[inline]
fn record_kernel(calls: &'static fml_obs::LazyCounter, flops: usize) {
    if fml_obs::metrics_enabled() {
        calls.get().inc();
        KERNEL_FLOPS.get().add(flops as u64);
    }
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// `C = A · B` for dense matrices, under the default policy.
///
/// # Panics
/// Panics when `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    matmul_with(policy::default_policy(), a, b)
}

/// `C = A · B` under an explicit policy.
pub fn matmul_with(policy: KernelPolicy, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not agree ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_acc_with(policy, a, b, &mut c);
    c
}

/// `C += A · B`, writing into an existing output matrix (no allocation), under
/// the default policy.
pub fn matmul_acc(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_acc_with(policy::default_policy(), a, b, c);
}

/// `C += A · B` under an explicit policy.
pub fn matmul_acc_with(policy: KernelPolicy, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul_acc: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "matmul_acc: output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "matmul_acc: output cols mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    record_kernel(&GEMM_CALLS, 2 * m * n * k);
    match policy::effective_policy(policy, 2 * m * n * k, PAR_MIN_FLOPS) {
        KernelPolicy::Naive => naive_matmul_acc(a, b, c),
        KernelPolicy::Blocked => {
            let lv = simd::current_level();
            blocked_matmul_rows(a.as_slice(), k, 0, b.as_slice(), n, c.as_mut_slice(), lv)
        }
        KernelPolicy::BlockedParallel => {
            let parallel = m >= 2 * MR;
            let lv = simd::current_level();
            let (a_s, b_s) = (a.as_slice(), b.as_slice());
            policy::par_row_bands(parallel, c.as_mut_slice(), n, MR, |first_row, band| {
                blocked_matmul_rows(a_s, k, first_row, b_s, n, band, lv);
            });
        }
    }
}

/// `C = A · B` into a pre-zeroed output, under the default policy.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    c.fill_zero();
    matmul_acc(a, b, c);
}

/// Reference triple loop (`i`-`k`-`j` order, output row borrow hoisted out of
/// the `k` loop, no zero-skip — the dense path must not branch per element).
fn naive_matmul_acc(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let n = b.cols();
    for i in 0..a.rows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (k, &aik) in arow.iter().enumerate() {
            let brow = b.row(k);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// `C += A · B` skipping zero entries of `A` — profitable only when `A`'s rows
/// are sparse (e.g. one-hot encoded categorical blocks), where most `aik` skip
/// the whole inner loop.  Dense inputs should use [`matmul_acc`]: the per-entry
/// branch costs more than it saves.  Runs under the default policy; purely
/// one-hot blocks should prefer [`crate::sparse::spmm_onehot`], which skips the
/// per-entry scan entirely.
pub fn matmul_acc_sparse(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    matmul_acc_sparse_with(policy::default_policy(), a, b, c);
}

/// [`matmul_acc_sparse`] under an explicit policy.
///
/// All policies run the same zero-skipping row loop (the skip *is* the
/// optimization — cache tiling would re-densify the traversal); the parallel
/// policy fans the disjoint output rows over [`policy::par_row_bands`] with the
/// same per-row arithmetic, so every policy produces identical bits.
pub fn matmul_acc_sparse_with(policy: KernelPolicy, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_acc_sparse: inner dimension mismatch"
    );
    assert_eq!(
        c.rows(),
        a.rows(),
        "matmul_acc_sparse: output rows mismatch"
    );
    assert_eq!(
        c.cols(),
        b.cols(),
        "matmul_acc_sparse: output cols mismatch"
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    record_kernel(&GEMM_CALLS, 2 * m * n * k);
    // The flop estimate assumes dense inputs; genuinely sparse inputs do less
    // work per row, which only makes staying inline more attractive.
    let parallel = policy.is_parallel() && 2 * m * n * k >= PAR_MIN_FLOPS;
    policy::par_row_bands(parallel, c.as_mut_slice(), n, 1, |first_row, band| {
        for (i, crow) in band.chunks_exact_mut(n).enumerate() {
            let arow = a.row(first_row + i);
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(kk);
                for (dst, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *dst += aik * bv;
                }
            }
        }
    });
}

/// Packs the `KC×NR` panel of `B` starting at `(kc, j0)` into k-major order.
fn pack_b_panel(b: &[f64], n: usize, kc: usize, kb: usize, j0: usize, out: &mut [f64]) {
    for (kk, chunk) in out[..kb * NR].chunks_exact_mut(NR).enumerate() {
        let base = (kc + kk) * n + j0;
        chunk.copy_from_slice(&b[base..base + NR]);
    }
}

/// Packs the `MR×KC` panel of `A` rows `i0..i0+MR` (absolute), cols
/// `kc..kc+kb`, into k-major interleaved order (`out[kk*MR + r]`).
fn pack_a_panel(a: &[f64], lda: usize, i0: usize, kc: usize, kb: usize, out: &mut [f64]) {
    for r in 0..MR {
        let base = (i0 + r) * lda + kc;
        let arow = &a[base..base + kb];
        for (kk, &v) in arow.iter().enumerate() {
            out[kk * MR + r] = v;
        }
    }
}

/// Blocked `C_band += A[rows] · B` where `c_band` holds the rows of `C`
/// starting at absolute row `row0` (the parallel driver hands each thread a
/// disjoint, `MR`-aligned band).  Per-element accumulation order depends only
/// on `(k, n)` tiling — never on the banding — so any row split produces bits
/// identical to the single-band call.  The `MR×NR` micro-kernel is
/// [`simd::microkernel`] at the level `lv` the caller captured at entry.
fn blocked_matmul_rows(
    a: &[f64],
    k: usize,
    row0: usize,
    b: &[f64],
    n: usize,
    c_band: &mut [f64],
    lv: SimdLevel,
) {
    let m = c_band.len() / n;
    let mut pa = vec![0.0f64; MC.min(m.next_multiple_of(MR)) * KC.min(k)];
    let mut pb = vec![0.0f64; KC.min(k) * NC.min(n.next_multiple_of(NR))];
    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let n_full = nc / NR * NR;
        let mut kc = 0;
        while kc < k {
            let kb = KC.min(k - kc);
            // pack the NR-wide panels of B for this (kc, jc) block
            let mut j0 = 0;
            while j0 < n_full {
                pack_b_panel(b, n, kc, kb, jc + j0, &mut pb[j0 * kb..(j0 + NR) * kb]);
                j0 += NR;
            }
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                let m_full = mc / MR * MR;
                let mut i0 = 0;
                while i0 < m_full {
                    pack_a_panel(
                        a,
                        k,
                        row0 + ic + i0,
                        kc,
                        kb,
                        &mut pa[i0 * kb..(i0 + MR) * kb],
                    );
                    i0 += MR;
                }
                let mut i0 = 0;
                while i0 < m_full {
                    let pa_panel = &pa[i0 * kb..(i0 + MR) * kb];
                    let mut j0 = 0;
                    while j0 < n_full {
                        simd::microkernel(
                            lv,
                            pa_panel,
                            &pb[j0 * kb..(j0 + NR) * kb],
                            kb,
                            c_band,
                            n,
                            ic + i0,
                            jc + j0,
                        );
                        j0 += NR;
                    }
                    // j remainder: per-row dot accumulation over this k block
                    for j in jc + n_full..jc + nc {
                        for r in 0..MR {
                            let ai = row0 + ic + i0 + r;
                            let arow = &a[ai * k + kc..ai * k + kc + kb];
                            let mut s = 0.0;
                            for (kk, &av) in arow.iter().enumerate() {
                                s += av * b[(kc + kk) * n + j];
                            }
                            c_band[(ic + i0 + r) * n + j] += s;
                        }
                    }
                    i0 += MR;
                }
                // i remainder: plain axpy rows (only the final rows of C)
                for i in m_full..mc {
                    let ai = row0 + ic + i;
                    let arow = &a[ai * k + kc..ai * k + kc + kb];
                    for (kk, &aik) in arow.iter().enumerate() {
                        let brow = &b[(kc + kk) * n + jc..(kc + kk) * n + jc + nc];
                        let crow = &mut c_band[(ic + i) * n + jc..(ic + i) * n + jc + nc];
                        simd::axpy(lv, aik, brow, crow);
                    }
                }
                ic += mc;
            }
            kc += kb;
        }
        jc += nc;
    }
}

// ---------------------------------------------------------------------------
// GEMV
// ---------------------------------------------------------------------------

/// `y = A · x` (matrix-vector product) under the default policy.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    matvec_with(policy::default_policy(), a, x)
}

/// `y = A · x` under an explicit policy.
pub fn matvec_with(policy: KernelPolicy, a: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; a.rows()];
    matvec_into_with(policy, a, x, &mut y);
    y
}

/// `y = A · x` into an existing buffer, under the default policy.
pub fn matvec_into(a: &Matrix, x: &[f64], y: &mut [f64]) {
    matvec_into_with(policy::default_policy(), a, x, y);
}

/// `y = A · x` into an existing buffer, under an explicit policy.
pub fn matvec_into_with(policy: KernelPolicy, a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "matvec_into: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_into: output dimension mismatch");
    record_kernel(&GEMV_CALLS, 2 * a.rows() * a.cols());
    match policy::effective_policy(policy, 2 * a.rows() * a.cols(), PAR_MIN_FLOPS) {
        KernelPolicy::Naive => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = vector::dot(a.row(i), x);
            }
        }
        KernelPolicy::Blocked => {
            let lv = simd::current_level();
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = simd::dot(lv, a.row(i), x);
            }
        }
        KernelPolicy::BlockedParallel => {
            let lv = simd::current_level();
            policy::par_row_bands(true, y, 1, 8, |first_row, band| {
                for (i, yi) in band.iter_mut().enumerate() {
                    *yi = simd::dot(lv, a.row(first_row + i), x);
                }
            });
        }
    }
}

/// `y += A · x` into an existing buffer, under the default policy.
pub fn matvec_acc(a: &Matrix, x: &[f64], y: &mut [f64]) {
    matvec_acc_with(policy::default_policy(), a, x, y);
}

/// `y += A · x` under an explicit policy.
pub fn matvec_acc_with(policy: KernelPolicy, a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "matvec_acc: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_acc: output dimension mismatch");
    record_kernel(&GEMV_CALLS, 2 * a.rows() * a.cols());
    match policy {
        KernelPolicy::Naive => {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += vector::dot(a.row(i), x);
            }
        }
        _ => {
            let lv = simd::current_level();
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += simd::dot(lv, a.row(i), x);
            }
        }
    }
}

/// `y = Aᵀ · x` without materializing the transpose, under the default policy.
pub fn matvec_transposed(a: &Matrix, x: &[f64]) -> Vec<f64> {
    matvec_transposed_with(policy::default_policy(), a, x)
}

/// `y = Aᵀ · x` under an explicit policy.
///
/// The parallel path gives each thread a chunk of `A`'s **rows**, accumulates a
/// private output vector, and merges the partials front-to-back (fixed
/// reduction order) — the per-element result groups additions by chunk but
/// never reorders within a chunk.
pub fn matvec_transposed_with(policy: KernelPolicy, a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "matvec_transposed: dimension mismatch");
    let cols = a.cols();
    record_kernel(&GEMV_CALLS, 2 * a.rows() * cols);
    match policy::effective_policy(policy, 2 * a.rows() * cols, PAR_MIN_FLOPS) {
        KernelPolicy::Naive => {
            let mut y = vec![0.0; cols];
            for (i, &xi) in x.iter().enumerate() {
                vector::axpy(xi, a.row(i), &mut y);
            }
            y
        }
        KernelPolicy::Blocked => {
            let lv = simd::current_level();
            let mut y = vec![0.0; cols];
            for (i, &xi) in x.iter().enumerate() {
                simd::axpy(lv, xi, a.row(i), &mut y);
            }
            y
        }
        KernelPolicy::BlockedParallel => {
            let lv = simd::current_level();
            let partials = policy::par_chunks(true, a.rows(), 8, |range| {
                let mut part = vec![0.0; cols];
                for i in range {
                    simd::axpy(lv, x[i], a.row(i), &mut part);
                }
                part
            });
            let mut y = vec![0.0; cols];
            for part in partials {
                simd::add_assign(lv, &mut y, &part);
            }
            y
        }
    }
}

// ---------------------------------------------------------------------------
// Rank-1 updates and quadratic forms
// ---------------------------------------------------------------------------

/// Rank-1 update `A += alpha * x yᵀ` (BLAS GER), under the default policy.
///
/// Used to accumulate NN weight gradients `∂E/∂W += δ · xᵀ` and GMM scatter
/// contributions `γ (x−µ)(x−µ)ᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    ger_with(policy::default_policy(), alpha, x, y, a);
}

/// Rank-1 update under an explicit policy.
///
/// GER does 2 flops per element it reads *and* writes, so it is
/// memory-bandwidth-bound; parallel dispatch uses the much higher
/// [`policy::GER_PAR_MIN_FLOPS`] cutoff — below it, extra threads only
/// contend for the bus and the parallel policy degrades to the blocked
/// (bit-identical) row loop.
pub fn ger_with(policy: KernelPolicy, alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len(), "ger: row dimension mismatch");
    assert_eq!(a.cols(), y.len(), "ger: col dimension mismatch");
    let cols = a.cols();
    record_kernel(&GER_CALLS, 2 * x.len() * cols);
    match policy::effective_policy(policy, 2 * x.len() * cols, GER_PAR_MIN_FLOPS) {
        KernelPolicy::Naive => {
            // The reference path is branch-free: one AXPY per row.
            for (i, &xi) in x.iter().enumerate() {
                vector::axpy(alpha * xi, y, a.row_mut(i));
            }
        }
        KernelPolicy::Blocked => {
            let lv = simd::current_level();
            for (i, &xi) in x.iter().enumerate() {
                simd::axpy(lv, alpha * xi, y, a.row_mut(i));
            }
        }
        KernelPolicy::BlockedParallel => {
            let lv = simd::current_level();
            policy::par_row_bands(true, a.as_mut_slice(), cols, MR, |first_row, band| {
                for (i, row) in band.chunks_exact_mut(cols).enumerate() {
                    simd::axpy(lv, alpha * x[first_row + i], y, row);
                }
            });
        }
    }
}

/// Rank-1 update skipping zero entries of `x` — for sparse/one-hot `x` (e.g.
/// one-hot categorical feature blocks), where the skip avoids whole-row AXPYs.
/// Dense callers should use [`ger`]; callers that already hold index form
/// should use [`crate::sparse::ger_onehot`].  Runs under the default policy.
pub fn ger_sparse(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    ger_sparse_with(policy::default_policy(), alpha, x, y, a);
}

/// [`ger_sparse`] under an explicit policy: the zero-skipping row loop, with
/// the parallel policy fanning the disjoint output rows over
/// [`policy::par_row_bands`].  Identical bits under every policy.
pub fn ger_sparse_with(policy: KernelPolicy, alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len(), "ger_sparse: row dimension mismatch");
    assert_eq!(a.cols(), y.len(), "ger_sparse: col dimension mismatch");
    let cols = a.cols();
    if x.is_empty() || cols == 0 {
        return;
    }
    record_kernel(&GER_CALLS, 2 * x.len() * cols);
    let parallel = policy.is_parallel() && 2 * x.len() * cols >= PAR_MIN_FLOPS;
    policy::par_row_bands(parallel, a.as_mut_slice(), cols, 1, |first_row, band| {
        for (i, row) in band.chunks_exact_mut(cols).enumerate() {
            let xi = x[first_row + i];
            if xi == 0.0 {
                continue;
            }
            vector::axpy(alpha * xi, y, row);
        }
    });
}

/// Outer product `x yᵀ` as a fresh matrix.
pub fn outer(x: &[f64], y: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(x.len(), y.len());
    ger(1.0, x, y, &mut m);
    m
}

/// Quadratic form `xᵀ A y` evaluated without forming intermediates, under the
/// default policy.
pub fn quadratic_form(x: &[f64], a: &Matrix, y: &[f64]) -> f64 {
    quadratic_form_with(policy::default_policy(), x, a, y)
}

/// Quadratic form under an explicit policy.
pub fn quadratic_form_with(policy: KernelPolicy, x: &[f64], a: &Matrix, y: &[f64]) -> f64 {
    assert_eq!(a.rows(), x.len(), "quadratic_form: row dimension mismatch");
    assert_eq!(a.cols(), y.len(), "quadratic_form: col dimension mismatch");
    match policy::effective_policy(policy, 2 * x.len() * y.len(), PAR_MIN_FLOPS) {
        KernelPolicy::Naive => {
            let mut acc = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                acc += xi * vector::dot(a.row(i), y);
            }
            acc
        }
        KernelPolicy::Blocked => {
            let lv = simd::current_level();
            let mut acc = 0.0;
            for (i, &xi) in x.iter().enumerate() {
                acc += xi * simd::dot(lv, a.row(i), y);
            }
            acc
        }
        KernelPolicy::BlockedParallel => {
            let lv = simd::current_level();
            let partials = policy::par_chunks(true, x.len(), 8, |range| {
                let mut acc = 0.0;
                for i in range {
                    acc += x[i] * simd::dot(lv, a.row(i), y);
                }
                acc
            });
            partials.into_iter().sum()
        }
    }
}

/// Symmetric quadratic form `xᵀ A x`, under the default policy.
pub fn quadratic_form_sym(x: &[f64], a: &Matrix) -> f64 {
    quadratic_form(x, a, x)
}

/// Symmetric quadratic form under an explicit policy.
pub fn quadratic_form_sym_with(policy: KernelPolicy, x: &[f64], a: &Matrix) -> f64 {
    quadratic_form_with(policy, x, a, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    /// Deterministic pseudo-random matrix for cross-policy comparisons.
    fn pseudo(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut rng = crate::testutil::TestRng::new(salt);
        Matrix::from_vec(rows, cols, rng.vec_in(rows * cols, -1.0, 1.0))
    }

    #[test]
    fn matmul_known_result() {
        for p in KernelPolicy::ALL {
            let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
            let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
            let c = matmul_with(p, &a, &b);
            assert_eq!(c.row(0), &[19.0, 22.0], "{p}");
            assert_eq!(c.row(1), &[43.0, 50.0], "{p}");
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        for p in KernelPolicy::ALL {
            let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
            let id = Matrix::identity(3);
            assert_eq!(matmul_with(p, &a, &id), a);
            let id2 = Matrix::identity(2);
            assert_eq!(matmul_with(p, &id2, &a), a);
        }
    }

    #[test]
    fn matmul_rectangular_shapes() {
        for p in KernelPolicy::ALL {
            let a = Matrix::zeros(3, 5);
            let b = Matrix::zeros(5, 2);
            assert_eq!(matmul_with(p, &a, &b).shape(), (3, 2));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn blocked_and_parallel_match_naive_on_awkward_shapes() {
        // shapes chosen to exercise every remainder path of the tiling
        for &(mm, kk, nn) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (33, 47, 29),
            (65, 70, 130),
        ] {
            let a = pseudo(mm, kk, 1);
            let b = pseudo(kk, nn, 2);
            let reference = matmul_with(KernelPolicy::Naive, &a, &b);
            for p in [KernelPolicy::Blocked, KernelPolicy::BlockedParallel] {
                let c = matmul_with(p, &a, &b);
                assert!(
                    reference.max_abs_diff(&c) < 1e-12,
                    "{p} diverged on {mm}x{kk}x{nn}: {}",
                    reference.max_abs_diff(&c)
                );
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_blocked() {
        let a = pseudo(100, 64, 3);
        let b = pseudo(64, 50, 4);
        let blocked = matmul_with(KernelPolicy::Blocked, &a, &b);
        let parallel = matmul_with(KernelPolicy::BlockedParallel, &a, &b);
        assert_eq!(blocked, parallel);
    }

    #[test]
    fn banded_execution_is_bit_identical_to_single_band() {
        // Drive the band split directly with a forced worker count, so the
        // bit-identity invariant is checked against a *genuinely* banded run
        // even on machines where num_threads() == 1 or the work is below the
        // parallel threshold.
        let (m, k, n) = (37usize, 65usize, 29usize); // remainders on every axis
        let a = pseudo(m, k, 11);
        let b = pseudo(k, n, 12);
        let lv = simd::current_level();
        let mut single = Matrix::zeros(m, n);
        blocked_matmul_rows(
            a.as_slice(),
            k,
            0,
            b.as_slice(),
            n,
            single.as_mut_slice(),
            lv,
        );
        let mut banded = Matrix::zeros(m, n);
        policy::par_row_bands_with_threads(4, banded.as_mut_slice(), n, MR, |first_row, band| {
            blocked_matmul_rows(a.as_slice(), k, first_row, b.as_slice(), n, band, lv);
        });
        assert_eq!(single, banded, "band split changed bits");
    }

    #[test]
    fn matmul_acc_accumulates_on_top() {
        for p in KernelPolicy::ALL {
            let a = m(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
            let b = m(&[vec![2.0, 3.0], vec![4.0, 5.0]]);
            let mut c = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
            matmul_acc_with(p, &a, &b, &mut c);
            assert_eq!(c.row(0), &[3.0, 4.0], "{p}");
            assert_eq!(c.row(1), &[5.0, 6.0], "{p}");
        }
    }

    #[test]
    fn sparse_matmul_matches_dense() {
        // one-hot-ish A: single nonzero per row
        let mut a = Matrix::zeros(6, 9);
        for i in 0..6 {
            a[(i, (i * 2) % 9)] = 1.0;
        }
        let b = pseudo(9, 5, 7);
        let mut dense = Matrix::zeros(6, 5);
        matmul_acc_with(KernelPolicy::Naive, &a, &b, &mut dense);
        for p in KernelPolicy::ALL {
            let mut sparse = Matrix::zeros(6, 5);
            matmul_acc_sparse_with(p, &a, &b, &mut sparse);
            assert_eq!(dense, sparse, "{p}");
        }
    }

    #[test]
    fn sparse_matmul_banded_execution_is_bit_identical() {
        // Force a real band split so the policy-routing path is exercised even
        // below the parallel work threshold.
        let a = pseudo(13, 9, 21);
        let b = pseudo(9, 6, 22);
        let mut single = Matrix::zeros(13, 6);
        matmul_acc_sparse_with(KernelPolicy::Naive, &a, &b, &mut single);
        let mut banded = Matrix::zeros(13, 6);
        policy::par_row_bands_with_threads(4, banded.as_mut_slice(), 6, 1, |first_row, band| {
            for (i, crow) in band.chunks_exact_mut(6).enumerate() {
                for (kk, &aik) in a.row(first_row + i).iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    for (dst, &bv) in crow.iter_mut().zip(b.row(kk).iter()) {
                        *dst += aik * bv;
                    }
                }
            }
        });
        assert_eq!(single, banded);
    }

    #[test]
    fn matvec_and_transpose() {
        for p in KernelPolicy::ALL {
            let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
            assert_eq!(matvec_with(p, &a, &[1.0, 1.0]), vec![3.0, 7.0, 11.0], "{p}");
            assert_eq!(
                matvec_transposed_with(p, &a, &[1.0, 1.0, 1.0]),
                vec![9.0, 12.0],
                "{p}"
            );
            let mut y = vec![1.0, 1.0, 1.0];
            matvec_acc_with(p, &a, &[1.0, 0.0], &mut y);
            assert_eq!(y, vec![2.0, 4.0, 6.0], "{p}");
        }
    }

    #[test]
    fn ger_and_outer() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0, 5.0];
        let o = outer(&x, &y);
        assert_eq!(o.row(0), &[3.0, 4.0, 5.0]);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);

        for p in KernelPolicy::ALL {
            let mut a = Matrix::zeros(2, 3);
            ger_with(p, 2.0, &x, &y, &mut a);
            assert_eq!(a.row(1), &[12.0, 16.0, 20.0], "{p}");
        }

        for p in KernelPolicy::ALL {
            let mut s = Matrix::zeros(2, 3);
            ger_sparse_with(p, 2.0, &[0.0, 2.0], &y, &mut s);
            assert_eq!(s.row(0), &[0.0, 0.0, 0.0], "{p}");
            assert_eq!(s.row(1), &[12.0, 16.0, 20.0], "{p}");
        }
    }

    #[test]
    fn quadratic_form_matches_explicit_product() {
        for p in KernelPolicy::ALL {
            let a = m(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
            let x = [1.0, 2.0];
            // xᵀ A x = [1 2] [[2 1][1 3]] [1 2]ᵀ = [4, 7]·[1,2] = 18
            assert!(approx_eq(quadratic_form_sym_with(p, &x, &a), 18.0, 1e-12));
            let y = [3.0, -1.0];
            // xᵀ A y = [4,7]·[3,-1] = 5
            assert!(approx_eq(quadratic_form_with(p, &x, &a, &y), 5.0, 1e-12));
        }
    }

    #[test]
    fn matmul_associativity_small() {
        let a = m(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let b = m(&[vec![3.0, 0.0], vec![1.0, 1.0]]);
        let c = m(&[vec![1.0, 1.0], vec![2.0, 0.0]]);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    fn empty_matrices_are_fine_under_every_policy() {
        for p in KernelPolicy::ALL {
            let a = Matrix::zeros(0, 0);
            assert_eq!(matmul_with(p, &a, &a).shape(), (0, 0));
            let b = Matrix::zeros(0, 4);
            let c = Matrix::zeros(4, 0);
            assert_eq!(matmul_with(p, &b, &Matrix::zeros(4, 3)).shape(), (0, 3));
            assert_eq!(matmul_with(p, &Matrix::zeros(3, 4), &c).shape(), (3, 0));
            assert!(matvec_with(p, &b, &[1.0; 4]).is_empty());
        }
    }
}
