//! Matrix product kernels: GEMM, GEMV, rank-1 (GER) and symmetric rank-1 updates,
//! and quadratic forms.
//!
//! The kernels are written as straightforward triple loops over row-major data with
//! the inner loop running along contiguous memory.  That is enough to make the
//! factorized-vs-materialized comparisons meaningful (both paths use the same
//! kernels) while keeping the results deterministic.

use crate::matrix::Matrix;
use crate::vector;

/// `C = A · B` for dense matrices.
///
/// # Panics
/// Panics when `A.cols() != B.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions do not agree ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_into(a, b, &mut c);
    c
}

/// `C += A · B`, writing into an existing output matrix (no allocation).
pub fn matmul_acc(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul_acc: inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "matmul_acc: output rows mismatch");
    assert_eq!(c.cols(), b.cols(), "matmul_acc: output cols mismatch");
    let n = b.cols();
    for i in 0..a.rows() {
        let arow = a.row(i);
        // Accumulate into a local row to keep the inner loop contiguous.
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(k);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// `C = A · B` into a pre-zeroed output.
pub fn matmul_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    c.fill_zero();
    matmul_acc(a, b, c);
}

/// `y = A · x` (matrix-vector product).
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), x.len(), "matvec: dimension mismatch");
    let mut y = vec![0.0; a.rows()];
    matvec_into(a, x, &mut y);
    y
}

/// `y = A · x` into an existing buffer.
pub fn matvec_into(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "matvec_into: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_into: output dimension mismatch");
    for i in 0..a.rows() {
        y[i] = vector::dot(a.row(i), x);
    }
}

/// `y += A · x` into an existing buffer.
pub fn matvec_acc(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "matvec_acc: dimension mismatch");
    assert_eq!(a.rows(), y.len(), "matvec_acc: output dimension mismatch");
    for i in 0..a.rows() {
        y[i] += vector::dot(a.row(i), x);
    }
}

/// `y = Aᵀ · x` without materializing the transpose.
pub fn matvec_transposed(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.rows(), x.len(), "matvec_transposed: dimension mismatch");
    let mut y = vec![0.0; a.cols()];
    for i in 0..a.rows() {
        vector::axpy(x[i], a.row(i), &mut y);
    }
    y
}

/// Rank-1 update `A += alpha * x yᵀ` (BLAS GER).
///
/// Used to accumulate NN weight gradients `∂E/∂W += δ · xᵀ` and GMM scatter
/// contributions `γ (x−µ)(x−µ)ᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    assert_eq!(a.rows(), x.len(), "ger: row dimension mismatch");
    assert_eq!(a.cols(), y.len(), "ger: col dimension mismatch");
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        vector::axpy(alpha * xi, y, a.row_mut(i));
    }
}

/// Outer product `x yᵀ` as a fresh matrix.
pub fn outer(x: &[f64], y: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(x.len(), y.len());
    ger(1.0, x, y, &mut m);
    m
}

/// Quadratic form `xᵀ A y` evaluated without forming intermediates.
pub fn quadratic_form(x: &[f64], a: &Matrix, y: &[f64]) -> f64 {
    assert_eq!(a.rows(), x.len(), "quadratic_form: row dimension mismatch");
    assert_eq!(a.cols(), y.len(), "quadratic_form: col dimension mismatch");
    let mut acc = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        acc += xi * vector::dot(a.row(i), y);
    }
    acc
}

/// Symmetric quadratic form `xᵀ A x`.
pub fn quadratic_form_sym(x: &[f64], a: &Matrix) -> f64 {
    quadratic_form(x, a, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn matmul_known_result() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = m(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = Matrix::identity(3);
        assert_eq!(matmul(&a, &id), a);
        let id2 = Matrix::identity(2);
        assert_eq!(matmul(&id2, &a), a);
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Matrix::zeros(3, 5);
        let b = Matrix::zeros(5, 2);
        assert_eq!(matmul(&a, &b).shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_mismatch_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_and_transpose() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(matvec(&a, &[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(
            matvec_transposed(&a, &[1.0, 1.0, 1.0]),
            vec![9.0, 12.0]
        );
        let mut y = vec![1.0, 1.0, 1.0];
        matvec_acc(&a, &[1.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn ger_and_outer() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0, 5.0];
        let o = outer(&x, &y);
        assert_eq!(o.row(0), &[3.0, 4.0, 5.0]);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);

        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &x, &y, &mut a);
        assert_eq!(a.row(1), &[12.0, 16.0, 20.0]);
    }

    #[test]
    fn quadratic_form_matches_explicit_product() {
        let a = m(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = [1.0, 2.0];
        // xᵀ A x = [1 2] [[2 1][1 3]] [1 2]ᵀ = [4, 7]·[1,2] = 18
        assert!(approx_eq(quadratic_form_sym(&x, &a), 18.0, 1e-12));
        let y = [3.0, -1.0];
        // xᵀ A y = [4,7]·[3,-1] = 5
        assert!(approx_eq(quadratic_form(&x, &a, &y), 5.0, 1e-12));
    }

    #[test]
    fn matmul_associativity_small() {
        let a = m(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let b = m(&[vec![3.0, 0.0], vec![1.0, 1.0]]);
        let c = m(&[vec![1.0, 1.0], vec![2.0, 0.0]]);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.max_abs_diff(&right) < 1e-12);
    }
}
