//! Deterministic pseudo-random streams for tests and benches.
//!
//! One SplitMix64 implementation shared by the property-test suites and the
//! bench harness, so the constants and any bias fixes live in exactly one
//! place.  Not part of the crate's public API surface (`doc(hidden)` at the
//! re-export); semver guarantees do not apply.

/// Deterministic SplitMix64 stream for deriving arbitrary test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a stream; equal seeds give equal sequences.
    pub fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "TestRng::range_u64: empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit_f64() * (hi - lo)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of uniform draws from `[lo, hi)`.
    pub fn vec_in(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.range(2, 9);
            assert!((2..9).contains(&v));
            let f = a.f64_in(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&f));
        }
        assert_eq!(a.vec_in(7, 0.0, 1.0).len(), 7);
    }
}
