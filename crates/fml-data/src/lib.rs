//! # fml-data
//!
//! Workload generators for the paper's evaluation: normalized (star-schema)
//! datasets with controllable redundancy, stored through [`fml_store`].
//!
//! * [`rng`] — deterministic random sampling helpers (Box–Muller normals, mixture
//!   sampling) so every experiment is reproducible from a seed.
//! * [`synthetic`] — the synthetic binary-join datasets of Tables II & III:
//!   parameters `n_S`, `n_R`, `d_S`, `d_R`, `K`, tuple ratio `rr = n_S/n_R`.
//! * [`multiway`] — synthetic star schemas with `q` dimension tables, mirroring
//!   the Movies-3way construction of Section VII-A.
//! * [`emulated`] — stand-ins for the real Hamlet-Plus datasets (Expedia 1–5,
//!   Walmart, Movies) reproducing their cardinalities and dimensionalities
//!   (Tables IV & V) with synthetic values, including the one-hot "Sparse"
//!   variants used for the NN experiments.
//! * [`feature_block`] — the typed per-relation feature representation
//!   ([`FeatureBlock`]): dense matrices or one-hot index sets; categorical
//!   blocks are generated in index form and never densified until the
//!   fixed-width storage boundary.
//! * [`onehot`] — one-hot encoding utilities used to build the sparse variants.
//! * [`workload`] — a small bundle type (`Database` + `JoinSpec` + metadata) handed
//!   to trainers and the benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulated;
pub mod feature_block;
pub mod multiway;
pub mod onehot;
pub mod rng;
pub mod synthetic;
pub mod workload;

pub use emulated::EmulatedDataset;
pub use feature_block::FeatureBlock;
pub use multiway::MultiwayConfig;
pub use onehot::OneHotSpec;
pub use synthetic::SyntheticConfig;
pub use workload::Workload;
