//! Synthetic binary-join workloads (Tables II and III of the paper).
//!
//! Two relations are generated:
//!
//! * `R(RID, x_R)` with `n_R` tuples and `d_R` features — each tuple is assigned to
//!   one of `K` clusters and its features are drawn from that cluster's center;
//! * `S(SID, [Y,] x_S, FK)` with `n_S` tuples and `d_S` features — each fact tuple
//!   references a uniformly chosen `R` tuple and draws its own features from the
//!   *same* cluster, so the joined feature vectors form a `K`-component mixture
//!   (the paper: "sampling from multiple Gaussian distributions and adding random
//!   noise").
//!
//! For supervised (NN) workloads a scalar target is generated as a smooth nonlinear
//! function of the joined features plus noise.

use crate::rng::{self, cluster_centers, normal_vector, seeded};
use crate::workload::Workload;
use fml_store::{Database, JoinSpec, Schema, StoreResult, Tuple};
use rand::Rng;

/// Configuration of a synthetic binary-join dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Number of fact tuples `n_S`.
    pub n_s: u64,
    /// Number of dimension tuples `n_R`.
    pub n_r: u64,
    /// Fact-table feature count `d_S`.
    pub d_s: usize,
    /// Dimension-table feature count `d_R`.
    pub d_r: usize,
    /// Number of generating mixture components `K`.
    pub k: usize,
    /// Standard deviation of the within-cluster noise.
    pub noise_std: f64,
    /// Whether to generate a supervised target `Y` on the fact table.
    pub with_target: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            n_s: 10_000,
            n_r: 100,
            d_s: 5,
            d_r: 15,
            k: 5,
            noise_std: 1.0,
            with_target: false,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// The paper's GMM defaults at laptop scale: `d_S = 5`, `n_R = 1000`, `K = 5`.
    pub fn gmm_default() -> Self {
        Self {
            n_s: 100_000,
            n_r: 1000,
            d_s: 5,
            d_r: 15,
            k: 5,
            with_target: false,
            ..Self::default()
        }
    }

    /// The paper's NN defaults at laptop scale (target included).
    pub fn nn_default() -> Self {
        Self {
            with_target: true,
            ..Self::gmm_default()
        }
    }

    /// Tuple ratio `rr = n_S / n_R`.
    pub fn tuple_ratio(&self) -> f64 {
        self.n_s as f64 / self.n_r as f64
    }

    /// Returns a copy with the tuple ratio set by adjusting `n_S` (keeping `n_R`).
    pub fn with_tuple_ratio(mut self, rr: u64) -> Self {
        self.n_s = self.n_r * rr;
        self
    }

    /// Returns a copy with a different dimension-table feature count.
    pub fn with_d_r(mut self, d_r: usize) -> Self {
        self.d_r = d_r;
        self
    }

    /// Returns a copy with a different component count.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset into a fresh in-memory database.
    pub fn generate(&self) -> StoreResult<Workload> {
        assert!(self.n_r > 0, "n_r must be positive");
        assert!(self.n_s > 0, "n_s must be positive");
        assert!(self.k > 0, "k must be positive");
        let db = Database::in_memory();
        let mut rng = seeded(self.seed);

        let r_centers = cluster_centers(&mut rng, self.k, self.d_r, 8.0);
        let s_centers = cluster_centers(&mut rng, self.k, self.d_s, 8.0);

        // Dimension table R: cluster assignment round-robin so every cluster is
        // populated even for tiny n_r.
        let r_rel = db.create_relation(Schema::dimension("R", self.d_r))?;
        let mut r_cluster = Vec::with_capacity(self.n_r as usize);
        {
            let mut rel = r_rel.lock();
            for key in 0..self.n_r {
                let c = (key as usize) % self.k;
                r_cluster.push(c);
                let features = normal_vector(&mut rng, &r_centers[c], self.noise_std);
                rel.append(&Tuple::dimension(key, features))?;
            }
            rel.flush()?;
        }

        // Fact table S.
        let s_schema = if self.with_target {
            Schema::fact_with_target("S", self.d_s, 1)
        } else {
            Schema::fact("S", self.d_s, 1)
        };
        let s_rel = db.create_relation(s_schema)?;
        {
            let mut rel = s_rel.lock();
            for key in 0..self.n_s {
                let fk = rng.gen_range(0..self.n_r);
                let c = r_cluster[fk as usize];
                let features = normal_vector(&mut rng, &s_centers[c], self.noise_std);
                let tuple = if self.with_target {
                    let y = target_fn(&features, c, self.k) + rng::normal(&mut rng, 0.0, 0.05);
                    Tuple::fact_with_target(key, vec![fk], y, features)
                } else {
                    Tuple::fact(key, vec![fk], features)
                };
                rel.append(&tuple)?;
            }
            rel.flush()?;
        }

        Ok(Workload {
            db,
            spec: JoinSpec::binary("S", "R"),
            name: format!(
                "synthetic(nS={}, nR={}, dS={}, dR={}, K={}, rr={:.0})",
                self.n_s,
                self.n_r,
                self.d_s,
                self.d_r,
                self.k,
                self.tuple_ratio()
            ),
            generating_clusters: Some(self.k),
            onehot: Workload::all_dense(2),
        })
    }
}

/// Smooth nonlinear target used for supervised workloads: a squashed mean of the
/// fact features shifted per generating cluster.
fn target_fn(features: &[f64], cluster: usize, k: usize) -> f64 {
    let m = if features.is_empty() {
        0.0
    } else {
        features.iter().sum::<f64>() / features.len() as f64
    };
    (m / 4.0).tanh() + cluster as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_store::batch::scan_all;

    fn small() -> SyntheticConfig {
        SyntheticConfig {
            n_s: 500,
            n_r: 20,
            d_s: 3,
            d_r: 4,
            k: 3,
            noise_std: 0.5,
            with_target: false,
            seed: 7,
        }
    }

    #[test]
    fn cardinalities_match_config() {
        let w = small().generate().unwrap();
        assert_eq!(w.n_fact().unwrap(), 500);
        assert_eq!(w.n_dim(0).unwrap(), 20);
        assert_eq!(w.tuple_ratio().unwrap(), 25.0);
        assert_eq!(w.feature_partition().unwrap(), vec![3, 4]);
        assert_eq!(w.total_features().unwrap(), 7);
        assert_eq!(w.generating_clusters, Some(3));
    }

    #[test]
    fn foreign_keys_reference_existing_dimension_tuples() {
        let w = small().generate().unwrap();
        let s = w.spec.fact_relation(&w.db).unwrap();
        let tuples = scan_all(&s, 16).unwrap();
        assert!(tuples.iter().all(|t| t.fks[0] < 20));
        assert!(tuples.iter().all(|t| t.target.is_none()));
        assert!(tuples.iter().all(|t| t.features.len() == 3));
    }

    #[test]
    fn target_generated_when_requested() {
        let cfg = SyntheticConfig {
            with_target: true,
            ..small()
        };
        let w = cfg.generate().unwrap();
        let s = w.spec.fact_relation(&w.db).unwrap();
        let tuples = scan_all(&s, 16).unwrap();
        assert!(tuples.iter().all(|t| t.target.is_some()));
        // targets are bounded by construction (tanh + cluster offset + noise)
        assert!(tuples.iter().all(|t| t.target.unwrap().abs() < 3.0));
    }

    #[test]
    fn same_seed_same_data_different_seed_different_data() {
        let a = small().generate().unwrap();
        let b = small().generate().unwrap();
        let c = small().with_seed(8).generate().unwrap();
        let read = |w: &Workload| scan_all(&w.spec.fact_relation(&w.db).unwrap(), 64).unwrap();
        assert_eq!(read(&a), read(&b));
        assert_ne!(read(&a), read(&c));
    }

    #[test]
    fn builders_adjust_parameters() {
        let cfg = small().with_tuple_ratio(50).with_d_r(9).with_k(4);
        assert_eq!(cfg.n_s, 20 * 50);
        assert_eq!(cfg.d_r, 9);
        assert_eq!(cfg.k, 4);
        assert_eq!(cfg.tuple_ratio(), 50.0);
    }

    #[test]
    fn defaults_reflect_paper_settings() {
        let g = SyntheticConfig::gmm_default();
        assert_eq!(g.d_s, 5);
        assert_eq!(g.n_r, 1000);
        assert_eq!(g.k, 5);
        assert!(!g.with_target);
        let n = SyntheticConfig::nn_default();
        assert!(n.with_target);
    }
}
