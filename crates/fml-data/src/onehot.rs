//! One-hot encoding utilities.
//!
//! The paper's NN experiments use "Sparse" variants of the real datasets in which
//! categorical attributes are one-hot encoded, inflating `d_S` and `d_R` (e.g.
//! Walmart goes from 3/9 dense features to 126/175 sparse ones) and thereby the
//! redundancy that the factorized algorithms exploit.  [`OneHotSpec`] describes a
//! set of categorical columns and expands category indices into 0/1 feature blocks.

/// One-hot encodes a single categorical value into a block of `cardinality`
/// indicator features.
///
/// # Panics
/// Panics when `index >= cardinality`.
pub fn one_hot(index: usize, cardinality: usize) -> Vec<f64> {
    assert!(
        index < cardinality,
        "one_hot: index {index} out of range for cardinality {cardinality}"
    );
    let mut v = vec![0.0; cardinality];
    v[index] = 1.0;
    v
}

/// Describes a tuple of categorical columns and their cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotSpec {
    cardinalities: Vec<usize>,
}

impl OneHotSpec {
    /// Creates a spec from per-column cardinalities.
    ///
    /// # Panics
    /// Panics when any cardinality is zero.
    pub fn new(cardinalities: Vec<usize>) -> Self {
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "OneHotSpec: cardinalities must be positive"
        );
        Self { cardinalities }
    }

    /// Builds a spec whose encoded width is exactly `width`, spreading categories
    /// as evenly as possible over `columns` categorical columns.  Used by the
    /// emulated sparse datasets, whose published dimensionalities are totals.
    pub fn with_total_width(width: usize, columns: usize) -> Self {
        assert!(
            columns > 0 && width >= columns,
            "width must be >= columns >= 1"
        );
        let base = width / columns;
        let extra = width % columns;
        let cardinalities = (0..columns)
            .map(|i| base + usize::from(i < extra))
            .collect();
        Self::new(cardinalities)
    }

    /// Number of categorical columns.
    pub fn num_columns(&self) -> usize {
        self.cardinalities.len()
    }

    /// Cardinality of column `i`.
    pub fn cardinality(&self, i: usize) -> usize {
        self.cardinalities[i]
    }

    /// Total width of the encoded feature vector.
    pub fn encoded_width(&self) -> usize {
        self.cardinalities.iter().sum()
    }

    /// Encodes one tuple of category indices into a dense 0/1 vector.
    ///
    /// # Panics
    /// Panics when the number of values differs from the number of columns or any
    /// index is out of range.
    pub fn encode(&self, values: &[usize]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.cardinalities.len(),
            "encode: expected {} categorical values, got {}",
            self.cardinalities.len(),
            values.len()
        );
        let mut out = Vec::with_capacity(self.encoded_width());
        for (v, c) in values.iter().zip(self.cardinalities.iter()) {
            out.extend(one_hot(*v, *c));
        }
        out
    }

    /// Decodes an encoded vector back into category indices (inverse of
    /// [`encode`](Self::encode); used in tests).
    pub fn decode(&self, encoded: &[f64]) -> Vec<usize> {
        assert_eq!(encoded.len(), self.encoded_width(), "decode: wrong width");
        let mut out = Vec::with_capacity(self.num_columns());
        let mut offset = 0;
        for &c in &self.cardinalities {
            let block = &encoded[offset..offset + c];
            let idx = block
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(idx);
            offset += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_basic() {
        assert_eq!(one_hot(2, 4), vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(one_hot(0, 1), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_out_of_range() {
        one_hot(3, 3);
    }

    #[test]
    fn spec_encode_decode_roundtrip() {
        let spec = OneHotSpec::new(vec![3, 2, 4]);
        assert_eq!(spec.encoded_width(), 9);
        assert_eq!(spec.num_columns(), 3);
        assert_eq!(spec.cardinality(2), 4);
        let encoded = spec.encode(&[1, 0, 3]);
        assert_eq!(encoded.len(), 9);
        assert_eq!(encoded.iter().sum::<f64>(), 3.0);
        assert_eq!(spec.decode(&encoded), vec![1, 0, 3]);
    }

    #[test]
    fn with_total_width_splits_evenly() {
        let spec = OneHotSpec::with_total_width(10, 3);
        assert_eq!(spec.encoded_width(), 10);
        assert_eq!(spec.num_columns(), 3);
        // 4 + 3 + 3
        assert_eq!(spec.cardinality(0), 4);
        assert_eq!(spec.cardinality(1), 3);
        assert_eq!(spec.cardinality(2), 3);

        let exact = OneHotSpec::with_total_width(126, 3);
        assert_eq!(exact.encoded_width(), 126);
    }

    #[test]
    #[should_panic(expected = "expected 2 categorical values")]
    fn encode_wrong_arity_panics() {
        OneHotSpec::new(vec![2, 2]).encode(&[0]);
    }
}
