//! One-hot encoding utilities.
//!
//! The paper's NN experiments use "Sparse" variants of the real datasets in which
//! categorical attributes are one-hot encoded, inflating `d_S` and `d_R` (e.g.
//! Walmart goes from 3/9 dense features to 126/175 sparse ones) and thereby the
//! redundancy that the factorized algorithms exploit.  [`OneHotSpec`] describes a
//! set of categorical columns and expands category indices into 0/1 feature blocks.

/// One-hot encodes a single categorical value into a block of `cardinality`
/// indicator features.
///
/// # Panics
/// Panics when `index >= cardinality`.
pub fn one_hot(index: usize, cardinality: usize) -> Vec<f64> {
    assert!(
        index < cardinality,
        "one_hot: index {index} out of range for cardinality {cardinality}"
    );
    let mut v = vec![0.0; cardinality];
    v[index] = 1.0;
    v
}

/// Describes a tuple of categorical columns and their cardinalities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotSpec {
    cardinalities: Vec<usize>,
}

impl OneHotSpec {
    /// Creates a spec from per-column cardinalities.
    ///
    /// # Panics
    /// Panics when any cardinality is zero.
    pub fn new(cardinalities: Vec<usize>) -> Self {
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "OneHotSpec: cardinalities must be positive"
        );
        Self { cardinalities }
    }

    /// Builds a spec whose encoded width is exactly `width`, spreading categories
    /// as evenly as possible over `columns` categorical columns.  Used by the
    /// emulated sparse datasets, whose published dimensionalities are totals.
    ///
    /// **Remainder behavior**: when `width` does not divide evenly, the first
    /// `width % columns` columns receive one extra category
    /// (`⌈width/columns⌉`), the rest `⌊width/columns⌋` — so
    /// `Σ cardinalities == width` always holds and the widest and narrowest
    /// columns differ by at most one.
    ///
    /// # Panics
    /// Panics when `columns == 0`, or when `width < columns` (including
    /// `width == 0`): every categorical column needs at least one category, so
    /// a valid spec requires `width ≥ columns ≥ 1`.
    pub fn with_total_width(width: usize, columns: usize) -> Self {
        assert!(columns > 0, "with_total_width: columns must be >= 1");
        assert!(
            width >= columns,
            "with_total_width: width {width} < columns {columns} \
             (every column needs at least one category; width == 0 is invalid)"
        );
        let base = width / columns;
        let extra = width % columns;
        let cardinalities = (0..columns)
            .map(|i| base + usize::from(i < extra))
            .collect();
        Self::new(cardinalities)
    }

    /// The layout the emulated sparse datasets use for a block of total
    /// `width`: roughly 8 categories per column, at least one column.
    ///
    /// # Panics
    /// Panics when `width == 0` (see [`with_total_width`](Self::with_total_width)).
    pub fn auto(width: usize) -> Self {
        let columns = (width / 8).clamp(1, width.max(1));
        Self::with_total_width(width, columns)
    }

    /// Number of categorical columns.
    pub fn num_columns(&self) -> usize {
        self.cardinalities.len()
    }

    /// Cardinality of column `i`.
    pub fn cardinality(&self, i: usize) -> usize {
        self.cardinalities[i]
    }

    /// Total width of the encoded feature vector.
    pub fn encoded_width(&self) -> usize {
        self.cardinalities.iter().sum()
    }

    /// Offset of column `i`'s indicator sub-range within the encoded vector.
    pub fn offset(&self, i: usize) -> usize {
        self.cardinalities[..i].iter().sum()
    }

    /// Encodes one tuple of category indices into its **active absolute
    /// indices** — the sparse counterpart of [`encode`](Self::encode), one
    /// ascending index per categorical column, no densification.
    ///
    /// # Panics
    /// Panics when the number of values differs from the number of columns or
    /// any index is out of range for its column's cardinality.
    pub fn encode_indices(&self, values: &[usize]) -> Vec<u32> {
        assert_eq!(
            values.len(),
            self.cardinalities.len(),
            "encode_indices: expected {} categorical values, got {}",
            self.cardinalities.len(),
            values.len()
        );
        let mut out = Vec::with_capacity(values.len());
        let mut offset = 0usize;
        for (v, c) in values.iter().zip(self.cardinalities.iter()) {
            assert!(
                v < c,
                "encode_indices: value {v} out of range for cardinality {c}"
            );
            out.push((offset + v) as u32);
            offset += c;
        }
        out
    }

    /// Encodes one tuple of category indices into a dense 0/1 vector.
    ///
    /// # Panics
    /// Panics when the number of values differs from the number of columns or any
    /// index is out of range.
    pub fn encode(&self, values: &[usize]) -> Vec<f64> {
        assert_eq!(
            values.len(),
            self.cardinalities.len(),
            "encode: expected {} categorical values, got {}",
            self.cardinalities.len(),
            values.len()
        );
        let mut out = Vec::with_capacity(self.encoded_width());
        for (v, c) in values.iter().zip(self.cardinalities.iter()) {
            out.extend(one_hot(*v, *c));
        }
        out
    }

    /// Decodes an encoded vector back into category indices (inverse of
    /// [`encode`](Self::encode); used in tests).
    pub fn decode(&self, encoded: &[f64]) -> Vec<usize> {
        assert_eq!(encoded.len(), self.encoded_width(), "decode: wrong width");
        let mut out = Vec::with_capacity(self.num_columns());
        let mut offset = 0;
        for &c in &self.cardinalities {
            let block = &encoded[offset..offset + c];
            let idx = block
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.push(idx);
            offset += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_basic() {
        assert_eq!(one_hot(2, 4), vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(one_hot(0, 1), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_out_of_range() {
        one_hot(3, 3);
    }

    #[test]
    fn spec_encode_decode_roundtrip() {
        let spec = OneHotSpec::new(vec![3, 2, 4]);
        assert_eq!(spec.encoded_width(), 9);
        assert_eq!(spec.num_columns(), 3);
        assert_eq!(spec.cardinality(2), 4);
        let encoded = spec.encode(&[1, 0, 3]);
        assert_eq!(encoded.len(), 9);
        assert_eq!(encoded.iter().sum::<f64>(), 3.0);
        assert_eq!(spec.decode(&encoded), vec![1, 0, 3]);
    }

    #[test]
    fn with_total_width_splits_evenly() {
        let spec = OneHotSpec::with_total_width(10, 3);
        assert_eq!(spec.encoded_width(), 10);
        assert_eq!(spec.num_columns(), 3);
        // 4 + 3 + 3
        assert_eq!(spec.cardinality(0), 4);
        assert_eq!(spec.cardinality(1), 3);
        assert_eq!(spec.cardinality(2), 3);

        let exact = OneHotSpec::with_total_width(126, 3);
        assert_eq!(exact.encoded_width(), 126);
    }

    #[test]
    #[should_panic(expected = "expected 2 categorical values")]
    fn encode_wrong_arity_panics() {
        OneHotSpec::new(vec![2, 2]).encode(&[0]);
    }

    #[test]
    fn encode_indices_matches_dense_encoding() {
        let spec = OneHotSpec::new(vec![3, 2, 4]);
        let values = [1usize, 0, 3];
        let idx = spec.encode_indices(&values);
        assert_eq!(idx, vec![1, 3, 8]);
        let dense = spec.encode(&values);
        for (i, &v) in dense.iter().enumerate() {
            let expected = if idx.contains(&(i as u32)) { 1.0 } else { 0.0 };
            assert_eq!(v, expected, "position {i}");
        }
        assert_eq!(spec.offset(0), 0);
        assert_eq!(spec.offset(2), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_indices_rejects_out_of_range_value() {
        OneHotSpec::new(vec![2, 2]).encode_indices(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "width 2 < columns 3")]
    fn with_total_width_rejects_width_below_columns() {
        OneHotSpec::with_total_width(2, 3);
    }

    #[test]
    #[should_panic(expected = "width 0 < columns 1")]
    fn with_total_width_rejects_zero_width() {
        OneHotSpec::with_total_width(0, 1);
    }

    #[test]
    #[should_panic(expected = "columns must be >= 1")]
    fn with_total_width_rejects_zero_columns() {
        OneHotSpec::with_total_width(4, 0);
    }

    #[test]
    fn with_total_width_remainder_goes_to_leading_columns() {
        // width == columns: every column is a cardinality-1 indicator
        let unit = OneHotSpec::with_total_width(3, 3);
        assert_eq!(unit.encoded_width(), 3);
        assert!((0..3).all(|i| unit.cardinality(i) == 1));
        // widest and narrowest differ by at most one, sum is exact
        let spec = OneHotSpec::with_total_width(17, 5);
        let cards: Vec<usize> = (0..5).map(|i| spec.cardinality(i)).collect();
        assert_eq!(cards, vec![4, 4, 3, 3, 3]);
        assert_eq!(spec.encoded_width(), 17);
    }

    #[test]
    fn auto_layout_has_about_eight_categories_per_column() {
        let spec = OneHotSpec::auto(126);
        assert_eq!(spec.encoded_width(), 126);
        assert_eq!(spec.num_columns(), 15);
        // degenerate widths still produce valid specs
        assert_eq!(OneHotSpec::auto(1).num_columns(), 1);
        assert_eq!(OneHotSpec::auto(7).num_columns(), 1);
    }
}
