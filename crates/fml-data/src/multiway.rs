//! Synthetic multi-way (star-schema) workloads.
//!
//! A fact table `S` references `q` dimension tables `R_1 … R_q`.  The construction
//! mirrors how the paper builds its Movies-3way experiments (Section VII-A):
//! dimension tables with independent sizes and widths, fact tuples that pick one
//! key from every dimension table, and cluster structure carried by the first
//! dimension so GMM training remains well-posed.

use crate::feature_block::FeatureBlock;
use crate::onehot::OneHotSpec;
use crate::rng::{cluster_centers, normal, normal_vector, seeded};
use crate::workload::Workload;
use fml_store::{Database, JoinSpec, Schema, StoreResult, Tuple};
use rand::Rng;

/// The feature representation a dimension table is generated with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DimKind {
    /// Dense numeric features (normal draws around cluster centers).
    #[default]
    Dense,
    /// One-hot encoded categorical attributes, generated directly in index
    /// form as a [`FeatureBlock::OneHot`].
    Categorical,
    /// Weighted-sparse numeric features (TF-IDF-ish), generated directly in
    /// CSR form as a [`FeatureBlock::Csr`] with about `nnz` nonzeros per row.
    SparseNumeric {
        /// Target nonzeros per row (must satisfy `4·nnz ≤ d` so the trainers'
        /// ¼-occupancy auto-detection engages).
        nnz: usize,
    },
}

/// Size and width of one dimension table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimSpec {
    /// Number of tuples `n_{R_i}`.
    pub n: u64,
    /// Number of features `d_{R_i}`.
    pub d: usize,
    /// How the features are represented (dense / one-hot / weighted-sparse).
    pub kind: DimKind,
}

impl DimSpec {
    /// Creates a dense numeric dimension spec.
    pub fn new(n: u64, d: usize) -> Self {
        Self {
            n,
            d,
            kind: DimKind::Dense,
        }
    }

    /// Creates a one-hot categorical dimension spec of encoded width `d`
    /// (layout chosen by [`OneHotSpec::auto`]).
    pub fn categorical(n: u64, d: usize) -> Self {
        Self {
            n,
            d,
            kind: DimKind::Categorical,
        }
    }

    /// Creates a weighted-sparse numeric dimension spec of width `d` with
    /// about `nnz` nonzeros per row — the general-CSR workload scenario.
    pub fn sparse_numeric(n: u64, d: usize, nnz: usize) -> Self {
        Self {
            n,
            d,
            kind: DimKind::SparseNumeric { nnz },
        }
    }

    /// The one-hot layout of this dimension's feature block, if categorical.
    pub fn onehot_spec(&self) -> Option<OneHotSpec> {
        matches!(self.kind, DimKind::Categorical).then(|| OneHotSpec::auto(self.d))
    }
}

/// Configuration of a synthetic multi-way workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiwayConfig {
    /// Number of fact tuples `n_S`.
    pub n_s: u64,
    /// Fact-table feature count `d_S`.
    pub d_s: usize,
    /// Dimension tables `R_1 … R_q`.
    pub dims: Vec<DimSpec>,
    /// Number of generating mixture components `K`.
    pub k: usize,
    /// Within-cluster noise standard deviation.
    pub noise_std: f64,
    /// Whether to generate a supervised target.
    pub with_target: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiwayConfig {
    fn default() -> Self {
        Self {
            n_s: 20_000,
            d_s: 3,
            dims: vec![DimSpec::new(200, 8), DimSpec::new(100, 6)],
            k: 5,
            noise_std: 1.0,
            with_target: false,
            seed: 42,
        }
    }
}

impl MultiwayConfig {
    /// A three-relation star mirroring the Movies-3way setup at laptop scale:
    /// `S_ratings ⋈ R1_users ⋈ R2_movies`.
    pub fn movies_3way_like() -> Self {
        Self {
            n_s: 50_000,
            d_s: 1,
            dims: vec![DimSpec::new(1000, 4), DimSpec::new(500, 21)],
            k: 5,
            noise_std: 1.0,
            with_target: false,
            seed: 42,
        }
    }

    /// Number of dimension tables `q`.
    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Tuple ratio against the first dimension table.
    pub fn tuple_ratio(&self) -> f64 {
        self.n_s as f64 / self.dims[0].n as f64
    }

    /// Returns a copy with the tuple ratio set by adjusting `n_S` relative to the
    /// first dimension table.
    pub fn with_tuple_ratio(mut self, rr: u64) -> Self {
        self.n_s = self.dims[0].n * rr;
        self
    }

    /// Returns a copy with a different width for dimension `i`.
    pub fn with_dim_width(mut self, i: usize, d: usize) -> Self {
        self.dims[i].d = d;
        self
    }

    /// Returns a copy with a different component count.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Returns a copy requesting a supervised target.
    pub fn with_target(mut self, with_target: bool) -> Self {
        self.with_target = with_target;
        self
    }

    /// Generates the star schema into a fresh in-memory database.
    ///
    /// Relations are named `S`, `R1`, `R2`, … and the returned [`JoinSpec`] joins
    /// them in that order.
    pub fn generate(&self) -> StoreResult<Workload> {
        assert!(
            !self.dims.is_empty(),
            "at least one dimension table required"
        );
        assert!(self.k > 0, "k must be positive");
        let db = Database::in_memory();
        let mut rng = seeded(self.seed);

        // Per-dimension cluster centers and per-tuple cluster assignments.
        let mut dim_names = Vec::with_capacity(self.dims.len());
        let mut dim_clusters: Vec<Vec<usize>> = Vec::with_capacity(self.dims.len());
        let mut onehot = vec![None];
        for (i, dim) in self.dims.iter().enumerate() {
            assert!(dim.n > 0, "dimension table {i} must have tuples");
            let name = format!("R{}", i + 1);
            let centers = cluster_centers(&mut rng, self.k, dim.d, 8.0);
            let spec = dim.onehot_spec();
            let rel = db.create_relation(Schema::dimension(name.clone(), dim.d))?;
            let clusters: Vec<usize> = (0..dim.n as usize).map(|key| key % self.k).collect();
            // Categorical and weighted-sparse dimensions are generated
            // straight into index/CSR form; rows densify only at the
            // fixed-width storage boundary below.
            let block = match dim.kind {
                DimKind::Categorical => FeatureBlock::generate_onehot(
                    &mut rng,
                    spec.as_ref().expect("categorical layout"),
                    &clusters,
                ),
                DimKind::SparseNumeric { nnz } => FeatureBlock::generate_sparse_numeric(
                    &mut rng,
                    dim.d,
                    nnz,
                    &clusters,
                    self.noise_std.max(0.05),
                ),
                DimKind::Dense => {
                    FeatureBlock::generate_dense(&mut rng, &centers, &clusters, self.noise_std)
                }
            };
            {
                let mut rel = rel.lock();
                for (key, _) in clusters.iter().enumerate() {
                    rel.append(&Tuple::dimension(key as u64, block.dense_row(key)))?;
                }
                rel.flush()?;
            }
            dim_names.push(name);
            dim_clusters.push(clusters);
            onehot.push(spec);
        }

        let s_centers = cluster_centers(&mut rng, self.k, self.d_s, 8.0);
        let s_schema = if self.with_target {
            Schema::fact_with_target("S", self.d_s, self.dims.len())
        } else {
            Schema::fact("S", self.d_s, self.dims.len())
        };
        let s_rel = db.create_relation(s_schema)?;
        {
            let mut rel = s_rel.lock();
            for key in 0..self.n_s {
                // The first dimension drives the cluster; the rest are drawn from
                // the same cluster so the joined mixture stays coherent.
                let fk0 = rng.gen_range(0..self.dims[0].n);
                let c = dim_clusters[0][fk0 as usize];
                let mut fks = Vec::with_capacity(self.dims.len());
                fks.push(fk0);
                for (i, dim) in self.dims.iter().enumerate().skip(1) {
                    // Pick a tuple of the same cluster when one exists.
                    let candidates: u64 = dim.n / self.k as u64;
                    let fk = if candidates > 0 {
                        let idx = rng.gen_range(0..candidates);
                        let key = idx * self.k as u64 + c as u64;
                        if key < dim.n {
                            key
                        } else {
                            rng.gen_range(0..dim.n)
                        }
                    } else {
                        rng.gen_range(0..dim.n)
                    };
                    debug_assert_eq!(dim_clusters[i][0], 0);
                    fks.push(fk);
                }
                let features = normal_vector(&mut rng, &s_centers[c], self.noise_std);
                let tuple = if self.with_target {
                    let mean = if features.is_empty() {
                        0.0
                    } else {
                        features.iter().sum::<f64>() / features.len() as f64
                    };
                    let y = (mean / 4.0).tanh()
                        + c as f64 / self.k as f64
                        + normal(&mut rng, 0.0, 0.05);
                    Tuple::fact_with_target(key, fks, y, features)
                } else {
                    Tuple::fact(key, fks, features)
                };
                rel.append(&tuple)?;
            }
            rel.flush()?;
        }

        Ok(Workload {
            db,
            spec: JoinSpec::multiway("S", dim_names),
            name: format!(
                "multiway(nS={}, q={}, dims={:?}, K={})",
                self.n_s,
                self.dims.len(),
                self.dims.iter().map(|d| (d.n, d.d)).collect::<Vec<_>>(),
                self.k
            ),
            generating_clusters: Some(self.k),
            onehot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_store::batch::scan_all;
    use fml_store::factorized_scan::StarScan;

    fn small() -> MultiwayConfig {
        MultiwayConfig {
            n_s: 600,
            d_s: 2,
            dims: vec![DimSpec::new(30, 3), DimSpec::new(12, 4), DimSpec::new(6, 2)],
            k: 3,
            noise_std: 0.5,
            with_target: false,
            seed: 5,
        }
    }

    #[test]
    fn generates_all_relations_with_right_shapes() {
        let w = small().generate().unwrap();
        assert_eq!(w.spec.num_dimensions(), 3);
        assert_eq!(w.n_fact().unwrap(), 600);
        assert_eq!(w.n_dim(0).unwrap(), 30);
        assert_eq!(w.n_dim(2).unwrap(), 6);
        assert_eq!(w.feature_partition().unwrap(), vec![2, 3, 4, 2]);
        assert_eq!(w.total_features().unwrap(), 11);
    }

    #[test]
    fn foreign_keys_are_resolvable() {
        let w = small().generate().unwrap();
        let scan = StarScan::new(&w.db, &w.spec, 8).unwrap();
        let mut count = 0;
        for block in scan.blocks() {
            for fact in block.unwrap() {
                let dims = scan.cache().resolve(&fact).unwrap();
                assert_eq!(dims.len(), 3);
                count += 1;
            }
        }
        assert_eq!(count, 600);
    }

    #[test]
    fn with_target_produces_targets() {
        let w = small().with_target(true).generate().unwrap();
        let s = w.spec.fact_relation(&w.db).unwrap();
        assert!(scan_all(&s, 16).unwrap().iter().all(|t| t.target.is_some()));
    }

    #[test]
    fn builders() {
        let cfg = small().with_tuple_ratio(40).with_dim_width(1, 9).with_k(4);
        assert_eq!(cfg.n_s, 30 * 40);
        assert_eq!(cfg.dims[1].d, 9);
        assert_eq!(cfg.k, 4);
        assert_eq!(cfg.tuple_ratio(), 40.0);
        assert_eq!(cfg.num_dims(), 3);
    }

    #[test]
    fn movies_3way_shape() {
        let cfg = MultiwayConfig::movies_3way_like();
        assert_eq!(cfg.num_dims(), 2);
        assert_eq!(cfg.d_s, 1);
        assert_eq!(cfg.dims[1].d, 21);
    }

    #[test]
    fn categorical_dimensions_generate_onehot_blocks() {
        let mut cfg = small();
        cfg.dims[1] = DimSpec::categorical(12, 9);
        let w = cfg.generate().unwrap();
        assert!(w.has_onehot_blocks());
        assert_eq!(w.onehot[2], Some(OneHotSpec::auto(9)));
        assert_eq!(w.onehot[1], None);
        let r2 = w.db.relation("R2").unwrap();
        let spec = OneHotSpec::auto(9);
        for t in scan_all(&r2, 16).unwrap() {
            assert!(t.features.iter().all(|&f| f == 0.0 || f == 1.0));
            let ones = t.features.iter().filter(|&&f| f == 1.0).count();
            assert_eq!(ones, spec.num_columns());
        }
    }

    #[test]
    fn sparse_numeric_dimensions_generate_weighted_rows() {
        let mut cfg = small();
        cfg.dims[1] = DimSpec::sparse_numeric(12, 16, 3);
        let w = cfg.generate().unwrap();
        // no one-hot layout metadata — these are weighted, not categorical
        assert_eq!(w.onehot[2], None);
        let r2 = w.db.relation("R2").unwrap();
        for t in scan_all(&r2, 16).unwrap() {
            assert_eq!(t.features.len(), 16);
            let nnz = t.features.iter().filter(|&&f| f != 0.0).count();
            assert!(nnz > 0 && nnz <= 3, "unexpected support {nnz}");
            // weighted values: at least one nonzero that is not 1.0
            assert!(
                t.features.iter().any(|&f| f != 0.0 && f != 1.0),
                "sparse-numeric rows must carry weighted values: {:?}",
                t.features
            );
            // and the trainers' gate picks the CSR representation
            let rep = fml_linalg::SparseMode::Auto.detect(&t.features);
            assert!(
                matches!(rep, Some(fml_linalg::SparseRep::Csr { .. })),
                "row must detect as CSR: {rep:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate().unwrap();
        let b = small().generate().unwrap();
        let read = |w: &Workload| scan_all(&w.spec.fact_relation(&w.db).unwrap(), 64).unwrap();
        assert_eq!(read(&a), read(&b));
    }
}
