//! The `Workload` bundle: a populated database plus the join the model trains over.

use crate::onehot::OneHotSpec;
use fml_store::{Database, JoinSpec, StoreResult};

/// A generated training workload.
///
/// Bundles the storage engine instance holding the normalized relations, the join
/// specification the model is learned over, and descriptive metadata used by the
/// benchmark harness when printing tables.
pub struct Workload {
    /// The storage engine instance holding the base relations.
    pub db: Database,
    /// The PK/FK join the model is trained over.
    pub spec: JoinSpec,
    /// Human-readable workload name (e.g. `"synthetic rr=1000 dR=15"`).
    pub name: String,
    /// Number of mixture components used to generate the data (if applicable);
    /// also the natural `K` to train a GMM with.
    pub generating_clusters: Option<usize>,
    /// One-hot layout of each relation's feature block, in partition order
    /// `[S, R_1, …, R_q]`; `None` for dense blocks.  Carried as metadata so
    /// benches and tests can reason about occupancy without rescanning —
    /// trainers detect the structure from the 0/1 rows themselves.
    pub onehot: Vec<Option<OneHotSpec>>,
}

impl Workload {
    /// Number of tuples in the fact table (`n_S`, which equals `N = |T|` rows).
    pub fn n_fact(&self) -> StoreResult<u64> {
        Ok(self.spec.fact_relation(&self.db)?.lock().num_tuples())
    }

    /// Number of tuples in dimension table `i`.
    pub fn n_dim(&self, i: usize) -> StoreResult<u64> {
        Ok(self.spec.dimension_relations(&self.db)?[i]
            .lock()
            .num_tuples())
    }

    /// Tuple ratio `rr = n_S / n_{R_1}` — the redundancy knob of the evaluation.
    pub fn tuple_ratio(&self) -> StoreResult<f64> {
        Ok(self.n_fact()? as f64 / self.n_dim(0)? as f64)
    }

    /// Per-relation feature sizes `[d_S, d_{R_1}, …]`.
    pub fn feature_partition(&self) -> StoreResult<Vec<usize>> {
        self.spec.feature_partition(&self.db)
    }

    /// Total feature dimensionality of the joined tuples.
    pub fn total_features(&self) -> StoreResult<usize> {
        self.spec.total_features(&self.db)
    }

    /// Whether any relation's feature block is one-hot encoded.
    pub fn has_onehot_blocks(&self) -> bool {
        self.onehot.iter().any(Option::is_some)
    }

    /// One-hot metadata marking every relation dense (the common case for the
    /// numeric generators).
    pub fn all_dense(num_relations: usize) -> Vec<Option<OneHotSpec>> {
        vec![None; num_relations]
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Workload {{ name: {}, spec: {:?} }}",
            self.name, self.spec
        )
    }
}
