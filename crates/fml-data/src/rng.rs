//! Deterministic random sampling helpers.
//!
//! Everything in this crate draws from a seeded [`rand::rngs::StdRng`] so that a
//! dataset is fully determined by its configuration (including the seed), which in
//! turn makes the "all three algorithm variants learn the same model" integration
//! tests meaningful.
//!
//! Normal variates are produced with the Box–Muller transform rather than pulling
//! an extra distribution crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Fills a vector with independent normal draws centered on `means` with common
/// standard deviation `std_dev`.
pub fn normal_vector<R: Rng + ?Sized>(rng: &mut R, means: &[f64], std_dev: f64) -> Vec<f64> {
    means.iter().map(|&m| normal(rng, m, std_dev)).collect()
}

/// Samples an index according to (unnormalized, non-negative) weights.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "sample_weighted: empty weights");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0,
        "sample_weighted: weights must sum to a positive value"
    );
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Generates `k` well separated cluster centers of dimension `d`.
///
/// Centers are placed on a jittered grid with spacing `separation`, which keeps
/// synthetic GMM workloads well-posed for any `k` and `d`.
pub fn cluster_centers<R: Rng + ?Sized>(
    rng: &mut R,
    k: usize,
    d: usize,
    separation: f64,
) -> Vec<Vec<f64>> {
    (0..k)
        .map(|c| {
            (0..d)
                .map(|j| {
                    let base = separation * ((c + 1) as f64) * if j % 2 == 0 { 1.0 } else { -1.0 };
                    base + normal(rng, 0.0, separation * 0.05)
                })
                .collect()
        })
        .collect()
}

/// Fisher–Yates shuffle of a slice of keys (used to permute `R` keys between SGD
/// epochs, as Section VI prescribes).
pub fn shuffle<R: Rng + ?Sized, T>(rng: &mut R, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = seeded(1);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        let v = normal_vector(&mut rng, &[1.0, 2.0, 3.0], 0.0);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = seeded(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_sampling_rejects_zero_weights() {
        sample_weighted(&mut seeded(0), &[0.0, 0.0]);
    }

    #[test]
    fn cluster_centers_are_separated() {
        let mut rng = seeded(9);
        let centers = cluster_centers(&mut rng, 4, 6, 10.0);
        assert_eq!(centers.len(), 4);
        assert!(centers.iter().all(|c| c.len() == 6));
        for i in 0..4 {
            for j in (i + 1)..4 {
                let dist: f64 = centers[i]
                    .iter()
                    .zip(&centers[j])
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
                    .sqrt();
                assert!(dist > 1.0, "centers {i} and {j} too close: {dist}");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = seeded(11);
        let mut items: Vec<u64> = (0..100).collect();
        shuffle(&mut rng, &mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(items, (0..100).collect::<Vec<u64>>());
    }
}
