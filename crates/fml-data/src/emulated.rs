//! Emulated stand-ins for the real datasets of the paper's evaluation.
//!
//! The original evaluation uses the Hamlet-Plus datasets (Expedia, Walmart,
//! Movies) plus augmented variants.  Those datasets are not redistributable here,
//! so each is **emulated**: a synthetic dataset with exactly the cardinalities and
//! dimensionalities reported in Tables IV and V of the paper.  The performance
//! comparison between the `M-*`, `S-*` and `F-*` algorithms depends on the data
//! only through these shape parameters (tuple ratio, feature split, sparsity), so
//! the emulation preserves the experimental signal while absolute accuracy numbers
//! are obviously not comparable to the originals.
//!
//! Use [`EmulatedDataset::generate`] with a `scale < 1.0` to shrink the fact and
//! dimension tables proportionally (preserving the tuple ratio) for laptop runs.

use crate::feature_block::FeatureBlock;
use crate::onehot::OneHotSpec;
use crate::rng::{cluster_centers, normal, seeded};
use crate::workload::Workload;
use fml_store::{Database, JoinSpec, Schema, StoreResult, Tuple};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of mixture components used when emulating real data.
const EMULATED_CLUSTERS: usize = 5;

/// Rows per generated [`FeatureBlock`]: bounds the dense staging buffer while
/// keeping block-generation overhead negligible.
const GEN_BLOCK_ROWS: usize = 4096;

/// The real-dataset configurations of Tables IV and V, plus the Movies-3way
/// multi-way join of Section VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmulatedDataset {
    /// Expedia `R1_Hotels ⋈ S_Listings` (dense).
    Expedia1,
    /// Expedia `R2_Searches ⋈ S_Listings` (dense).
    Expedia2,
    /// Walmart `R1_Indicators ⋈ S_Sales` (dense).
    Walmart,
    /// Movies `R2_movies ⋈ S_ratings` (dense).
    Movies,
    /// Augmented Expedia with `d_R = 29`.
    Expedia3,
    /// Augmented Expedia with `d_R = 78`.
    Expedia4,
    /// Augmented Expedia with `d_R = 218`.
    Expedia5,
    /// Walmart with one-hot (sparse) encoding, used by the NN experiments.
    WalmartSparse,
    /// Movies with one-hot (sparse) encoding, used by the NN experiments.
    MoviesSparse,
    /// Movies three-way join `S_ratings ⋈ R1_users ⋈ R2_movies`.
    Movies3Way,
}

/// Shape parameters of an emulated dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetShape {
    /// Fact-table cardinality `n_S`.
    pub n_s: u64,
    /// Fact-table feature count `d_S`.
    pub d_s: usize,
    /// Dimension tables as `(n_{R_i}, d_{R_i})` pairs.
    pub dims: Vec<(u64, usize)>,
    /// Whether features are one-hot encoded indicator columns.
    pub sparse: bool,
}

impl EmulatedDataset {
    /// All datasets, in the order the paper's result tables list them.
    pub fn all() -> Vec<EmulatedDataset> {
        use EmulatedDataset::*;
        vec![
            Expedia1,
            Expedia2,
            Walmart,
            Movies,
            Expedia3,
            Expedia4,
            Expedia5,
            WalmartSparse,
            MoviesSparse,
            Movies3Way,
        ]
    }

    /// Datasets used by the GMM experiment of Table VI.
    pub fn gmm_table() -> Vec<EmulatedDataset> {
        use EmulatedDataset::*;
        vec![
            Expedia1, Expedia2, Walmart, Movies, Expedia3, Expedia4, Expedia5, Movies3Way,
        ]
    }

    /// Datasets used by the NN experiment of Table VII.
    pub fn nn_table() -> Vec<EmulatedDataset> {
        use EmulatedDataset::*;
        vec![WalmartSparse, MoviesSparse, Movies3Way]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            EmulatedDataset::Expedia1 => "Expedia1 (Not Sparse)",
            EmulatedDataset::Expedia2 => "Expedia2 (Not Sparse)",
            EmulatedDataset::Walmart => "Walmart (Not Sparse)",
            EmulatedDataset::Movies => "Movies (Not Sparse)",
            EmulatedDataset::Expedia3 => "Expedia3 (Augmented)",
            EmulatedDataset::Expedia4 => "Expedia4 (Augmented)",
            EmulatedDataset::Expedia5 => "Expedia5 (Augmented)",
            EmulatedDataset::WalmartSparse => "Walmart (Sparse)",
            EmulatedDataset::MoviesSparse => "Movies (Sparse)",
            EmulatedDataset::Movies3Way => "Movies-3way",
        }
    }

    /// The published shape parameters (Tables IV and V).
    pub fn shape(&self) -> DatasetShape {
        use EmulatedDataset::*;
        match self {
            Expedia1 => DatasetShape {
                n_s: 942_142,
                d_s: 7,
                dims: vec![(11_938, 8)],
                sparse: false,
            },
            Expedia2 => DatasetShape {
                n_s: 942_142,
                d_s: 7,
                dims: vec![(37_021, 14)],
                sparse: false,
            },
            Walmart => DatasetShape {
                n_s: 421_570,
                d_s: 3,
                dims: vec![(2_340, 9)],
                sparse: false,
            },
            Movies => DatasetShape {
                n_s: 1_000_209,
                d_s: 1,
                dims: vec![(3_706, 21)],
                sparse: false,
            },
            Expedia3 => DatasetShape {
                n_s: 634_133,
                d_s: 7,
                dims: vec![(2_899, 29)],
                sparse: false,
            },
            Expedia4 => DatasetShape {
                n_s: 634_133,
                d_s: 7,
                dims: vec![(2_899, 78)],
                sparse: false,
            },
            Expedia5 => DatasetShape {
                n_s: 634_133,
                d_s: 7,
                dims: vec![(2_899, 218)],
                sparse: false,
            },
            WalmartSparse => DatasetShape {
                n_s: 421_570,
                d_s: 126,
                dims: vec![(2_340, 175)],
                sparse: true,
            },
            MoviesSparse => DatasetShape {
                n_s: 1_000_209,
                d_s: 1,
                dims: vec![(3_706, 21)],
                sparse: true,
            },
            Movies3Way => DatasetShape {
                n_s: 1_000_209,
                d_s: 1,
                dims: vec![(6_040, 4), (3_706, 21)],
                sparse: false,
            },
        }
    }

    /// Generates the emulated dataset scaled by `scale ∈ (0, 1]` (both fact and
    /// dimension cardinalities shrink proportionally, preserving the tuple ratio).
    pub fn generate(&self, scale: f64, seed: u64) -> StoreResult<Workload> {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let shape = self.shape();
        let scaled = DatasetShape {
            n_s: scale_count(shape.n_s, scale, 100),
            d_s: shape.d_s,
            dims: shape
                .dims
                .iter()
                .map(|(n, d)| (scale_count(*n, scale, 10), *d))
                .collect(),
            sparse: shape.sparse,
        };
        let mut workload = generate_from_shape(&scaled, seed)?;
        workload.name = format!("{} (scale {:.3})", self.name(), scale);
        Ok(workload)
    }
}

fn scale_count(n: u64, scale: f64, floor: u64) -> u64 {
    ((n as f64 * scale).round() as u64).max(floor.min(n))
}

/// Generates a feature block for a batch of rows: one-hot in index form
/// (never densified here) when `spec` is given, normal draws otherwise.
fn gen_feature_block(
    rng: &mut StdRng,
    spec: Option<&OneHotSpec>,
    centers: &[Vec<f64>],
    clusters: &[usize],
) -> FeatureBlock {
    match spec {
        Some(spec) => FeatureBlock::generate_onehot(rng, spec, clusters),
        None => FeatureBlock::generate_dense(rng, centers, clusters, 1.0),
    }
}

fn generate_from_shape(shape: &DatasetShape, seed: u64) -> StoreResult<Workload> {
    let db = Database::in_memory();
    let mut rng = seeded(seed);
    let k = EMULATED_CLUSTERS;

    let mut dim_names = Vec::new();
    let mut dim_clusters: Vec<Vec<usize>> = Vec::new();
    let mut onehot = vec![if shape.sparse {
        Some(OneHotSpec::auto(shape.d_s))
    } else {
        None
    }];
    for (i, (n_r, d_r)) in shape.dims.iter().enumerate() {
        let name = format!("R{}", i + 1);
        let centers = cluster_centers(&mut rng, k, *d_r, 6.0);
        let spec = if shape.sparse {
            Some(OneHotSpec::auto(*d_r))
        } else {
            None
        };
        let rel = db.create_relation(Schema::dimension(name.clone(), *d_r))?;
        let mut clusters = Vec::with_capacity(*n_r as usize);
        {
            let mut rel = rel.lock();
            let mut key = 0u64;
            while key < *n_r {
                let rows = GEN_BLOCK_ROWS.min((*n_r - key) as usize);
                let chunk: Vec<usize> = (0..rows).map(|r| (key as usize + r) % k).collect();
                let block = gen_feature_block(&mut rng, spec.as_ref(), &centers, &chunk);
                for (r, &c) in chunk.iter().enumerate() {
                    clusters.push(c);
                    // Storage boundary: the fixed-width page format takes
                    // dense rows; one-hot blocks stay in index form until here.
                    rel.append(&Tuple::dimension(key + r as u64, block.dense_row(r)))?;
                }
                key += rows as u64;
            }
            rel.flush()?;
        }
        dim_names.push(name);
        dim_clusters.push(clusters);
        onehot.push(spec);
    }

    let s_centers = cluster_centers(&mut rng, k, shape.d_s, 6.0);
    let s_spec = onehot[0].clone();
    let s_rel = db.create_relation(Schema::fact_with_target("S", shape.d_s, shape.dims.len()))?;
    {
        let mut rel = s_rel.lock();
        let mut key = 0u64;
        while key < shape.n_s {
            let rows = GEN_BLOCK_ROWS.min((shape.n_s - key) as usize);
            // Foreign keys and clusters first (the cluster drives the feature
            // block), then the whole chunk's features in one block.
            let mut fks_chunk = Vec::with_capacity(rows);
            let mut clusters = Vec::with_capacity(rows);
            for _ in 0..rows {
                let fk0 = rng.gen_range(0..shape.dims[0].0);
                let c = dim_clusters[0][fk0 as usize];
                let mut fks = vec![fk0];
                for (n_r, _) in shape.dims.iter().skip(1) {
                    fks.push(rng.gen_range(0..*n_r));
                }
                fks_chunk.push(fks);
                clusters.push(c);
            }
            let block = gen_feature_block(&mut rng, s_spec.as_ref(), &s_centers, &clusters);
            for (r, (fks, &c)) in fks_chunk.into_iter().zip(clusters.iter()).enumerate() {
                let mean = block.row_mean(r);
                let y = (mean / 4.0).tanh() + c as f64 / k as f64 + normal(&mut rng, 0.0, 0.05);
                rel.append(&Tuple::fact_with_target(
                    key + r as u64,
                    fks,
                    y,
                    block.dense_row(r),
                ))?;
            }
            key += rows as u64;
        }
        rel.flush()?;
    }

    Ok(Workload {
        db,
        spec: if dim_names.len() == 1 {
            JoinSpec::binary("S", dim_names[0].clone())
        } else {
            JoinSpec::multiway("S", dim_names)
        },
        name: "emulated".to_string(),
        generating_clusters: Some(k),
        onehot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_store::batch::scan_all;

    #[test]
    fn shapes_match_tables_iv_and_v() {
        let e1 = EmulatedDataset::Expedia1.shape();
        assert_eq!((e1.n_s, e1.d_s), (942_142, 7));
        assert_eq!(e1.dims, vec![(11_938, 8)]);

        let w = EmulatedDataset::WalmartSparse.shape();
        assert_eq!(w.d_s, 126);
        assert_eq!(w.dims, vec![(2_340, 175)]);
        assert!(w.sparse);

        let e5 = EmulatedDataset::Expedia5.shape();
        assert_eq!(e5.dims[0].1, 218);

        let m3 = EmulatedDataset::Movies3Way.shape();
        assert_eq!(m3.dims.len(), 2);
        assert_eq!(m3.dims[1], (3_706, 21));
    }

    #[test]
    fn table_membership() {
        assert_eq!(EmulatedDataset::gmm_table().len(), 8);
        assert_eq!(EmulatedDataset::nn_table().len(), 3);
        assert_eq!(EmulatedDataset::all().len(), 10);
    }

    #[test]
    fn generate_scaled_preserves_tuple_ratio() {
        let w = EmulatedDataset::Walmart.generate(0.01, 1).unwrap();
        let full = EmulatedDataset::Walmart.shape();
        let rr_full = full.n_s as f64 / full.dims[0].0 as f64;
        let rr = w.tuple_ratio().unwrap();
        assert!(
            (rr - rr_full).abs() / rr_full < 0.05,
            "rr {rr} vs {rr_full}"
        );
        assert_eq!(w.feature_partition().unwrap(), vec![3, 9]);
    }

    #[test]
    fn sparse_generation_is_one_hot() {
        let w = EmulatedDataset::WalmartSparse.generate(0.002, 2).unwrap();
        let s = w.spec.fact_relation(&w.db).unwrap();
        let tuples = scan_all(&s, 32).unwrap();
        assert!(!tuples.is_empty());
        for t in &tuples {
            assert_eq!(t.features.len(), 126);
            assert!(t.features.iter().all(|&f| f == 0.0 || f == 1.0));
            // one-hot blocks: number of ones equals number of categorical columns
            let ones = t.features.iter().filter(|&&f| f == 1.0).count();
            assert_eq!(ones, OneHotSpec::auto(126).num_columns());
            assert!(t.target.is_some());
        }
        // the workload carries the layout as typed metadata
        assert!(w.has_onehot_blocks());
        assert_eq!(w.onehot.len(), 2);
        assert_eq!(w.onehot[0], Some(OneHotSpec::auto(126)));
        assert_eq!(w.onehot[1], Some(OneHotSpec::auto(175)));
    }

    #[test]
    fn dense_datasets_carry_no_onehot_metadata() {
        let w = EmulatedDataset::Walmart.generate(0.002, 2).unwrap();
        assert!(!w.has_onehot_blocks());
        assert_eq!(w.onehot, vec![None, None]);
    }

    #[test]
    fn movies_3way_generates_two_dimension_tables() {
        let w = EmulatedDataset::Movies3Way.generate(0.001, 3).unwrap();
        assert_eq!(w.spec.num_dimensions(), 2);
        assert_eq!(w.feature_partition().unwrap(), vec![1, 4, 21]);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_rejected() {
        let _ = EmulatedDataset::Movies.generate(0.0, 1);
    }

    #[test]
    fn scale_count_floors() {
        assert_eq!(scale_count(1000, 0.5, 10), 500);
        assert_eq!(scale_count(1000, 0.001, 10), 10);
        assert_eq!(scale_count(5, 0.001, 10), 5);
    }
}
