//! Fixture-based negative tests: one deliberately-violating snippet per
//! rule, asserting the exact `file:line` diagnostic the binary would print,
//! plus positive fixtures proving the sanctioned forms pass.
//!
//! The snippets live in string literals, so the lint's own walk over this
//! file sees only masked string contents — the fixtures cannot trip the
//! workspace self-clean test.  Each fixture is checked against the single
//! rule under test (ten rules now overlap on any snippet: an undocumented
//! `pub fn` fixture for `float-eq` would otherwise also trip `pub-doc`).

use fml_lint::check_file;

/// Diagnostics of `rule` only, rendered as the binary prints them.
fn diags(rule: &str, path: &str, src: &str) -> Vec<String> {
    check_file(path, src)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.to_string())
        .collect()
}

/// Whether the snippet is clean under `rule`.
fn clean(rule: &str, path: &str, src: &str) -> bool {
    diags(rule, path, src).is_empty()
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

#[test]
fn unsafe_outside_leaf_modules_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f(p: *mut u8) {\n    unsafe { *p = 0; }\n}\n";
    assert_eq!(
        diags("unsafe-audit", "crates/fml-gmm/src/em.rs", src),
        vec![
            "crates/fml-gmm/src/em.rs:2: [unsafe-audit] `unsafe` code is \
             restricted to the audited leaf modules (fml-linalg/src/simd.rs, \
             fml-linalg/src/pool.rs, crates/shims)"
                .to_string()
        ]
    );
}

#[test]
fn unsafe_block_without_safety_comment_is_flagged_in_allowed_module() {
    let src = "fn f(p: *mut u8) {\n    unsafe { *p = 0; }\n}\n";
    assert_eq!(
        diags("unsafe-audit", "crates/fml-linalg/src/simd.rs", src),
        vec!["crates/fml-linalg/src/simd.rs:2: [unsafe-audit] `unsafe` \
             block/impl lacks a preceding `// SAFETY:` comment stating the \
             invariant"
            .to_string()]
    );
}

#[test]
fn safety_comment_within_window_satisfies_the_audit() {
    let src =
        "fn f(p: *mut u8) {\n    // SAFETY: p is valid by contract.\n    unsafe { *p = 0; }\n}\n";
    assert!(clean("unsafe-audit", "crates/fml-linalg/src/simd.rs", src));
}

#[test]
fn unsafe_impl_requires_safety_comment() {
    let bad = "struct T(*mut ());\nunsafe impl Send for T {}\n";
    let v = diags("unsafe-audit", "crates/fml-linalg/src/pool.rs", bad);
    assert_eq!(v.len(), 1);
    assert!(v[0].contains(":2:"), "{}", v[0]);
    assert!(v[0].contains("SAFETY:"), "{}", v[0]);
    let good = "struct T(*mut ());\n// SAFETY: T is a plain counter.\nunsafe impl Send for T {}\n";
    assert!(clean("unsafe-audit", "crates/fml-linalg/src/pool.rs", good));
}

#[test]
fn unsafe_fn_requires_safety_doc_section() {
    let bad = "/// Does things.\npub unsafe fn zap(p: *mut u8) { }\n";
    let v = diags("unsafe-audit", "crates/fml-linalg/src/simd.rs", bad);
    assert_eq!(v.len(), 1);
    assert!(
        v[0].contains("# Safety"),
        "diagnostic must name the missing doc section: {}",
        v[0]
    );
    let good =
        "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn zap(p: *mut u8) { }\n";
    assert!(clean("unsafe-audit", "crates/fml-linalg/src/simd.rs", good));
}

#[test]
fn unsafe_fn_pointer_type_is_not_audited() {
    // `unsafe fn(…)` in type position declares no executable code.
    let src = "struct S { call: unsafe fn(*mut ()) }\n";
    assert!(clean("unsafe-audit", "crates/fml-linalg/src/pool.rs", src));
}

#[test]
fn unsafe_in_doc_comment_or_string_is_invisible() {
    let src = "/// Misusing this is unsafe in spirit.\npub fn f() { let _ = \"unsafe { }\"; }\n";
    assert!(clean("unsafe-audit", "crates/fml-gmm/src/em.rs", src));
}

// ---------------------------------------------------------------------------
// no-raw-spawn
// ---------------------------------------------------------------------------

#[test]
fn raw_spawn_outside_pool_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(
        diags("no-raw-spawn", "crates/fml-serve/src/scorer.rs", src),
        vec!["crates/fml-serve/src/scorer.rs:2: [no-raw-spawn] \
             `std::thread::spawn` outside the pool: a bare spawn inherits \
             neither the scoped `FML_THREADS` override nor the SIMD level \
             (both are thread-local), silently changing kernel behavior on \
             the new thread; dispatch through `fml_linalg::pool::run`"
            .to_string()]
    );
}

#[test]
fn spawn_is_allowed_in_cfg_test_and_test_files() {
    let in_test_mod =
        "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(clean(
        "no-raw-spawn",
        "crates/fml-serve/src/scorer.rs",
        in_test_mod
    ));
    let in_test_file = "fn t() { std::thread::spawn(|| {}); }\n";
    assert!(clean(
        "no-raw-spawn",
        "crates/fml-linalg/tests/pool_stress.rs",
        in_test_file
    ));
}

#[test]
fn spawn_in_pool_rs_is_allowed() {
    let src = "fn grow() { std::thread::spawn(worker_loop); }\nfn worker_loop() {}\n";
    assert!(clean("no-raw-spawn", "crates/fml-linalg/src/pool.rs", src));
}

// ---------------------------------------------------------------------------
// env-centralization
// ---------------------------------------------------------------------------

#[test]
fn fml_env_read_outside_resolve_sites_is_flagged_with_exact_diagnostic() {
    let src = "pub fn threads() -> usize {\n    std::env::var(\"FML_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n}\n";
    assert_eq!(
        diags("env-centralization", "crates/fml-nn/src/trainer.rs", src),
        vec![
            "crates/fml-nn/src/trainer.rs:2: [env-centralization] `FML_*` \
             environment read outside the designated resolve sites \
             (fml-linalg policy.rs/simd.rs/exec.rs, fml-bench): precedence \
             is builder > env > default, decided in exactly one place — \
             consume the resolved value via `ExecPolicy::resolve` or the \
             `policy`/`simd` accessors instead"
                .to_string()
        ]
    );
}

#[test]
fn non_fml_env_reads_and_designated_sites_pass() {
    let non_fml = "fn home() { let _ = std::env::var(\"HOME\"); }\n";
    assert!(clean(
        "env-centralization",
        "crates/fml-store/src/heap.rs",
        non_fml
    ));
    let fml = "fn raw() { let _ = std::env::var(\"FML_THREADS\"); }\n";
    assert!(clean(
        "env-centralization",
        "crates/fml-linalg/src/policy.rs",
        fml
    ));
    assert!(clean(
        "env-centralization",
        "crates/fml-bench/src/timing.rs",
        fml
    ));
}

#[test]
fn fml_obs_read_outside_its_resolve_sites_is_flagged_with_exact_diagnostic() {
    let src = "pub fn mode() -> u8 {\n    std::env::var(\"FML_OBS\").map(|_| 1).unwrap_or(0)\n}\n";
    assert_eq!(
        diags("env-centralization", "crates/fml-gmm/src/em.rs", src),
        vec![
            "crates/fml-gmm/src/em.rs:2: [env-centralization] `FML_OBS` \
             environment read outside its designated resolve sites (fml-obs, \
             fml-linalg exec.rs, fml-bench): the observability mode follows \
             builder > env > default, decided once — consume \
             `fml_obs::mode()` or `ExecSettings::obs` instead"
                .to_string()
        ]
    );
}

#[test]
fn fml_obs_resolve_sites_pass_but_other_fml_reads_in_fml_obs_are_flagged() {
    let obs = "fn raw() { let _ = std::env::var(\"FML_OBS\"); }\n";
    // The designated resolve sites may read FML_OBS.
    assert!(clean(
        "env-centralization",
        "crates/fml-obs/src/mode.rs",
        obs
    ));
    assert!(clean(
        "env-centralization",
        "crates/fml-linalg/src/exec.rs",
        obs
    ));
    // fml-obs owns only FML_OBS: other FML_* reads there are still flagged.
    let other = "fn raw() { let _ = std::env::var(\"FML_THREADS\"); }\n";
    assert!(!clean(
        "env-centralization",
        "crates/fml-obs/src/registry.rs",
        other
    ));
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

#[test]
fn float_equality_in_production_code_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f(x: f64) -> bool {\n    x == 1.0\n}\n";
    assert_eq!(
        diags("float-eq", "crates/fml-gmm/src/model.rs", src),
        vec!["crates/fml-gmm/src/model.rs:2: [float-eq] floating-point \
             equality in production code: rounding-sensitive values must \
             compare via `f64::to_bits` (bit contracts) or `approx_eq` \
             (tolerances)"
            .to_string()]
    );
}

#[test]
fn float_assert_eq_is_flagged_and_to_bits_escapes() {
    let bad = "pub fn f(x: f64) {\n    assert_eq!(x, 0.5);\n}\n";
    let v = diags("float-eq", "crates/fml-nn/src/loss.rs", bad);
    assert_eq!(v.len(), 1);
    assert!(v[0].contains(":2:"), "{}", v[0]);
    let bits = "pub fn f(x: f64) {\n    assert_eq!(x.to_bits(), 0.5f64.to_bits());\n}\n";
    assert!(clean("float-eq", "crates/fml-nn/src/loss.rs", bits));
    let cmp_bits = "pub fn f(x: f64) -> bool {\n    x.to_bits() == 0.5f64.to_bits()\n}\n";
    assert!(clean("float-eq", "crates/fml-nn/src/loss.rs", cmp_bits));
}

#[test]
fn float_equality_in_test_code_is_the_equivalence_suite_and_passes() {
    let in_test_mod =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::f(), 1.5); }\n}\n";
    assert!(clean("float-eq", "crates/fml-nn/src/loss.rs", in_test_mod));
    let in_test_file = "fn t(a: f64) { assert!(a == 1.5); }\n";
    assert!(clean(
        "float-eq",
        "crates/fml-gmm/tests/equivalence.rs",
        in_test_file
    ));
    let in_testutil = "pub fn close(a: f64) -> bool { a == 0.5 }\n";
    assert!(clean(
        "float-eq",
        "crates/fml-linalg/src/testutil.rs",
        in_testutil
    ));
}

#[test]
fn integer_equality_and_float_inequalities_pass() {
    let src = "pub fn f(x: usize, y: f64) -> bool {\n    x == 3 && y <= 0.5\n}\n";
    assert!(clean("float-eq", "crates/fml-core/src/cost.rs", src));
}

// ---------------------------------------------------------------------------
// no-stray-io
// ---------------------------------------------------------------------------

#[test]
fn stray_println_in_library_code_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f() {\n    println!(\"done\");\n}\n";
    assert_eq!(
        diags("no-stray-io", "crates/fml-store/src/page.rs", src),
        vec![
            "crates/fml-store/src/page.rs:2: [no-stray-io] stray `println!` \
             in library code: console I/O belongs to bins, tests and the \
             warn-once resolve sites; return the condition to the caller \
             instead"
                .to_string()
        ]
    );
}

#[test]
fn dbg_and_eprintln_are_flagged_too() {
    let src = "pub fn f(x: u32) -> u32 {\n    eprintln!(\"warn\");\n    dbg!(x)\n}\n";
    assert_eq!(
        diags("no-stray-io", "crates/fml-store/src/page.rs", src).len(),
        2
    );
}

#[test]
fn io_is_allowed_in_bins_tests_and_benches() {
    let src = "fn main() { println!(\"hello\"); }\n";
    for path in [
        "crates/fml-bench/src/bin/reproduce.rs",
        "crates/fml-lint/src/main.rs",
        "examples/src/bin/quickstart.rs",
        "crates/fml-gmm/tests/equivalence.rs",
        "crates/fml-bench/benches/linalg_kernels.rs",
    ] {
        assert!(clean("no-stray-io", path, src), "{path} must allow I/O");
    }
}

// ---------------------------------------------------------------------------
// panic-policy
// ---------------------------------------------------------------------------

#[test]
fn unwrap_in_result_fn_is_flagged_with_exact_diagnostic() {
    let src = "fn read_page(i: usize) -> Result<u32, String> {\n    \
               let v = table().get(i).unwrap();\n    Ok(v)\n}\n";
    assert_eq!(
        diags("panic-policy", "crates/fml-store/src/heap.rs", src),
        vec![
            "crates/fml-store/src/heap.rs:2: [panic-policy] `.unwrap()` \
             inside `read_page`, a `Result`-returning production function: \
             propagate the typed error (`?`/`ok_or_else`/`map_err`) — a \
             panic here tears down a pool worker mid-batch; provable \
             invariants go in lint-allowlist.txt with the proof as the \
             reason"
                .to_string()
        ]
    );
}

#[test]
fn expect_and_panic_macros_in_result_fns_are_flagged() {
    let expect = "fn load() -> Result<u32, String> {\n    \
                  let v = table().get(0).expect(\"present\");\n    Ok(v)\n}\n";
    let v = diags("panic-policy", "crates/fml-serve/src/persist.rs", expect);
    assert_eq!(v.len(), 1);
    assert!(v[0].contains("`.expect()`"), "{}", v[0]);
    let bang = "fn load() -> Result<u32, String> {\n    panic!(\"corrupt\");\n}\n";
    let v = diags("panic-policy", "crates/fml-serve/src/persist.rs", bang);
    assert_eq!(v.len(), 1);
    assert!(v[0].contains("`panic!`"), "{}", v[0]);
}

#[test]
fn panic_policy_scopes_to_result_fns_of_store_and_serve() {
    // Non-Result functions may assert programmer-error contracts.
    let infallible = "fn len() -> usize {\n    table().get(0).unwrap()\n}\n";
    assert!(clean(
        "panic-policy",
        "crates/fml-store/src/heap.rs",
        infallible
    ));
    // Other crates are out of scope (their policies differ: kernels assert).
    let elsewhere = "fn f() -> Result<u32, String> {\n    Ok(g().unwrap())\n}\n";
    assert!(clean("panic-policy", "crates/fml-gmm/src/em.rs", elsewhere));
    // Test code is exempt: unwrap in tests is the concise failure mode.
    let in_test_mod = "#[cfg(test)]\nmod tests {\n    fn t() -> Result<u32, String> \
                       {\n        Ok(g().unwrap())\n    }\n}\n";
    assert!(clean(
        "panic-policy",
        "crates/fml-store/src/heap.rs",
        in_test_mod
    ));
    // The typed-error propagation the rule demands passes.
    let propagated = "fn read_page(i: usize) -> Result<u32, String> {\n    \
                      table().get(i).ok_or_else(|| format!(\"no page {i}\"))\n}\n";
    assert!(clean(
        "panic-policy",
        "crates/fml-store/src/heap.rs",
        propagated
    ));
}

// ---------------------------------------------------------------------------
// guard-across-dispatch
// ---------------------------------------------------------------------------

#[test]
fn guard_live_across_pool_dispatch_is_flagged_with_exact_diagnostic() {
    let src = "fn flush(m: &std::sync::Mutex<Vec<f64>>) {\n    \
               let guard = m.lock().unwrap();\n    \
               pool::run(4, || { step(); });\n}\n";
    assert_eq!(
        diags(
            "guard-across-dispatch",
            "crates/fml-serve/src/session.rs",
            src
        ),
        vec![
            "crates/fml-serve/src/session.rs:2: [guard-across-dispatch] \
             lock guard `guard` is live across the pool dispatch on line 3: \
             workers contending on this lock while the dispatch blocks is a \
             deadlock/latency hazard the pool's help-first draining cannot \
             save — copy the data out and `drop(guard)` before dispatching"
                .to_string()
        ]
    );
}

#[test]
fn guard_discipline_escapes_pass() {
    // Explicit drop before the dispatch clears the hazard.
    let dropped = "fn flush(m: &std::sync::Mutex<Vec<f64>>) {\n    \
                   let guard = m.lock().unwrap();\n    let n = guard.len();\n    \
                   drop(guard);\n    pool::run(n, || { step(); });\n}\n";
    assert!(clean(
        "guard-across-dispatch",
        "crates/fml-serve/src/session.rs",
        dropped
    ));
    // Copying the data out inside the initializer never binds a guard.
    let copied = "fn flush(m: &std::sync::Mutex<Vec<f64>>) {\n    \
                  let data = m.lock().unwrap().clone();\n    \
                  pool::run(data.len(), || { step(); });\n}\n";
    assert!(clean(
        "guard-across-dispatch",
        "crates/fml-serve/src/session.rs",
        copied
    ));
    // RwLock::read guards are caught too.
    let read_guard = "fn flush(m: &std::sync::RwLock<Vec<f64>>) {\n    \
                      let g = m.read().unwrap();\n    par_chunks(&g, || {});\n}\n";
    assert_eq!(
        diags(
            "guard-across-dispatch",
            "crates/fml-serve/src/session.rs",
            read_guard
        )
        .len(),
        1
    );
    // The pool itself is exempt: holding its own locks across its own
    // dispatch is the audited help-first protocol.
    let in_pool = "fn run_inner(m: &std::sync::Mutex<u32>) {\n    \
                   let g = m.lock().unwrap();\n    pool::run(1, || {});\n    \
                   let _ = g;\n}\n";
    assert!(clean(
        "guard-across-dispatch",
        "crates/fml-linalg/src/pool.rs",
        in_pool
    ));
}

// ---------------------------------------------------------------------------
// nondet-iteration
// ---------------------------------------------------------------------------

#[test]
fn hashmap_iteration_feeding_accumulation_is_flagged_with_exact_diagnostic() {
    let src = "fn total() -> f64 {\n    \
               let map = std::collections::HashMap::from([(1u64, 2.0f64)]);\n    \
               let mut total = 0.0;\n    \
               for (_k, v) in &map {\n        total += v;\n    }\n    total\n}\n";
    assert_eq!(
        diags("nondet-iteration", "crates/fml-gmm/src/em.rs", src),
        vec![
            "crates/fml-gmm/src/em.rs:4: [nondet-iteration] iteration over \
             a hash-ordered container feeds float accumulation: \
             `HashMap`/`HashSet` order is randomized per process, so the \
             sum's rounding differs run to run and breaks the bit-identity \
             oracle — materialize the keys, `sort_unstable()`, and iterate \
             the sorted keys instead"
                .to_string()
        ]
    );
}

#[test]
fn sorted_key_staging_is_the_sanctioned_escape() {
    let src = "fn total(map: &std::collections::HashMap<u64, f64>) -> f64 {\n    \
               let mut total = 0.0;\n    \
               let mut sorted_keys: Vec<u64> = map.keys().copied().collect();\n    \
               sorted_keys.sort_unstable();\n    \
               for k in &sorted_keys {\n        total += map[k];\n    }\n    total\n}\n";
    assert!(clean("nondet-iteration", "crates/fml-gmm/src/em.rs", src));
}

#[test]
fn hashmap_iteration_without_accumulation_passes() {
    // Pure lookups/side-effect-free iteration carries no rounding hazard.
    let src = "fn count() -> usize {\n    \
               let map = std::collections::HashMap::from([(1u64, 2.0f64)]);\n    \
               let mut n = 0;\n    \
               for _ in &map {\n        n = n + 1;\n    }\n    n\n}\n";
    assert!(clean("nondet-iteration", "crates/fml-gmm/src/em.rs", src));
}

#[test]
fn vec_of_maps_taints_its_elements() {
    // Iterating the Vec is fine (Vec order), but iterating an *element*
    // (a map pulled out of it) is hash-ordered.
    let src = "fn total() -> f64 {\n    \
               let arenas = vec![std::collections::HashMap::from([(1u64, 2.0f64)])];\n    \
               let mut total = 0.0;\n    \
               for arena in &arenas {\n        \
               for (_k, v) in arena {\n            total += v;\n        }\n    }\n    \
               total\n}\n";
    let v = diags("nondet-iteration", "crates/fml-nn/src/multiway.rs", src);
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(
        v[0].contains(":5:"),
        "inner loop is the violation: {}",
        v[0]
    );
}

// ---------------------------------------------------------------------------
// alloc-in-hot-loop
// ---------------------------------------------------------------------------

#[test]
fn allocation_inside_kernel_loop_is_flagged_with_exact_diagnostic() {
    let src = "fn kernel(n: usize) {\n    for i in 0..n {\n        \
               let buf = vec![0.0; 4];\n        let _ = (i, buf);\n    }\n}\n";
    assert_eq!(
        diags("alloc-in-hot-loop", "crates/fml-linalg/src/gemm.rs", src),
        vec!["crates/fml-linalg/src/gemm.rs:3: [alloc-in-hot-loop] \
             `vec![…]` allocates inside a kernel loop: a per-iteration heap \
             allocation serializes threads on the allocator and evicts the \
             working set — hoist the buffer out of the loop and reuse it"
            .to_string()]
    );
}

#[test]
fn collect_clone_and_vec_new_in_loops_are_flagged() {
    let src = "fn kernel(rows: &[Vec<f64>]) {\n    for r in rows {\n        \
               let a = Vec::new();\n        let b = r.clone();\n        \
               let c: Vec<f64> = r.iter().map(|x| x * 2.0).collect();\n        \
               use_all(a, b, c);\n    }\n}\n";
    let v = diags("alloc-in-hot-loop", "crates/fml-serve/src/scorer.rs", src);
    let whats: Vec<bool> = ["`Vec::new()`", "`.clone()`", "`.collect()`"]
        .iter()
        .map(|w| v.iter().any(|d| d.contains(w)))
        .collect();
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(whats.iter().all(|&b| b), "{v:?}");
}

#[test]
fn hoisted_buffers_and_non_hot_files_pass() {
    let hoisted = "fn kernel(n: usize) {\n    let mut buf = vec![0.0; 4];\n    \
                   for i in 0..n {\n        buf[0] += i as f64;\n    }\n}\n";
    assert!(clean(
        "alloc-in-hot-loop",
        "crates/fml-linalg/src/gemm.rs",
        hoisted
    ));
    let alloc_in_loop = "fn setup(n: usize) {\n    for _ in 0..n {\n        \
                         let v = Vec::new();\n        push(v);\n    }\n}\n";
    // Cold-path files are out of scope: the rule is about kernels.
    assert!(clean(
        "alloc-in-hot-loop",
        "crates/fml-gmm/src/em.rs",
        alloc_in_loop
    ));
    // Test code inside a hot file is exempt.
    let in_test = "#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                   for _ in 0..4 {\n            let v = vec![1];\n            \
                   drop(v);\n        }\n    }\n}\n";
    assert!(clean(
        "alloc-in-hot-loop",
        "crates/fml-linalg/src/gemm.rs",
        in_test
    ));
}

// ---------------------------------------------------------------------------
// pub-doc
// ---------------------------------------------------------------------------

#[test]
fn undocumented_pub_item_is_flagged_with_exact_diagnostic() {
    let src = "//! Module header.\npub struct Schema { pub cols: usize }\n";
    assert_eq!(
        diags("pub-doc", "crates/fml-core/src/schema.rs", src),
        vec!["crates/fml-core/src/schema.rs:2: [pub-doc] public struct \
             `Schema` has no doc comment: every exported item states its \
             contract — the doc is where invariants like bit-identity and \
             merge order become API, not folklore"
            .to_string()]
    );
}

#[test]
fn missing_module_header_is_flagged_at_line_one() {
    let src = "/// Documented fine.\npub fn f() {}\n";
    assert_eq!(
        diags("pub-doc", "crates/fml-core/src/schema.rs", src),
        vec![
            "crates/fml-core/src/schema.rs:1: [pub-doc] library file has no \
             `//!` module header: the header is what documents the `pub \
             mod` declaration that exports this file"
                .to_string()
        ]
    );
}

#[test]
fn documented_restricted_and_exempt_items_pass() {
    let documented = "//! m\n/// Doc.\npub fn f() {}\n";
    assert!(clean(
        "pub-doc",
        "crates/fml-core/src/schema.rs",
        documented
    ));
    // pub(crate)/pub(super) are not API surface.
    let restricted = "//! m\npub(crate) fn f() {}\npub(super) struct S;\n";
    assert!(clean(
        "pub-doc",
        "crates/fml-core/src/schema.rs",
        restricted
    ));
    // `pub mod x;` is documented by x.rs's own header; `pub use` re-exports
    // carry the source item's docs; trait-impl methods inherit trait docs.
    let exempt = "//! m\npub mod x;\npub use x::Y;\nimpl std::fmt::Debug for Z {\n    \
                  pub fn fmt(&self) {}\n}\n";
    assert!(clean("pub-doc", "crates/fml-core/src/schema.rs", exempt));
    // Bins and tests are exempt wholesale.
    let undocumented = "pub fn f() {}\n";
    assert!(clean(
        "pub-doc",
        "crates/fml-bench/src/bin/reproduce.rs",
        undocumented
    ));
    assert!(clean(
        "pub-doc",
        "crates/fml-gmm/tests/equivalence.rs",
        undocumented
    ));
}
