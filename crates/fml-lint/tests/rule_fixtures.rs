//! Fixture-based negative tests: one deliberately-violating snippet per
//! rule, asserting the exact `file:line` diagnostic the binary would print,
//! plus positive fixtures proving the sanctioned forms pass.
//!
//! The snippets live in string literals, so the lint's own walk over this
//! file sees only masked string contents — the fixtures cannot trip the
//! workspace self-clean test.

use fml_lint::check_file;

fn diags(path: &str, src: &str) -> Vec<String> {
    check_file(path, src)
        .into_iter()
        .map(|v| v.to_string())
        .collect()
}

// ---------------------------------------------------------------------------
// unsafe-audit
// ---------------------------------------------------------------------------

#[test]
fn unsafe_outside_leaf_modules_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f(p: *mut u8) {\n    unsafe { *p = 0; }\n}\n";
    assert_eq!(
        diags("crates/fml-gmm/src/em.rs", src),
        vec![
            "crates/fml-gmm/src/em.rs:2: [unsafe-audit] `unsafe` code is \
             restricted to the audited leaf modules (fml-linalg/src/simd.rs, \
             fml-linalg/src/pool.rs, crates/shims)"
                .to_string()
        ]
    );
}

#[test]
fn unsafe_block_without_safety_comment_is_flagged_in_allowed_module() {
    let src = "fn f(p: *mut u8) {\n    unsafe { *p = 0; }\n}\n";
    assert_eq!(
        diags("crates/fml-linalg/src/simd.rs", src),
        vec!["crates/fml-linalg/src/simd.rs:2: [unsafe-audit] `unsafe` \
             block/impl lacks a preceding `// SAFETY:` comment stating the \
             invariant"
            .to_string()]
    );
}

#[test]
fn safety_comment_within_window_satisfies_the_audit() {
    let src =
        "fn f(p: *mut u8) {\n    // SAFETY: p is valid by contract.\n    unsafe { *p = 0; }\n}\n";
    assert_eq!(
        diags("crates/fml-linalg/src/simd.rs", src),
        Vec::<String>::new()
    );
}

#[test]
fn unsafe_impl_requires_safety_comment() {
    let bad = "struct T(*mut ());\nunsafe impl Send for T {}\n";
    let v = check_file("crates/fml-linalg/src/pool.rs", bad);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].line, 2);
    assert!(v[0].message.contains("SAFETY:"), "{}", v[0].message);
    let good = "struct T(*mut ());\n// SAFETY: T is a plain counter.\nunsafe impl Send for T {}\n";
    assert!(check_file("crates/fml-linalg/src/pool.rs", good).is_empty());
}

#[test]
fn unsafe_fn_requires_safety_doc_section() {
    let bad = "/// Does things.\npub unsafe fn zap(p: *mut u8) { }\n";
    let v = check_file("crates/fml-linalg/src/simd.rs", bad);
    assert_eq!(v.len(), 1);
    assert!(
        v[0].message.contains("# Safety"),
        "diagnostic must name the missing doc section: {}",
        v[0].message
    );
    let good =
        "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn zap(p: *mut u8) { }\n";
    assert!(check_file("crates/fml-linalg/src/simd.rs", good).is_empty());
}

#[test]
fn unsafe_fn_pointer_type_is_not_audited() {
    // `unsafe fn(…)` in type position declares no executable code.
    let src = "struct S { call: unsafe fn(*mut ()) }\n";
    assert!(check_file("crates/fml-linalg/src/pool.rs", src).is_empty());
}

#[test]
fn unsafe_in_doc_comment_or_string_is_invisible() {
    let src = "/// Misusing this is unsafe in spirit.\npub fn f() { let _ = \"unsafe { }\"; }\n";
    assert!(check_file("crates/fml-gmm/src/em.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// no-raw-spawn
// ---------------------------------------------------------------------------

#[test]
fn raw_spawn_outside_pool_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n}\n";
    assert_eq!(
        diags("crates/fml-serve/src/scorer.rs", src),
        vec!["crates/fml-serve/src/scorer.rs:2: [no-raw-spawn] \
             `std::thread::spawn` outside the pool: a bare spawn inherits \
             neither the scoped `FML_THREADS` override nor the SIMD level \
             (both are thread-local), silently changing kernel behavior on \
             the new thread; dispatch through `fml_linalg::pool::run`"
            .to_string()]
    );
}

#[test]
fn spawn_is_allowed_in_cfg_test_and_test_files() {
    let in_test_mod =
        "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(check_file("crates/fml-serve/src/scorer.rs", in_test_mod).is_empty());
    let in_test_file = "fn t() { std::thread::spawn(|| {}); }\n";
    assert!(check_file("crates/fml-linalg/tests/pool_stress.rs", in_test_file).is_empty());
}

#[test]
fn spawn_in_pool_rs_is_allowed() {
    let src = "fn grow() { std::thread::spawn(worker_loop); }\nfn worker_loop() {}\n";
    assert!(check_file("crates/fml-linalg/src/pool.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// env-centralization
// ---------------------------------------------------------------------------

#[test]
fn fml_env_read_outside_resolve_sites_is_flagged_with_exact_diagnostic() {
    let src = "pub fn threads() -> usize {\n    std::env::var(\"FML_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n}\n";
    assert_eq!(
        diags("crates/fml-nn/src/trainer.rs", src),
        vec![
            "crates/fml-nn/src/trainer.rs:2: [env-centralization] `FML_*` \
             environment read outside the designated resolve sites \
             (fml-linalg policy.rs/simd.rs/exec.rs, fml-bench): precedence \
             is builder > env > default, decided in exactly one place — \
             consume the resolved value via `ExecPolicy::resolve` or the \
             `policy`/`simd` accessors instead"
                .to_string()
        ]
    );
}

#[test]
fn non_fml_env_reads_and_designated_sites_pass() {
    let non_fml = "fn home() { let _ = std::env::var(\"HOME\"); }\n";
    assert!(check_file("crates/fml-store/src/heap.rs", non_fml).is_empty());
    let fml = "fn raw() { let _ = std::env::var(\"FML_THREADS\"); }\n";
    assert!(check_file("crates/fml-linalg/src/policy.rs", fml).is_empty());
    assert!(check_file("crates/fml-bench/src/timing.rs", fml).is_empty());
}

// ---------------------------------------------------------------------------
// float-eq
// ---------------------------------------------------------------------------

#[test]
fn float_equality_in_production_code_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f(x: f64) -> bool {\n    x == 1.0\n}\n";
    assert_eq!(
        diags("crates/fml-gmm/src/model.rs", src),
        vec!["crates/fml-gmm/src/model.rs:2: [float-eq] floating-point \
             equality in production code: rounding-sensitive values must \
             compare via `f64::to_bits` (bit contracts) or `approx_eq` \
             (tolerances)"
            .to_string()]
    );
}

#[test]
fn float_assert_eq_is_flagged_and_to_bits_escapes() {
    let bad = "pub fn f(x: f64) {\n    assert_eq!(x, 0.5);\n}\n";
    let v = check_file("crates/fml-nn/src/loss.rs", bad);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].line, 2);
    let bits = "pub fn f(x: f64) {\n    assert_eq!(x.to_bits(), 0.5f64.to_bits());\n}\n";
    assert!(check_file("crates/fml-nn/src/loss.rs", bits).is_empty());
    let cmp_bits = "pub fn f(x: f64) -> bool {\n    x.to_bits() == 0.5f64.to_bits()\n}\n";
    assert!(check_file("crates/fml-nn/src/loss.rs", cmp_bits).is_empty());
}

#[test]
fn float_equality_in_test_code_is_the_equivalence_suite_and_passes() {
    let in_test_mod =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(super::f(), 1.5); }\n}\n";
    assert!(check_file("crates/fml-nn/src/loss.rs", in_test_mod).is_empty());
    let in_test_file = "fn t(a: f64) { assert!(a == 1.5); }\n";
    assert!(check_file("crates/fml-gmm/tests/equivalence.rs", in_test_file).is_empty());
    let in_testutil = "pub fn close(a: f64) -> bool { a == 0.5 }\n";
    assert!(check_file("crates/fml-linalg/src/testutil.rs", in_testutil).is_empty());
}

#[test]
fn integer_equality_and_float_inequalities_pass() {
    let src = "pub fn f(x: usize, y: f64) -> bool {\n    x == 3 && y <= 0.5\n}\n";
    assert!(check_file("crates/fml-core/src/cost.rs", src).is_empty());
}

// ---------------------------------------------------------------------------
// no-stray-io
// ---------------------------------------------------------------------------

#[test]
fn stray_println_in_library_code_is_flagged_with_exact_diagnostic() {
    let src = "pub fn f() {\n    println!(\"done\");\n}\n";
    assert_eq!(
        diags("crates/fml-store/src/page.rs", src),
        vec![
            "crates/fml-store/src/page.rs:2: [no-stray-io] stray `println!` \
             in library code: console I/O belongs to bins, tests and the \
             warn-once resolve sites; return the condition to the caller \
             instead"
                .to_string()
        ]
    );
}

#[test]
fn dbg_and_eprintln_are_flagged_too() {
    let src = "pub fn f(x: u32) -> u32 {\n    eprintln!(\"warn\");\n    dbg!(x)\n}\n";
    let rules: Vec<&str> = check_file("crates/fml-store/src/page.rs", src)
        .iter()
        .map(|v| v.rule)
        .collect();
    assert_eq!(rules, vec!["no-stray-io", "no-stray-io"]);
}

#[test]
fn io_is_allowed_in_bins_tests_and_benches() {
    let src = "fn main() { println!(\"hello\"); }\n";
    for path in [
        "crates/fml-bench/src/bin/reproduce.rs",
        "crates/fml-lint/src/main.rs",
        "examples/src/bin/quickstart.rs",
        "crates/fml-gmm/tests/equivalence.rs",
        "crates/fml-bench/benches/linalg_kernels.rs",
    ] {
        assert!(check_file(path, src).is_empty(), "{path} must allow I/O");
    }
}
