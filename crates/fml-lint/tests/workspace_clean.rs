//! The workspace self-clean gate: `cargo test -q` runs the full lint over
//! the live tree, so a violation introduced anywhere in the workspace fails
//! tier-1 — not just the dedicated CI step.

use std::path::Path;

use fml_lint::{run_workspace, Report, ALLOWLIST_FILE};

fn workspace_root() -> &'static Path {
    // crates/fml-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("fml-lint sits two levels below the workspace root")
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "resolved workspace root has no Cargo.toml: {}",
        root.display()
    );
    let report: Report = run_workspace(root).expect("walk workspace sources");
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.is_clean(),
        "fml-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
    // Sanity: the walk actually visited the tree (8 crates + examples).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn unsafe_audit_has_zero_allowlist_entries() {
    // The acceptance bar for the unsafe audit: every `unsafe` in the tree
    // carries its SAFETY justification in-source, with no exceptions filed.
    let allowlist = workspace_root().join(ALLOWLIST_FILE);
    let text = std::fs::read_to_string(&allowlist).expect("read allowlist");
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(
            !line.starts_with("unsafe-audit"),
            "the unsafe audit must hold without allowlist exceptions, found: {line}"
        );
    }
}

#[test]
fn stale_allowlist_entry_fails_the_lint() {
    // Simulate an allowlist whose entry matches nothing: parse it and apply
    // it to an empty violation set — the entry must come back as stale, the
    // condition `run_workspace` converts into a `stale-allowlist` violation.
    let entries = fml_lint::allowlist::parse(
        "# header\nfloat-eq crates/fml-gmm/src/model.rs long-since fixed\n",
    )
    .expect("parse");
    assert_eq!(entries.len(), 1);
    let (kept, stale) = fml_lint::allowlist::apply(&entries, Vec::new());
    assert!(kept.is_empty());
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].rule, "float-eq");
    assert_eq!(stale[0].path, "crates/fml-gmm/src/model.rs");
    assert_eq!(
        stale[0].line, 2,
        "stale diagnostic points at the entry line"
    );
}
