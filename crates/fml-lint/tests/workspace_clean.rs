//! The workspace self-clean gate: `cargo test -q` runs the full lint over
//! the live tree, so a violation introduced anywhere in the workspace fails
//! tier-1 — not just the dedicated CI step.  The gate covers all ten rules:
//! zero deny violations survive the allowlist, every warning is justified
//! by a reasoned `warn` entry, and the JSON report round-trips.

use std::path::Path;

use fml_lint::{run_workspace, Report, ALLOWLIST_FILE};

fn workspace_root() -> &'static Path {
    // crates/fml-lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("fml-lint sits two levels below the workspace root")
}

fn workspace_report() -> Report {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "resolved workspace root has no Cargo.toml: {}",
        root.display()
    );
    run_workspace(root).expect("walk workspace sources")
}

#[test]
fn workspace_is_lint_clean() {
    let report = workspace_report();
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.is_clean(),
        "fml-lint found {} violation(s):\n{}",
        rendered.len(),
        rendered.join("\n")
    );
    // Sanity: the walk actually visited the tree (8 crates + examples).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

#[test]
fn every_warning_is_covered_by_a_reasoned_warn_entry() {
    // Warnings are non-fatal by design, but only because a `warn` allowlist
    // entry argued the hazard in review.  Re-check the chain here: every
    // warning the run reports must match a parsed `warn` entry whose reason
    // is non-trivial prose, and warnings must stay confined to rules that
    // have such entries.
    let report = workspace_report();
    let text =
        std::fs::read_to_string(workspace_root().join(ALLOWLIST_FILE)).expect("read allowlist");
    let entries = fml_lint::allowlist::parse(&text).expect("parse allowlist");
    for w in &report.warnings {
        let entry = entries
            .iter()
            .find(|e| {
                e.warn && e.rule == w.rule && fml_lint::allowlist::glob_match(&e.path, &w.path)
            })
            .unwrap_or_else(|| panic!("warning without a covering warn entry: {w}"));
        assert!(
            entry.reason.split_whitespace().count() >= 4,
            "warn entry for `{}` needs a real reason, got {:?}",
            entry.rule,
            entry.reason
        );
    }
}

#[test]
fn allowlist_entries_reference_known_rules_and_carry_reasons() {
    // Zero unexplained entries: every entry names a rule the binary actually
    // runs (a typo'd rule name would silently never match and only surface
    // as stale) and carries a reasoned justification.
    let text =
        std::fs::read_to_string(workspace_root().join(ALLOWLIST_FILE)).expect("read allowlist");
    let entries = fml_lint::allowlist::parse(&text).expect("parse allowlist");
    assert!(!entries.is_empty(), "allowlist unexpectedly empty");
    let known: Vec<&str> = fml_lint::report::RULES.iter().map(|r| r.name).collect();
    for e in &entries {
        assert!(
            known.contains(&e.rule.as_str()),
            "allowlist entry names unknown rule {:?} (line {})",
            e.rule,
            e.line
        );
        assert!(
            e.reason.split_whitespace().count() >= 4,
            "allowlist entry at line {} needs a real reason, got {:?}",
            e.line,
            e.reason
        );
    }
}

#[test]
fn unsafe_audit_and_guard_rules_have_zero_allowlist_entries() {
    // The acceptance bar for the unsafe audit and the lock-discipline rule:
    // both hold over the whole tree without exceptions filed.
    let text =
        std::fs::read_to_string(workspace_root().join(ALLOWLIST_FILE)).expect("read allowlist");
    let entries = fml_lint::allowlist::parse(&text).expect("parse allowlist");
    for e in &entries {
        assert!(
            e.rule != "unsafe-audit" && e.rule != "guard-across-dispatch",
            "`{}` must hold without allowlist exceptions, found entry at line {}",
            e.rule,
            e.line
        );
    }
}

#[test]
fn stale_allowlist_entry_fails_the_lint() {
    // Simulate an allowlist whose entry matches nothing: parse it and apply
    // it to an empty violation set — the entry must come back as stale, the
    // condition `run_workspace` converts into a `stale-allowlist` violation.
    // `warn` entries are held to the same bar.
    let entries = fml_lint::allowlist::parse(
        "# header\nfloat-eq crates/fml-gmm/src/model.rs long-since fixed\n\
         warn alloc-in-hot-loop crates/fml-gmm/src/*.rs long-since hoisted\n",
    )
    .expect("parse");
    assert_eq!(entries.len(), 2);
    let applied = fml_lint::allowlist::apply(&entries, Vec::new());
    assert!(applied.deny.is_empty() && applied.warnings.is_empty());
    assert_eq!(applied.stale.len(), 2);
    assert_eq!(applied.stale[0].rule, "float-eq");
    assert_eq!(applied.stale[0].path, "crates/fml-gmm/src/model.rs");
    assert_eq!(
        applied.stale[0].line, 2,
        "stale diagnostic points at the entry line"
    );
    assert!(applied.stale[1].warn, "stale warn entries are reported too");
}

#[test]
fn workspace_json_report_round_trips() {
    // The JSON artifact CI uploads must faithfully encode the live run:
    // serialize the real workspace report and read it back.
    let report = workspace_report();
    let json = fml_lint::report::to_json(&report);
    let parsed = fml_lint::report::parse_report_json(&json).expect("parse emitted JSON");
    assert_eq!(parsed.clean, report.is_clean());
    assert_eq!(parsed.files_scanned, report.files_scanned);
    assert_eq!(parsed.violations.len(), report.violations.len());
    assert_eq!(parsed.warnings.len(), report.warnings.len());
    for (p, v) in parsed.warnings.iter().zip(&report.warnings) {
        assert_eq!(p.rule, v.rule);
        assert_eq!(p.path, v.path);
        assert_eq!(p.line, v.line);
        assert_eq!(p.message, v.message);
    }
    let suppressed: Vec<(String, usize)> = report
        .suppressed
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    assert_eq!(parsed.suppressed, suppressed);
}
