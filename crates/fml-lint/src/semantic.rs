//! The syntax-aware rules: five analyses over the [`crate::parse::Tree`]
//! that the token/line rules structurally cannot express.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-policy` | no `unwrap`/`expect`/`panic!`-family inside `Result`-returning production functions of `fml-store`/`fml-serve` — the typed error propagates |
//! | `guard-across-dispatch` | no `Mutex`/`RwLock` guard binding live across a `pool::run`/`par_chunks*`/`par_row_bands*` call — a static deadlock/latency hazard |
//! | `nondet-iteration` | no `HashMap`/`HashSet` iteration feeding float accumulation — hash order is per-process random and breaks the bit-identity oracle |
//! | `alloc-in-hot-loop` | no `Vec::new`/`vec!`/`to_vec`/`collect`/`clone` inside loops of the kernel files and the scorer |
//! | `pub-doc` | every externally-`pub` item in library crates carries a doc comment |
//!
//! Scope classification (test/bin/library) is shared with the token rules
//! via `rules::Context`; each rule narrows further by path where the
//! invariant is path-specific.

use crate::lexer::{Comment, Token, TokenKind};
use crate::parse::{ItemKind, LetBinding, Tree};
use crate::rules::Context;
use crate::rules::Violation;

/// `panic-policy` rule name.
pub const RULE_PANIC: &str = "panic-policy";
/// `guard-across-dispatch` rule name.
pub const RULE_GUARD: &str = "guard-across-dispatch";
/// `nondet-iteration` rule name.
pub const RULE_NONDET: &str = "nondet-iteration";
/// `alloc-in-hot-loop` rule name.
pub const RULE_ALLOC: &str = "alloc-in-hot-loop";
/// `pub-doc` rule name.
pub const RULE_PUB_DOC: &str = "pub-doc";

/// Crates whose production `Result` paths must propagate typed errors: the
/// persistence and serving layers, where a panic tears down a pool worker
/// mid-batch or poisons session state.
const PANIC_SCOPE: [&str; 2] = ["crates/fml-store/src/", "crates/fml-serve/src/"];

/// The pool implementation itself may hold its own locks across its own
/// dispatch — that is the help-first protocol, audited by hand + TSan.
const GUARD_EXEMPT: [&str; 1] = ["crates/fml-linalg/src/pool.rs"];

/// Kernel files where a per-iteration allocation serializes on the global
/// allocator: matched by file name under any crate `src/`.
const HOT_FILE_NAMES: [&str; 4] = ["/gemm.rs", "/simd.rs", "/sparse.rs", "/csr.rs"];
/// Non-kernel files with hot row loops, matched exactly.
const HOT_FILE_EXACT: [&str; 1] = ["crates/fml-serve/src/scorer.rs"];

/// Panic-family macros (the `!` is checked at the call site).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Method idents whose presence in a loop means a fresh allocation per
/// iteration (`.to_vec()`, `.collect()`, `.clone()`).
const ALLOC_METHODS: [&str; 3] = ["to_vec", "collect", "clone"];

/// Idents that testify a loop body accumulates floats: compound assignment
/// is caught via punctuation, these catch the kernel entry points.
const ACCUM_IDENTS: [&str; 10] = [
    "axpy",
    "axpy_into",
    "ger",
    "ger_with",
    "ger_cols",
    "add_outer",
    "add_assign",
    "record",
    "fma",
    "accumulate",
];

/// Idents in a `for` head that sanction the iteration: the keys were
/// materialized and sorted first, so the order is deterministic.
const NONDET_ESCAPES: [&str; 3] = ["sorted_keys", "sorted", "sort_unstable"];

/// Runs the five syntax-aware rules over one parsed file.
pub(crate) fn check(
    ctx: &Context,
    tokens: &[Token],
    comments: &[Comment],
    tree: &Tree,
    out: &mut Vec<Violation>,
) {
    rule_panic_policy(ctx, tokens, tree, out);
    rule_guard_across_dispatch(ctx, tokens, tree, out);
    rule_nondet_iteration(ctx, tokens, tree, out);
    rule_alloc_in_hot_loop(ctx, tokens, tree, out);
    rule_pub_doc(ctx, tokens, comments, tree, out);
}

fn text(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

// ---------------------------------------------------------------------------
// Rule 6: panic-policy
// ---------------------------------------------------------------------------

fn rule_panic_policy(ctx: &Context, tokens: &[Token], tree: &Tree, out: &mut Vec<Violation>) {
    if !PANIC_SCOPE.iter().any(|p| ctx.rel_path.starts_with(p)) || ctx.test_file || ctx.bin_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        let what = match t.text.as_str() {
            // `.unwrap()` / `.expect(…)` method calls only — a local fn
            // named `unwrap` would be pathological enough to flag anyway.
            "unwrap" | "expect"
                if i > 0 && text(tokens, i - 1) == "." && text(tokens, i + 1) == "(" =>
            {
                format!("`.{}()`", t.text)
            }
            m if PANIC_MACROS.contains(&m) && text(tokens, i + 1) == "!" => {
                format!("`{m}!`")
            }
            _ => continue,
        };
        let Some(f) = tree.enclosing_fn(t.line) else {
            continue;
        };
        if !f.returns_result() {
            continue;
        }
        out.push(ctx.violation(
            RULE_PANIC,
            t.line,
            format!(
                "{what} inside `{}`, a `Result`-returning production function: \
                 propagate the typed error (`?`/`ok_or_else`/`map_err`) — a panic \
                 here tears down a pool worker mid-batch; provable invariants go \
                 in lint-allowlist.txt with the proof as the reason",
                f.name
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 7: guard-across-dispatch
// ---------------------------------------------------------------------------

/// Whether the binding's initializer is a lock acquisition: it contains a
/// zero-argument `.lock()`/`.read()`/`.write()` call (the zero-argument
/// form separates `Mutex::lock`/`RwLock::read` from `io::Read::read(&mut
/// buf)`), and everything after it is guard-preserving (`.unwrap()`,
/// `.expect("…")`, `?`).
fn guard_acquisition(tokens: &[Token], l: &LetBinding) -> bool {
    let (start, end) = l.init;
    let toks = &tokens[start.min(tokens.len())..end.min(tokens.len())];
    let mut acquired_at = None;
    for i in 0..toks.len() {
        if matches!(toks[i].text.as_str(), "lock" | "read" | "write")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map(|t| t.text.as_str()) == Some("(")
            && toks.get(i + 2).map(|t| t.text.as_str()) == Some(")")
        {
            acquired_at = Some(i + 3);
        }
    }
    let Some(after) = acquired_at else {
        return false;
    };
    toks[after..].iter().all(|t| {
        matches!(t.text.as_str(), "." | "unwrap" | "expect" | "(" | ")" | "?")
            || t.kind == TokenKind::Str
    })
}

/// Token index and line of the first pool-dispatch call at index `>= from`
/// on a line `<= until`.
fn first_dispatch(tokens: &[Token], from: usize, until: usize) -> Option<(usize, usize)> {
    for i in from..tokens.len() {
        if tokens[i].line > until {
            return None;
        }
        let is_pool_run = tokens[i].text == "pool"
            && text(tokens, i + 1) == "::"
            && text(tokens, i + 2).starts_with("run");
        let is_par_helper = tokens[i].kind == TokenKind::Ident
            && (tokens[i].text.starts_with("par_chunks")
                || tokens[i].text.starts_with("par_row_bands"))
            && text(tokens, i + 1) == "(";
        if is_pool_run || is_par_helper {
            return Some((i, tokens[i].line));
        }
    }
    None
}

/// Token index of `drop(<name>)` at index `>= from` on a line `<= until`.
fn explicit_drop(tokens: &[Token], name: &str, from: usize, until: usize) -> Option<usize> {
    for i in from..tokens.len() {
        if tokens[i].line > until {
            return None;
        }
        if tokens[i].text == "drop"
            && text(tokens, i + 1) == "("
            && text(tokens, i + 2) == name
            && text(tokens, i + 3) == ")"
        {
            return Some(i);
        }
    }
    None
}

fn rule_guard_across_dispatch(
    ctx: &Context,
    tokens: &[Token],
    tree: &Tree,
    out: &mut Vec<Violation>,
) {
    if GUARD_EXEMPT.contains(&ctx.rel_path) || ctx.rel_path.starts_with("crates/shims/") {
        return;
    }
    for l in &tree.lets {
        if ctx.in_test(l.line) || l.names.len() != 1 || !guard_acquisition(tokens, l) {
            continue;
        }
        let name = &l.names[0];
        if name == "_" {
            continue; // `let _ = m.lock()` drops the guard immediately
        }
        let drop_at = explicit_drop(tokens, name, l.init.1, l.scope_end);
        let Some((dispatch_idx, dispatch_line)) = first_dispatch(tokens, l.init.1, l.scope_end)
        else {
            continue;
        };
        if drop_at.map(|d| d < dispatch_idx).unwrap_or(false) {
            continue; // guard explicitly dropped before the dispatch
        }
        out.push(ctx.violation(
            RULE_GUARD,
            l.line,
            format!(
                "lock guard `{name}` is live across the pool dispatch on line \
                 {dispatch_line}: workers contending on this lock while the \
                 dispatch blocks is a deadlock/latency hazard the pool's \
                 help-first draining cannot save — copy the data out and \
                 `drop({name})` before dispatching"
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 8: nondet-iteration
// ---------------------------------------------------------------------------

/// Classification of a binding that holds hash-ordered state.
struct HashBind {
    name: String,
    /// `Vec<HashMap<…>>`-style: iterating the binding itself is fine (Vec
    /// order), but its *elements* are hash-ordered.
    container: bool,
}

fn classify_hash_binds(tokens: &[Token], tree: &Tree) -> Vec<HashBind> {
    let mut binds = Vec::new();
    for l in &tree.lets {
        if l.names.len() != 1 {
            continue;
        }
        let ty_hash = l.ty.iter().any(|t| t == "HashMap" || t == "HashSet");
        let ty_vec = l.ty.iter().any(|t| t == "Vec");
        let init_toks = &tokens[l.init.0.min(tokens.len())..l.init.1.min(tokens.len())];
        let init_hash = init_toks
            .iter()
            .any(|t| t.text == "HashMap" || t.text == "HashSet");
        let init_vec = init_toks.iter().any(|t| t.text == "Vec" || t.text == "vec");
        let (is_hash, container) = if ty_hash {
            (true, ty_vec)
        } else if !l.ty.is_empty() {
            // An explicit non-hash annotation (e.g. `Vec<u64>` of sorted
            // keys) overrides whatever the initializer mentions.
            (false, false)
        } else if init_hash {
            (true, init_vec)
        } else {
            (false, false)
        };
        if is_hash {
            binds.push(HashBind {
                name: l.names[0].clone(),
                container,
            });
        }
    }
    binds
}

fn rule_nondet_iteration(ctx: &Context, tokens: &[Token], tree: &Tree, out: &mut Vec<Violation>) {
    if ctx.test_file || ctx.bin_file {
        return;
    }
    let binds = classify_hash_binds(tokens, tree);
    // Pattern idents bound by iterating a container-of-maps: they hold
    // `&HashMap` references, so iterating *them* is hash-ordered.
    let mut tainted: Vec<String> = Vec::new();
    // `for_loops` is completion-ordered (inner loops first); taint must flow
    // outer→inner, so process in source order.
    let mut order: Vec<&crate::parse::ForLoop> = tree.for_loops.iter().collect();
    order.sort_by_key(|f| f.line);
    for fl in order {
        if ctx.in_test(fl.line) {
            continue;
        }
        let head = &tokens[fl.head.0.min(tokens.len())..fl.head.1.min(tokens.len())];
        if head
            .iter()
            .any(|t| NONDET_ESCAPES.contains(&t.text.as_str()))
        {
            continue; // keys were materialized and sorted: deterministic
        }
        let mut hash_iter = false;
        for (i, t) in head.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let indexed = head.get(i + 1).map(|n| n.text == "[").unwrap_or(false);
            if let Some(b) = binds.iter().find(|b| b.name == t.text) {
                if !b.container || indexed {
                    hash_iter = true; // the map itself, or `maps[i]`
                } else {
                    // Iterating the Vec of maps: the pattern now binds maps.
                    tainted.extend(fl.pat.iter().cloned());
                }
            }
            if tainted.contains(&t.text) {
                // A tainted ident may itself be a container element that is
                // a map — iterating it is hash-ordered.
                hash_iter = true;
            }
        }
        if !hash_iter {
            continue;
        }
        let accumulates = tokens.iter().any(|t| {
            fl.body.contains(t.line)
                && (matches!(t.text.as_str(), "+=" | "-=" | "*=")
                    || (t.kind == TokenKind::Ident && ACCUM_IDENTS.contains(&t.text.as_str())))
        });
        if !accumulates {
            continue;
        }
        out.push(
            ctx.violation(
                RULE_NONDET,
                fl.line,
                "iteration over a hash-ordered container feeds float accumulation: \
             `HashMap`/`HashSet` order is randomized per process, so the sum's \
             rounding differs run to run and breaks the bit-identity oracle — \
             materialize the keys, `sort_unstable()`, and iterate the sorted \
             keys instead"
                    .to_string(),
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 9: alloc-in-hot-loop
// ---------------------------------------------------------------------------

fn rule_alloc_in_hot_loop(ctx: &Context, tokens: &[Token], tree: &Tree, out: &mut Vec<Violation>) {
    let hot = HOT_FILE_EXACT.contains(&ctx.rel_path)
        || (ctx.rel_path.contains("/src/")
            && HOT_FILE_NAMES.iter().any(|n| ctx.rel_path.ends_with(n)));
    if !hot || ctx.test_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !tree.in_loop(t.line) || ctx.in_test(t.line) {
            continue;
        }
        let what = if t.text == "Vec" && text(tokens, i + 1) == "::" && text(tokens, i + 2) == "new"
        {
            "`Vec::new()`".to_string()
        } else if t.text == "vec" && text(tokens, i + 1) == "!" {
            "`vec![…]`".to_string()
        } else if t.kind == TokenKind::Ident
            && ALLOC_METHODS.contains(&t.text.as_str())
            && i > 0
            && text(tokens, i - 1) == "."
            && matches!(text(tokens, i + 1), "(" | "::")
        {
            format!("`.{}()`", t.text)
        } else {
            continue;
        };
        out.push(ctx.violation(
            RULE_ALLOC,
            t.line,
            format!(
                "{what} allocates inside a kernel loop: a per-iteration heap \
                 allocation serializes threads on the allocator and evicts the \
                 working set — hoist the buffer out of the loop and reuse it"
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 10: pub-doc
// ---------------------------------------------------------------------------

fn rule_pub_doc(
    ctx: &Context,
    tokens: &[Token],
    comments: &[Comment],
    tree: &Tree,
    out: &mut Vec<Violation>,
) {
    if ctx.test_file || ctx.bin_file {
        return;
    }
    // A `pub mod name;` declaration is documented by the module *file*'s
    // `//!` header (`missing_docs` semantics), which this per-file pass
    // cannot see — so the requirement flips: every library file must open
    // with a `//!` header, and `mod` declarations are exempt below.
    let first_code_line = tokens.first().map(|t| t.line).unwrap_or(1);
    let has_header = comments.iter().any(|c| {
        c.line <= first_code_line && (c.text.starts_with("//!") || c.text.starts_with("/*!"))
    });
    if !has_header {
        out.push(
            ctx.violation(
                RULE_PUB_DOC,
                1,
                "library file has no `//!` module header: the header is what \
             documents the `pub mod` declaration that exports this file"
                    .to_string(),
            ),
        );
    }
    for item in &tree.items {
        if !item.is_pub
            || item.pub_restricted
            || item.has_doc
            || item.in_trait_impl
            || ctx.in_test(item.line)
            || matches!(
                item.kind,
                ItemKind::Use
                    | ItemKind::Macro
                    | ItemKind::InherentImpl
                    | ItemKind::TraitImpl
                    | ItemKind::Mod
            )
        {
            continue;
        }
        let name = if item.name.is_empty() {
            String::new()
        } else {
            format!(" `{}`", item.name)
        };
        out.push(ctx.violation(
            RULE_PUB_DOC,
            item.line,
            format!(
                "public {}{name} has no doc comment: every exported item states \
                 its contract — the doc is where invariants like bit-identity \
                 and merge order become API, not folklore",
                item.kind.keyword()
            ),
        ));
    }
}
