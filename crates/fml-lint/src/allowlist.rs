//! The checked-in plain-text allowlist of justified exceptions.
//!
//! Format (`lint-allowlist.txt` at the workspace root), parsed with no
//! serde — one entry per line:
//!
//! ```text
//! # comment
//! <rule-name> <workspace-relative-glob> <reason…>
//! warn <rule-name> <workspace-relative-glob> <reason…>
//! ```
//!
//! A plain entry **suppresses** every violation of `rule-name` in files
//! matching the glob; a `warn` entry **downgrades** them to warnings —
//! printed, reported, but non-fatal — for hazards that are understood and
//! tracked rather than proven impossible.  File granularity keeps entries
//! stable across unrelated edits, and the reason string forces each
//! exception to be argued in review.
//!
//! Globs support `*` (any run of non-`/` characters), `**` (any run
//! including `/`), and `?` (one non-`/` character); everything else matches
//! literally, so a plain path is a valid glob.  An entry that matches
//! **no** violation is itself an error (stale): allowlists only ever grow
//! unless something makes them shrink, so stale entries fail the lint until
//! removed.

use crate::rules::Violation;
use std::collections::BTreeMap;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule the entry applies to.
    pub rule: String,
    /// Workspace-relative path glob (`*`/`**`/`?`; a literal path matches
    /// itself).
    pub path: String,
    /// Why the exception is justified — mandatory.
    pub reason: String,
    /// 1-based line in the allowlist file (for stale-entry diagnostics).
    pub line: usize,
    /// `warn` entries downgrade matches to warnings instead of suppressing
    /// them.
    pub warn: bool,
}

/// The outcome of applying the allowlist to a violation set.
#[derive(Debug, Default)]
pub struct Applied {
    /// Violations no entry matched: fatal.
    pub deny: Vec<Violation>,
    /// Violations matched by a `warn` entry: reported, non-fatal.
    pub warnings: Vec<Violation>,
    /// Entries that matched nothing (stale).
    pub stale: Vec<Entry>,
    /// Per-rule counts of violations suppressed by plain entries — kept so
    /// reports can show how much the allowlist is hiding.
    pub suppressed: BTreeMap<String, usize>,
}

/// Parses allowlist text.  Fails on entries missing any of the three
/// fields — an exception without a reason is not an exception.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (warn, rest) = match trimmed.strip_prefix("warn ") {
            Some(rest) => (true, rest.trim_start()),
            None => (false, trimmed),
        };
        let mut parts = rest.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("").to_string();
        let reason = parts.next().unwrap_or("").trim().to_string();
        if rule.is_empty() || path.is_empty() || reason.is_empty() {
            return Err(format!(
                "allowlist line {line}: expected `[warn] <rule> <path-glob> <reason…>`, \
                 got {trimmed:?} (every exception must carry a reason)"
            ));
        }
        entries.push(Entry {
            rule,
            path,
            reason,
            line,
            warn,
        });
    }
    Ok(entries)
}

/// Matches `path` against a glob `pat`: `*` = any run of non-`/` chars,
/// `**` = any run including `/`, `?` = one non-`/` char, everything else
/// literal.  A plain path is a glob that matches only itself.
pub fn glob_match(pat: &str, path: &str) -> bool {
    glob_rec(pat.as_bytes(), path.as_bytes())
}

fn glob_rec(pat: &[u8], path: &[u8]) -> bool {
    if pat.is_empty() {
        return path.is_empty();
    }
    match pat[0] {
        b'*' => {
            let (deep, rest) = if pat.len() > 1 && pat[1] == b'*' {
                (true, &pat[2..])
            } else {
                (false, &pat[1..])
            };
            // Try every split point the star could cover, longest-first is
            // unnecessary — paths are short, plain backtracking is fine.
            for i in 0..=path.len() {
                if glob_rec(rest, &path[i..]) {
                    return true;
                }
                if i < path.len() && !deep && path[i] == b'/' {
                    return false; // `*` stops at a separator
                }
            }
            false
        }
        b'?' => !path.is_empty() && path[0] != b'/' && glob_rec(&pat[1..], &path[1..]),
        c => !path.is_empty() && path[0] == c && glob_rec(&pat[1..], &path[1..]),
    }
}

/// Applies `entries` to `violations`.  The first matching entry (file
/// order) decides a violation's fate: `warn` downgrades, plain suppresses;
/// no match means deny.
pub fn apply(entries: &[Entry], violations: Vec<Violation>) -> Applied {
    let mut used = vec![false; entries.len()];
    let mut out = Applied::default();
    for v in violations {
        let hit = entries
            .iter()
            .position(|e| e.rule == v.rule && glob_match(&e.path, &v.path));
        match hit {
            Some(i) => {
                used[i] = true;
                if entries[i].warn {
                    out.warnings.push(v);
                } else {
                    *out.suppressed.entry(v.rule.to_string()).or_insert(0) += 1;
                }
            }
            None => out.deny.push(v),
        }
    }
    out.stale = entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 3,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let entries = parse("# header\n\nfloat-eq crates/a/src/x.rs exact zero check\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "float-eq");
        assert_eq!(entries[0].path, "crates/a/src/x.rs");
        assert_eq!(entries[0].reason, "exact zero check");
        assert_eq!(entries[0].line, 3);
        assert!(!entries[0].warn);
    }

    #[test]
    fn parse_reads_warn_prefix() {
        let entries = parse("warn alloc-in-hot-loop crates/a/src/x.rs tracked hazard\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].warn);
        assert_eq!(entries[0].rule, "alloc-in-hot-loop");
        assert_eq!(entries[0].reason, "tracked hazard");
    }

    #[test]
    fn parse_rejects_entries_without_a_reason() {
        let err = parse("float-eq crates/a/src/x.rs\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
        let err = parse("warn float-eq crates/a/src/x.rs\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn glob_star_stops_at_separators() {
        assert!(glob_match(
            "crates/fml-gmm/src/*.rs",
            "crates/fml-gmm/src/multiway.rs"
        ));
        assert!(!glob_match(
            "crates/fml-gmm/src/*.rs",
            "crates/fml-gmm/src/sub/deep.rs"
        ));
        assert!(glob_match(
            "crates/*/src/lib.rs",
            "crates/fml-nn/src/lib.rs"
        ));
    }

    #[test]
    fn glob_double_star_crosses_separators() {
        assert!(glob_match(
            "crates/shims/**",
            "crates/shims/criterion/src/lib.rs"
        ));
        assert!(glob_match("**/*.rs", "crates/a/b.rs"));
        assert!(!glob_match("crates/shims/**", "crates/other/x.rs"));
    }

    #[test]
    fn glob_question_mark_and_literals() {
        assert!(glob_match("a?c.rs", "abc.rs"));
        assert!(!glob_match("a?c.rs", "a/c.rs"));
        assert!(glob_match("exact/path.rs", "exact/path.rs"));
        assert!(!glob_match("exact/path.rs", "exact/path.rss"));
    }

    #[test]
    fn apply_suppresses_matching_and_reports_stale() {
        let entries = parse(
            "float-eq crates/a/src/*.rs why\n\
             no-stray-io crates/b/src/y.rs never matched\n",
        )
        .unwrap();
        let applied = apply(
            &entries,
            vec![
                violation("float-eq", "crates/a/src/x.rs"),
                violation("float-eq", "crates/other.rs"),
            ],
        );
        assert_eq!(applied.deny.len(), 1);
        assert_eq!(applied.deny[0].path, "crates/other.rs");
        assert_eq!(applied.stale.len(), 1);
        assert_eq!(applied.stale[0].path, "crates/b/src/y.rs");
        assert_eq!(applied.suppressed.get("float-eq"), Some(&1));
    }

    #[test]
    fn apply_downgrades_warn_entries() {
        let entries = parse("warn float-eq crates/a/src/x.rs tracked\n").unwrap();
        let applied = apply(&entries, vec![violation("float-eq", "crates/a/src/x.rs")]);
        assert!(applied.deny.is_empty());
        assert_eq!(applied.warnings.len(), 1);
        assert!(applied.stale.is_empty());
        assert!(applied.suppressed.is_empty());
    }
}
