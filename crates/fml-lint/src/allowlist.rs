//! The checked-in plain-text allowlist of justified exceptions.
//!
//! Format (`lint-allowlist.txt` at the workspace root), parsed with no
//! serde — one entry per line:
//!
//! ```text
//! # comment
//! <rule-name> <workspace-relative-path> <reason…>
//! ```
//!
//! An entry suppresses every violation of `rule-name` in `path` — file
//! granularity keeps entries stable across unrelated edits, and the reason
//! string forces each exception to be argued in review.  An entry that
//! matches **no** violation is itself an error (stale): allowlists only
//! ever grow unless something makes them shrink, so stale entries fail the
//! lint until removed.

use crate::rules::Violation;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    /// 1-based line in the allowlist file (for stale-entry diagnostics).
    pub line: usize,
}

/// Parses allowlist text.  Fails on entries missing any of the three
/// fields — an exception without a reason is not an exception.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or("").to_string();
        let path = parts.next().unwrap_or("").to_string();
        let reason = parts.next().unwrap_or("").trim().to_string();
        if rule.is_empty() || path.is_empty() || reason.is_empty() {
            return Err(format!(
                "allowlist line {line}: expected `<rule> <path> <reason…>`, got {trimmed:?} \
                 (every exception must carry a reason)"
            ));
        }
        entries.push(Entry {
            rule,
            path,
            reason,
            line,
        });
    }
    Ok(entries)
}

/// Applies `entries` to `violations`: returns the violations that survive,
/// plus the entries that matched nothing (stale).
pub fn apply(entries: &[Entry], violations: Vec<Violation>) -> (Vec<Violation>, Vec<Entry>) {
    let mut used = vec![false; entries.len()];
    let kept: Vec<Violation> = violations
        .into_iter()
        .filter(|v| {
            let hit = entries
                .iter()
                .position(|e| e.rule == v.rule && e.path == v.path);
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let stale: Vec<Entry> = entries
        .iter()
        .zip(used)
        .filter(|(_, u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 3,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let entries = parse("# header\n\nfloat-eq crates/a/src/x.rs exact zero check\n").unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "float-eq");
        assert_eq!(entries[0].path, "crates/a/src/x.rs");
        assert_eq!(entries[0].reason, "exact zero check");
        assert_eq!(entries[0].line, 3);
    }

    #[test]
    fn parse_rejects_entries_without_a_reason() {
        let err = parse("float-eq crates/a/src/x.rs\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn apply_suppresses_matching_and_reports_stale() {
        let entries = parse(
            "float-eq crates/a/src/x.rs why\n\
             no-stray-io crates/b/src/y.rs never matched\n",
        )
        .unwrap();
        let (kept, stale) = apply(
            &entries,
            vec![
                violation("float-eq", "crates/a/src/x.rs"),
                violation("float-eq", "crates/other.rs"),
            ],
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].path, "crates/other.rs");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].path, "crates/b/src/y.rs");
    }
}
