//! Workspace file discovery: every `.rs` file under `crates/` and
//! `examples/`, skipping build output.  Paths come back workspace-relative
//! with forward slashes, sorted, so diagnostics are deterministic across
//! machines and the allowlist matches verbatim.

use std::path::{Path, PathBuf};

/// Collects every Rust source file the lint walks, as
/// `(relative_path, absolute_path)` pairs sorted by relative path.
pub fn rust_files(root: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    for top in ["crates", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build output and VCS internals are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}
