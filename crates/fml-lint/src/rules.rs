//! The rule engine: five token/line-level rules over one lexed file.
//!
//! Every rule reports [`Violation`]s carrying the rule name, the
//! workspace-relative path, the 1-based line, and a message explaining the
//! invariant — the diagnostics the binary prints and the fixtures pin.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-audit` | `unsafe` only in the audited leaf modules, every block/impl preceded by `// SAFETY:`, every `unsafe fn` documented with `# Safety` |
//! | `no-raw-spawn` | `thread::spawn` only in `pool.rs` and test code (bare spawns lose the `FML_THREADS`/SIMD overrides) |
//! | `env-centralization` | `FML_*` environment reads only at the designated resolve sites |
//! | `float-eq` | no float `==`/`!=`/`assert_eq!` in production code — `to_bits` or approx helpers instead |
//! | `no-stray-io` | no `println!`/`eprintln!`/`dbg!` in library code |
//!
//! ## Scope classification
//!
//! Rules distinguish three contexts, derived from the path and from
//! `#[cfg(test)]` regions found by brace matching:
//!
//! * **test code** — files under `tests/` or `benches/`, and `#[cfg(test)]`
//!   item spans inside `src` files.  The repo's test corpus *is* the
//!   designated equivalence suite: its exact float comparisons are
//!   deliberate bit-contract pins, so `float-eq` does not apply there, and
//!   `no-raw-spawn`/`no-stray-io` are relaxed.
//! * **bin code** — `src/main.rs`, `src/bin/**`, and `examples/**`: console
//!   I/O is the product there.
//! * **library code** — everything else: all five rules apply in full.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// One diagnostic: `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// `unsafe-audit` rule name.
pub const RULE_UNSAFE: &str = "unsafe-audit";
/// `no-raw-spawn` rule name.
pub const RULE_SPAWN: &str = "no-raw-spawn";
/// `env-centralization` rule name.
pub const RULE_ENV: &str = "env-centralization";
/// `float-eq` rule name.
pub const RULE_FLOAT_EQ: &str = "float-eq";
/// `no-stray-io` rule name.
pub const RULE_STRAY_IO: &str = "no-stray-io";

/// Files allowed to contain `unsafe` at all.  The leaf modules whose safety
/// arguments the audit enforces, plus the offline dependency shims (which
/// currently `#![forbid(unsafe_code)]` anyway — listed so a shim that must
/// grow an intrinsic does not silently widen the audit surface elsewhere).
const UNSAFE_ALLOWED: [&str; 2] = [
    "crates/fml-linalg/src/simd.rs",
    "crates/fml-linalg/src/pool.rs",
];
const UNSAFE_ALLOWED_PREFIX: &str = "crates/shims/";

/// The designated `FML_*` resolve sites: builder > env > default precedence
/// is decided in exactly these places, so a read anywhere else forks the
/// precedence logic.
const ENV_ALLOWED: [&str; 3] = [
    "crates/fml-linalg/src/policy.rs",
    "crates/fml-linalg/src/simd.rs",
    "crates/fml-linalg/src/exec.rs",
];
const ENV_ALLOWED_PREFIX: &str = "crates/fml-bench/";
/// fml-obs files may read `FML_OBS` (the mode resolve site lives there) but
/// no other `FML_*` variable.
const ENV_OBS_ALLOWED_PREFIX: &str = "crates/fml-obs/";

/// How many lines above an `unsafe` block/impl a `// SAFETY:` comment may
/// sit (attributes and the statement's own wrapped lines eat a few).
const SAFETY_WINDOW: usize = 6;
/// How many lines above an `unsafe fn` its doc comment (with the `# Safety`
/// section) may start — doc blocks run long.
const SAFETY_DOC_WINDOW: usize = 40;

/// Runs every rule over one file.  `rel_path` must be workspace-relative
/// with forward slashes — it is matched against the allow-sets verbatim.
pub fn check_file(rel_path: &str, source: &str) -> Vec<Violation> {
    let lexed = lex(source);
    let ctx = Context::new(rel_path, &lexed.tokens);
    // Outer docs only: a `//!`/`/*!` inner doc documents the enclosing
    // module, not the item that happens to follow it.
    let doc_lines: Vec<usize> = lexed
        .comments
        .iter()
        .filter(|c| c.doc && !c.text.starts_with("//!") && !c.text.starts_with("/*!"))
        .map(|c| c.line)
        .collect();
    let tree = crate::parse::parse(&lexed.tokens, &doc_lines);
    let mut out = Vec::new();
    rule_unsafe_audit(&ctx, &lexed.tokens, &lexed.comments, &mut out);
    rule_no_raw_spawn(&ctx, &lexed.tokens, &mut out);
    rule_env_centralization(&ctx, &lexed.tokens, &mut out);
    rule_float_eq(&ctx, &lexed.tokens, &mut out);
    rule_no_stray_io(&ctx, &lexed.tokens, &mut out);
    crate::semantic::check(&ctx, &lexed.tokens, &lexed.comments, &tree, &mut out);
    out
}

pub(crate) struct Context<'a> {
    pub(crate) rel_path: &'a str,
    /// Whole file is test code (`tests/`, `benches/`).
    pub(crate) test_file: bool,
    /// Whole file is bin code (`src/main.rs`, `src/bin/**`, `examples/**`).
    pub(crate) bin_file: bool,
    /// Line spans of `#[cfg(test)]` items inside a `src` file.
    test_regions: Vec<(usize, usize)>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(rel_path: &'a str, tokens: &[Token]) -> Self {
        let test_file = rel_path.contains("/tests/") || rel_path.contains("/benches/");
        let bin_file = rel_path.ends_with("/src/main.rs")
            || rel_path.contains("/src/bin/")
            || rel_path.starts_with("examples/");
        Self {
            rel_path,
            test_file,
            bin_file,
            test_regions: find_test_regions(tokens),
        }
    }

    pub(crate) fn in_test(&self, line: usize) -> bool {
        self.test_file
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    pub(crate) fn violation(&self, rule: &'static str, line: usize, message: String) -> Violation {
        Violation {
            rule,
            path: self.rel_path.to_string(),
            line,
            message,
        }
    }
}

/// Finds the line spans of items annotated `#[cfg(test)]` by scanning for
/// the attribute token sequence and brace-matching the item that follows.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_attr = tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Walk to the item's body: first `{` opens the span; a `;` first
        // means a braceless item (`#[cfg(test)] use …;`).
        let mut j = i + 7;
        let mut end_line = start_line;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                ";" => {
                    end_line = tokens[j].line;
                    break;
                }
                "{" => {
                    let mut depth = 1usize;
                    j += 1;
                    while j < tokens.len() && depth > 0 {
                        match tokens[j].text.as_str() {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            _ => {}
                        }
                        j += 1;
                    }
                    end_line = tokens[j.saturating_sub(1).min(tokens.len() - 1)].line;
                    break;
                }
                _ => j += 1,
            }
        }
        regions.push((start_line, end_line));
        i = j.max(i + 7);
    }
    regions
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-audit
// ---------------------------------------------------------------------------

fn rule_unsafe_audit(
    ctx: &Context,
    tokens: &[Token],
    comments: &[Comment],
    out: &mut Vec<Violation>,
) {
    let file_allowed =
        UNSAFE_ALLOWED.contains(&ctx.rel_path) || ctx.rel_path.starts_with(UNSAFE_ALLOWED_PREFIX);
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !file_allowed {
            out.push(
                ctx.violation(
                    RULE_UNSAFE,
                    t.line,
                    "`unsafe` code is restricted to the audited leaf modules \
                 (fml-linalg/src/simd.rs, fml-linalg/src/pool.rs, crates/shims)"
                        .to_string(),
                ),
            );
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        if next == Some("fn") {
            // `unsafe fn(` is a function-pointer *type*: nothing executes at
            // the declaration, the obligations attach to the call sites.
            if tokens.get(i + 2).map(|t| t.text.as_str()) == Some("(") {
                continue;
            }
            if !has_safety_doc_section(comments, t.line) {
                out.push(ctx.violation(
                    RULE_UNSAFE,
                    t.line,
                    "`unsafe fn` lacks a `# Safety` section in its doc comment".to_string(),
                ));
            }
        } else if !has_safety_comment(comments, t.line) {
            out.push(
                ctx.violation(
                    RULE_UNSAFE,
                    t.line,
                    "`unsafe` block/impl lacks a preceding `// SAFETY:` comment \
                 stating the invariant"
                        .to_string(),
                ),
            );
        }
    }
}

/// A comment containing `SAFETY:` on the same line or within the window
/// above `line` justifies an `unsafe` block/impl.
fn has_safety_comment(comments: &[Comment], line: usize) -> bool {
    let lo = line.saturating_sub(SAFETY_WINDOW);
    comments
        .iter()
        .any(|c| (lo..=line).contains(&c.line) && c.text.contains("SAFETY:"))
}

/// A doc comment containing a `# Safety` section within the doc window above
/// `line` documents an `unsafe fn`'s contract.
fn has_safety_doc_section(comments: &[Comment], line: usize) -> bool {
    let lo = line.saturating_sub(SAFETY_DOC_WINDOW);
    comments
        .iter()
        .any(|c| c.doc && (lo..=line).contains(&c.line) && c.text.contains("# Safety"))
}

// ---------------------------------------------------------------------------
// Rule 2: no-raw-spawn
// ---------------------------------------------------------------------------

fn rule_no_raw_spawn(ctx: &Context, tokens: &[Token], out: &mut Vec<Violation>) {
    if ctx.rel_path == "crates/fml-linalg/src/pool.rs" {
        return; // the pool is where threads are born
    }
    for i in 0..tokens.len().saturating_sub(2) {
        if tokens[i].text == "thread" && tokens[i + 1].text == "::" && tokens[i + 2].text == "spawn"
        {
            let line = tokens[i].line;
            if ctx.in_test(line) {
                continue;
            }
            out.push(
                ctx.violation(
                    RULE_SPAWN,
                    line,
                    "`std::thread::spawn` outside the pool: a bare spawn inherits \
                 neither the scoped `FML_THREADS` override nor the SIMD level \
                 (both are thread-local), silently changing kernel behavior on \
                 the new thread; dispatch through `fml_linalg::pool::run`"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: env-centralization
// ---------------------------------------------------------------------------

fn rule_env_centralization(ctx: &Context, tokens: &[Token], out: &mut Vec<Violation>) {
    if ENV_ALLOWED.contains(&ctx.rel_path) || ctx.rel_path.starts_with(ENV_ALLOWED_PREFIX) {
        return;
    }
    // fml-obs owns the `FML_OBS` resolve site, but nothing else: its files
    // may read `FML_OBS` and no other `FML_*` variable.
    let in_obs = ctx.rel_path.starts_with(ENV_OBS_ALLOWED_PREFIX);
    for i in 0..tokens.len().saturating_sub(2) {
        let is_read = tokens[i].text == "env"
            && tokens[i + 1].text == "::"
            && (tokens[i + 2].text == "var" || tokens[i + 2].text == "var_os");
        if !is_read {
            continue;
        }
        // The variable name is the first string literal after the call.
        let Some(var) = tokens[i + 3..]
            .iter()
            .take(4)
            .find(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
        else {
            continue;
        };
        if !var.starts_with("FML_") {
            continue;
        }
        if var == "FML_OBS" {
            if in_obs {
                continue;
            }
            out.push(
                ctx.violation(
                    RULE_ENV,
                    tokens[i].line,
                    "`FML_OBS` environment read outside its designated resolve \
                 sites (fml-obs, fml-linalg exec.rs, fml-bench): the \
                 observability mode follows builder > env > default, decided \
                 once — consume `fml_obs::mode()` or `ExecSettings::obs` \
                 instead"
                        .to_string(),
                ),
            );
        } else {
            out.push(
                ctx.violation(
                    RULE_ENV,
                    tokens[i].line,
                    "`FML_*` environment read outside the designated resolve sites \
                 (fml-linalg policy.rs/simd.rs/exec.rs, fml-bench): precedence \
                 is builder > env > default, decided in exactly one place — \
                 consume the resolved value via `ExecPolicy::resolve` or the \
                 `policy`/`simd` accessors instead"
                        .to_string(),
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: float-eq
// ---------------------------------------------------------------------------

/// Token texts that end the operand window around `==`/`!=` — crossing one
/// would compare tokens from a different expression.
fn is_operand_boundary(text: &str) -> bool {
    matches!(
        text,
        ";" | "," | "{" | "}" | "==" | "!=" | "=" | "&&" | "||" | "=>"
    )
}

const FLOAT_EQ_MACROS: [&str; 4] = [
    "assert_eq",
    "assert_ne",
    "debug_assert_eq",
    "debug_assert_ne",
];
const FLOAT_EQ_ESCAPES: [&str; 2] = ["to_bits", "approx_eq"];

fn rule_float_eq(ctx: &Context, tokens: &[Token], out: &mut Vec<Violation>) {
    if ctx.test_file || ctx.rel_path.ends_with("testutil.rs") {
        return; // the equivalence suites own their exact comparisons
    }
    let float_msg = "floating-point equality in production code: rounding-\
                     sensitive values must compare via `f64::to_bits` (bit \
                     contracts) or `approx_eq` (tolerances)";
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        // `x == 1.0` / `x != 1.0` with a float literal operand.  A
        // `to_bits`/`approx_eq` call in either operand window is the
        // sanctioned escape (`x.to_bits() == 0.0f64.to_bits()`).
        if t.kind == TokenKind::Punct && (t.text == "==" || t.text == "!=") {
            let mut found = false;
            let mut escaped = false;
            let forward = tokens[i + 1..].iter().take(6);
            let backward = tokens[..i].iter().rev().take(6);
            for window in [forward.collect::<Vec<_>>(), backward.collect::<Vec<_>>()] {
                for tok in window {
                    if is_operand_boundary(&tok.text) {
                        break;
                    }
                    found |= tok.kind == TokenKind::Float;
                    escaped |= tok.kind == TokenKind::Ident
                        && FLOAT_EQ_ESCAPES.contains(&tok.text.as_str());
                }
            }
            if found && !escaped {
                out.push(ctx.violation(RULE_FLOAT_EQ, t.line, float_msg.to_string()));
            }
        }
        // `assert_eq!(…)` whose argument span holds a float literal.
        if t.kind == TokenKind::Ident
            && FLOAT_EQ_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("!")
            && tokens.get(i + 2).map(|t| t.text.as_str()) == Some("(")
        {
            let mut depth = 1usize;
            let mut has_float = false;
            let mut escaped = false;
            for tok in &tokens[i + 3..] {
                match tok.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                has_float |= tok.kind == TokenKind::Float;
                escaped |=
                    tok.kind == TokenKind::Ident && FLOAT_EQ_ESCAPES.contains(&tok.text.as_str());
            }
            if has_float && !escaped {
                out.push(ctx.violation(RULE_FLOAT_EQ, t.line, float_msg.to_string()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: no-stray-io
// ---------------------------------------------------------------------------

const IO_MACROS: [&str; 5] = ["println", "eprintln", "print", "eprint", "dbg"];

fn rule_no_stray_io(ctx: &Context, tokens: &[Token], out: &mut Vec<Violation>) {
    if ctx.test_file || ctx.bin_file {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !IO_MACROS.contains(&t.text.as_str()) {
            continue;
        }
        if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("!") {
            continue;
        }
        // `.print()`-style method calls are not the macro.
        if i > 0 && tokens[i - 1].text == "." {
            continue;
        }
        if ctx.in_test(t.line) {
            continue;
        }
        out.push(ctx.violation(
            RULE_STRAY_IO,
            t.line,
            format!(
                "stray `{}!` in library code: console I/O belongs to bins, \
                 tests and the warn-once resolve sites; return the condition \
                 to the caller instead",
                t.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_brace_matched() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = lex(src);
        let regions = find_test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_on_braceless_item_spans_to_semicolon() {
        let src = "#[cfg(test)]\nuse std::thread;\nfn c() {}\n";
        let lexed = lex(src);
        let regions = find_test_regions(&lexed.tokens);
        assert_eq!(regions, vec![(1, 2)]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod prod { }\n";
        let lexed = lex(src);
        assert!(find_test_regions(&lexed.tokens).is_empty());
    }

    #[test]
    fn operand_window_does_not_cross_statements() {
        // the float literal belongs to the previous statement; `x == y` is
        // an integer comparison and must not be flagged
        let src = "//! m\nfn f(x: usize, y: usize) { let a = 1.0; if x == y {} }\n";
        let v = check_file("crates/fml-core/src/cost.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }
}
