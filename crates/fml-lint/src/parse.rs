//! A lightweight recursive-descent pass over the lexed token stream: just
//! enough *syntax* for scope-sensitive rules, with none of the semantics.
//!
//! [`parse`] builds a [`Tree`] recording four things the token/line rules
//! cannot see:
//!
//! * **items** — functions, types, traits, impls, modules, consts — with
//!   their visibility, line span, and whether a doc comment is attached
//!   (the `pub-doc` rule);
//! * **function signatures** — name, `pub`-ness, return-type tokens, and
//!   the brace-matched body span (the `panic-policy` rule keys on
//!   `Result`-returning bodies);
//! * **loop bodies** — `for`/`while`/`loop` spans, nested arbitrarily
//!   (the `alloc-in-hot-loop` rule), with `for` headers and pattern
//!   bindings kept for the `nondet-iteration` rule;
//! * **`let` bindings** — pattern names, optional type-annotation tokens,
//!   initializer token range, and the line where the enclosing block
//!   closes, i.e. the binding's scope end (the `guard-across-dispatch`
//!   liveness check).
//!
//! ## Non-goals
//!
//! This is not a conforming parser and does not try to be: no expression
//! trees, no type resolution, no macro expansion.  Known, deliberate
//! approximations (all pinned by fixtures where they matter):
//!
//! * Blocks *inside* `let` initializers (`let x = { … };`, closure bodies
//!   in a call chain) are brace-balanced but not descended into, so loops
//!   or bindings defined there are invisible.  Statement-position closures
//!   and blocks are descended.
//! * Const-generic braces (`[u8; { N }]`) and `>=`-in-bounds corner cases
//!   may confuse span ends by a token; rules only consume line spans, so
//!   the blast radius is a line, not a file.
//! * Items declared inside function bodies are recorded, but their
//!   visibility context (a `pub fn` inside a private `mod`) is not
//!   resolved — `pub-doc` deliberately checks *lexical* `pub`.
//!
//! What the parser cannot see statically (dynamic dispatch, locks acquired
//! behind helper calls) is covered by the nightly Miri/TSan jobs, not this
//! crate.

use crate::lexer::{Token, TokenKind};

/// An inclusive 1-based line span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First line of the span.
    pub start: usize,
    /// Last line of the span.
    pub end: usize,
}

impl Span {
    /// Whether `line` falls inside the span.
    pub fn contains(&self, line: usize) -> bool {
        (self.start..=self.end).contains(&line)
    }
}

/// What kind of item a [`Item`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, inherent-impl or trait member).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `impl Type { … }`.
    InherentImpl,
    /// `impl Trait for Type { … }`.
    TraitImpl,
    /// `mod`.
    Mod,
    /// `const`.
    Const,
    /// `static`.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `use` / `extern crate` re-export.
    Use,
    /// `macro_rules!` / `macro` definition.
    Macro,
}

impl ItemKind {
    /// Human-facing keyword for diagnostics.
    pub fn keyword(&self) -> &'static str {
        match self {
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Trait => "trait",
            ItemKind::InherentImpl => "impl",
            ItemKind::TraitImpl => "impl … for",
            ItemKind::Mod => "mod",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::TypeAlias => "type",
            ItemKind::Use => "use",
            ItemKind::Macro => "macro",
        }
    }
}

/// One item declaration.
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item.
    pub kind: ItemKind,
    /// Declared name (empty for `impl` blocks and `use` trees).
    pub name: String,
    /// Lexically `pub` (any restriction: `pub(crate)` counts).
    pub is_pub: bool,
    /// Restricted visibility (`pub(crate)`/`pub(super)`): not part of the
    /// crate's external API, so `pub-doc` skips it like `missing_docs` does.
    pub pub_restricted: bool,
    /// Line of the introducing keyword.
    pub line: usize,
    /// Whether a doc comment is attached directly above the item (attributes
    /// between doc and keyword are fine).
    pub has_doc: bool,
    /// Whether this item is a member of an `impl Trait for Type` block —
    /// such members take their docs from the trait declaration.
    pub in_trait_impl: bool,
}

/// One function with a parsed signature.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Lexically `pub`.
    pub is_pub: bool,
    /// Return-type token texts (empty for `-> ()` implicit returns).
    pub ret: Vec<String>,
    /// Brace-matched body span; `None` for trait-method declarations.
    pub body: Option<Span>,
}

impl FnInfo {
    /// Whether the declared return type mentions a `Result` (including
    /// crate aliases like `StoreResult`): the `panic-policy` scope test.
    pub fn returns_result(&self) -> bool {
        self.ret
            .iter()
            .any(|t| t == "Result" || t.ends_with("Result"))
    }
}

/// One `for` loop: pattern bindings, header expression, body span.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Line of the `for` keyword.
    pub line: usize,
    /// Identifiers bound by the loop pattern (`for (i, g) in …` → `i`, `g`).
    pub pat: Vec<String>,
    /// Token index range `[start, end)` of the iterated expression
    /// (everything between `in` and the body `{`).
    pub head: (usize, usize),
    /// Body span.
    pub body: Span,
}

/// One `let` binding with its scope.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Identifiers bound by the pattern (path constructors like `Some`
    /// included — callers match on known names, so extras are harmless).
    pub names: Vec<String>,
    /// Line of the `let` keyword.
    pub line: usize,
    /// Type-annotation token texts (empty when inferred).
    pub ty: Vec<String>,
    /// Token index range `[start, end)` of the initializer (empty for
    /// `let x;` declarations).
    pub init: (usize, usize),
    /// Line on which the enclosing block closes — the end of the binding's
    /// scope (ignoring shadowing, which only ever *shortens* liveness).
    pub scope_end: usize,
}

/// The parsed file: flat collections the rules index by line/token.
#[derive(Debug, Default)]
pub struct Tree {
    /// Every item declaration, in source order.
    pub items: Vec<Item>,
    /// Every function with a parsed signature, in source order.
    pub fns: Vec<FnInfo>,
    /// Body spans of every `for`/`while`/`loop`, innermost included.
    pub loops: Vec<Span>,
    /// `for` loops with header/pattern detail.
    pub for_loops: Vec<ForLoop>,
    /// Every `let` binding inside a function body.
    pub lets: Vec<LetBinding>,
}

impl Tree {
    /// Whether `line` is inside any loop body.
    pub fn in_loop(&self, line: usize) -> bool {
        self.loops.iter().any(|s| s.contains(line))
    }

    /// The innermost function whose body contains `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.map(|b| b.contains(line)).unwrap_or(false))
            .min_by_key(|f| f.body.map(|b| b.end - b.start).unwrap_or(usize::MAX))
    }
}

/// Parses a lexed token stream into a [`Tree`].  Comments are consulted only
/// for doc-attachment; `doc_lines` must hold the starting line of every doc
/// comment in the file.
pub fn parse(tokens: &[Token], doc_lines: &[usize]) -> Tree {
    let mut p = Parser {
        toks: tokens,
        doc_lines,
        pos: 0,
        cur_restricted: false,
        tree: Tree::default(),
    };
    p.items(tokens.len(), false);
    p.tree
}

struct Parser<'a> {
    toks: &'a [Token],
    doc_lines: &'a [usize],
    pos: usize,
    /// Whether the visibility just parsed was `pub(…)`-restricted; consumed
    /// by `push_item` for the item currently being parsed.
    cur_restricted: bool,
    tree: Tree,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn line(&self, i: usize) -> usize {
        self.toks
            .get(i.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn is_ident(&self, i: usize) -> bool {
        self.toks
            .get(i)
            .map(|t| t.kind == TokenKind::Ident)
            .unwrap_or(false)
    }

    /// Skips one balanced delimiter group starting at `self.pos` (which must
    /// sit on the opener).  Returns the index just past the closer.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        debug_assert_eq!(self.text(self.pos), open);
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            let t = self.text(self.pos);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Skips generics at the cursor if present (`<` … `>` with nesting).
    fn skip_generics(&mut self) {
        if self.text(self.pos) != "<" {
            return;
        }
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                // A body brace or semicolon inside generics means we lost
                // the plot (const-generic braces); bail rather than swallow
                // the file.
                "{" | ";" => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Whether a doc comment is attached directly above the token at
    /// `item_start` (the first attribute/visibility token of the item):
    /// some doc comment line must fall between the previous code token and
    /// the item's first line.
    fn doc_attached(&self, item_start: usize) -> bool {
        let first_line = self.line(item_start);
        let prev_line = if item_start == 0 {
            0
        } else {
            self.line(item_start - 1)
        };
        self.doc_lines
            .iter()
            .any(|&l| l >= prev_line && l < first_line)
    }

    /// Parses items until `end` (exclusive token index).
    fn items(&mut self, end: usize, in_trait_impl: bool) {
        while self.pos < end && self.pos < self.toks.len() {
            let mut item_start = self.pos;
            // Attributes: `#[…]` belongs to the coming item; `#![…]` is the
            // enclosing module's, so it resets the doc-attachment anchor —
            // otherwise a file-top `#![forbid(…)]` would sit between an
            // item and its `///` doc and break attachment.
            while self.text(self.pos) == "#" {
                self.pos += 1;
                let inner = self.text(self.pos) == "!";
                if inner {
                    self.pos += 1;
                }
                if self.text(self.pos) == "[" {
                    self.skip_balanced("[", "]");
                    if inner {
                        item_start = self.pos;
                    }
                } else {
                    break;
                }
            }
            // Visibility.
            let mut is_pub = false;
            self.cur_restricted = false;
            if self.text(self.pos) == "pub" {
                is_pub = true;
                self.pos += 1;
                if self.text(self.pos) == "(" {
                    self.cur_restricted = true;
                    self.skip_balanced("(", ")");
                }
            }
            // Leading modifiers before `fn` / `impl` / `trait`.
            loop {
                match self.text(self.pos) {
                    "const" if self.text(self.pos + 1) == "fn" => self.pos += 1,
                    "async" | "default" => self.pos += 1,
                    "unsafe"
                        if matches!(
                            self.text(self.pos + 1),
                            "fn" | "impl" | "trait" | "extern"
                        ) =>
                    {
                        self.pos += 1
                    }
                    "extern" if self.text(self.pos + 1) != "crate" => {
                        // `extern "C" fn` / `extern fn` modifier or foreign
                        // block; the block case is handled below.
                        if self.toks.get(self.pos + 1).map(|t| t.kind) == Some(TokenKind::Str)
                            && self.text(self.pos + 2) == "fn"
                        {
                            self.pos += 2;
                        } else if self.text(self.pos + 1) == "fn" {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            let kw = self.text(self.pos).to_string();
            let has_doc = self.doc_attached(item_start);
            match kw.as_str() {
                "fn" => self.function(is_pub, has_doc, in_trait_impl),
                "struct" | "enum" | "union" => {
                    let kind = match kw.as_str() {
                        "struct" => ItemKind::Struct,
                        "enum" => ItemKind::Enum,
                        _ => ItemKind::Union,
                    };
                    // `union` is contextual: only an item when followed by a
                    // name (otherwise it is an expression identifier).
                    if kw == "union" && !self.is_ident(self.pos + 1) {
                        self.pos += 1;
                        continue;
                    }
                    let line = self.line(self.pos);
                    self.pos += 1;
                    let name = self.take_name();
                    self.skip_generics();
                    self.skip_to_body_or_semi();
                    self.push_item(kind, name, is_pub, line, has_doc, in_trait_impl);
                }
                "trait" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(ItemKind::Trait, name, is_pub, line, has_doc, in_trait_impl);
                    self.skip_generics();
                    // Supertraits / where clause, then the member block.
                    while self.pos < self.toks.len()
                        && self.text(self.pos) != "{"
                        && self.text(self.pos) != ";"
                    {
                        self.pos += 1;
                    }
                    if self.text(self.pos) == "{" {
                        let body_end = self.matching_brace(self.pos);
                        self.pos += 1;
                        self.items(body_end, false);
                        self.pos = body_end + 1;
                    } else {
                        self.pos += 1;
                    }
                }
                "impl" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    self.skip_generics();
                    // Scan the header for a `for` at angle-depth 0 — the
                    // trait-impl marker (`for<'a>` HRTBs live inside `<…>`
                    // and are skipped by the depth counter).
                    let mut angle = 0i32;
                    let mut is_trait_impl = false;
                    while self.pos < self.toks.len() {
                        match self.text(self.pos) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "for" if angle <= 0 => is_trait_impl = true,
                            "{" => break,
                            ";" => break,
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    let kind = if is_trait_impl {
                        ItemKind::TraitImpl
                    } else {
                        ItemKind::InherentImpl
                    };
                    self.push_item(kind, String::new(), is_pub, line, has_doc, in_trait_impl);
                    if self.text(self.pos) == "{" {
                        let body_end = self.matching_brace(self.pos);
                        self.pos += 1;
                        self.items(body_end, is_trait_impl);
                        self.pos = body_end + 1;
                    } else {
                        self.pos += 1;
                    }
                }
                "mod" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    let name = self.take_name();
                    self.push_item(ItemKind::Mod, name, is_pub, line, has_doc, in_trait_impl);
                    if self.text(self.pos) == "{" {
                        let body_end = self.matching_brace(self.pos);
                        self.pos += 1;
                        self.items(body_end, false);
                        self.pos = body_end + 1;
                    } else {
                        self.pos += 1; // `;`
                    }
                }
                "const" | "static" => {
                    let kind = if kw == "const" {
                        ItemKind::Const
                    } else {
                        ItemKind::Static
                    };
                    let line = self.line(self.pos);
                    self.pos += 1;
                    if self.text(self.pos) == "mut" {
                        self.pos += 1;
                    }
                    let name = self.take_name();
                    self.skip_to_semi_balanced();
                    self.push_item(kind, name, is_pub, line, has_doc, in_trait_impl);
                }
                "type" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    let name = self.take_name();
                    self.skip_to_semi_balanced();
                    self.push_item(
                        ItemKind::TypeAlias,
                        name,
                        is_pub,
                        line,
                        has_doc,
                        in_trait_impl,
                    );
                }
                "use" => {
                    let line = self.line(self.pos);
                    self.skip_to_semi_balanced();
                    self.push_item(ItemKind::Use, String::new(), is_pub, line, has_doc, false);
                }
                "extern" => {
                    // `extern crate foo;` or `extern { … }` foreign block.
                    let line = self.line(self.pos);
                    if self.text(self.pos + 1) == "crate" {
                        self.skip_to_semi_balanced();
                        self.push_item(ItemKind::Use, String::new(), is_pub, line, has_doc, false);
                    } else {
                        while self.pos < self.toks.len()
                            && self.text(self.pos) != "{"
                            && self.text(self.pos) != ";"
                        {
                            self.pos += 1;
                        }
                        if self.text(self.pos) == "{" {
                            self.skip_balanced("{", "}");
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                "macro_rules" | "macro" => {
                    let line = self.line(self.pos);
                    self.pos += 1;
                    if self.text(self.pos) == "!" {
                        self.pos += 1;
                    }
                    let name = self.take_name();
                    match self.text(self.pos) {
                        "{" => self.skip_balanced("{", "}"),
                        "(" => {
                            self.skip_balanced("(", ")");
                            if self.text(self.pos) == "{" {
                                self.skip_balanced("{", "}");
                            }
                        }
                        _ => self.pos += 1,
                    }
                    self.push_item(ItemKind::Macro, name, is_pub, line, has_doc, in_trait_impl);
                }
                _ => {
                    // Not an item keyword: stray token at item level
                    // (macro invocation, `;`, …) — advance one token; skip
                    // whole delimiter groups so their contents cannot be
                    // misread as items.
                    match self.text(self.pos) {
                        "{" => self.skip_balanced("{", "}"),
                        "(" => self.skip_balanced("(", ")"),
                        "[" => self.skip_balanced("[", "]"),
                        _ => self.pos += 1,
                    }
                }
            }
        }
        self.pos = self.pos.max(end.min(self.toks.len()));
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.toks.len().saturating_sub(1)
    }

    fn take_name(&mut self) -> String {
        if self.is_ident(self.pos) {
            let n = self.text(self.pos).to_string();
            self.pos += 1;
            n
        } else {
            String::new()
        }
    }

    /// Skips forward to just past the item body `{…}` or terminating `;`,
    /// whichever comes first at delimiter depth 0 (tuple-struct parens and
    /// where-clauses are crossed).
    fn skip_to_body_or_semi(&mut self) {
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" => {
                    self.skip_balanced("{", "}");
                    return;
                }
                ";" => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Skips to just past the next `;` at delimiter depth 0, crossing
    /// balanced groups (initializer blocks, use-trees, array types).
    fn skip_to_semi_balanced(&mut self) {
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" => self.skip_balanced("{", "}"),
                ";" => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_item(
        &mut self,
        kind: ItemKind,
        name: String,
        is_pub: bool,
        line: usize,
        has_doc: bool,
        in_trait_impl: bool,
    ) {
        self.tree.items.push(Item {
            kind,
            name,
            is_pub,
            pub_restricted: self.cur_restricted,
            line,
            has_doc,
            in_trait_impl,
        });
    }

    /// Parses a `fn` item at the cursor (which sits on `fn`).
    fn function(&mut self, is_pub: bool, has_doc: bool, in_trait_impl: bool) {
        let restricted = self.cur_restricted;
        let line = self.line(self.pos);
        self.pos += 1; // fn
        let name = self.take_name();
        self.skip_generics();
        if self.text(self.pos) == "(" {
            self.skip_balanced("(", ")");
        }
        // Return type: tokens between `->` and the body/`;`/`where`.
        let mut ret = Vec::new();
        if self.text(self.pos) == "->" {
            self.pos += 1;
            let mut angle = 0i32;
            while self.pos < self.toks.len() {
                let t = self.text(self.pos);
                match t {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" | ";" => break,
                    "where" if angle <= 0 => break,
                    _ => {}
                }
                ret.push(t.to_string());
                self.pos += 1;
            }
        }
        // Where clause.
        if self.text(self.pos) == "where" {
            while self.pos < self.toks.len()
                && self.text(self.pos) != "{"
                && self.text(self.pos) != ";"
            {
                self.pos += 1;
            }
        }
        let body = if self.text(self.pos) == "{" {
            Some(self.block())
        } else {
            self.pos += 1; // `;` — trait-method declaration
            None
        };
        self.tree.fns.push(FnInfo {
            name: name.clone(),
            line,
            is_pub,
            ret,
            body,
        });
        self.tree.items.push(Item {
            kind: ItemKind::Fn,
            name,
            is_pub,
            pub_restricted: restricted,
            line,
            has_doc,
            in_trait_impl,
        });
    }

    /// Parses a block at the cursor (which sits on `{`), recording loops
    /// and `let` bindings.  Returns the block's line span and leaves the
    /// cursor just past the closing `}`.
    fn block(&mut self) -> Span {
        let start_line = self.line(self.pos);
        self.pos += 1; // {
        let mut my_lets: Vec<usize> = Vec::new();
        loop {
            if self.pos >= self.toks.len() {
                break;
            }
            match self.text(self.pos) {
                "}" => break,
                "{" => {
                    self.block();
                }
                "let" => {
                    let idx = self.let_binding();
                    my_lets.push(idx);
                }
                "if" => {
                    // `if` / `if let` / `else if`: skip the condition to the
                    // branch `{` at depth 0 so a condition's `let` is never
                    // misread as a statement binding (the `{` arm recurses
                    // into the branch body).
                    self.pos += 1;
                    self.skip_loop_header();
                }
                "for" => {
                    self.for_loop();
                }
                "while" => {
                    self.pos += 1;
                    self.skip_loop_header();
                    if self.text(self.pos) == "{" {
                        let span = self.block();
                        self.tree.loops.push(span);
                    }
                }
                "loop" => {
                    self.pos += 1;
                    if self.text(self.pos) == "{" {
                        let span = self.block();
                        self.tree.loops.push(span);
                    }
                }
                "fn" => {
                    // Nested function: its body is parsed recursively so
                    // bindings/loops inside are still recorded.
                    self.cur_restricted = false;
                    self.function(false, false, false);
                }
                "(" => self.scan_group("(", ")"),
                "[" => self.scan_group("[", "]"),
                _ => self.pos += 1,
            }
        }
        let end_line = self.line(self.pos);
        self.pos += 1; // }
        for idx in my_lets {
            self.tree.lets[idx].scope_end = end_line;
        }
        Span {
            start: start_line,
            end: end_line,
        }
    }

    /// Walks a parenthesized/bracketed group, still recording any loops
    /// inside (closure bodies passed to `pool::run`/`par_row_bands` hold the
    /// kernels' hot loops).  `let` bindings inside closures are NOT recorded
    /// — their scope is the closure, which this parser does not model.
    fn scan_group(&mut self, open: &str, close: &str) {
        debug_assert_eq!(self.text(self.pos), open);
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                t if t == open => {
                    depth += 1;
                    self.pos += 1;
                }
                t if t == close => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                "for" => self.for_loop(),
                "while" => {
                    self.pos += 1;
                    self.skip_loop_header();
                    if self.text(self.pos) == "{" {
                        let span = self.block();
                        self.tree.loops.push(span);
                    }
                }
                "loop" => {
                    self.pos += 1;
                    if self.text(self.pos) == "{" {
                        let span = self.block();
                        self.tree.loops.push(span);
                    }
                }
                "if" => {
                    self.pos += 1;
                    self.skip_loop_header();
                }
                "{" => {
                    self.block();
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Parses a `let` statement at the cursor (on `let`); returns the index
    /// of the recorded binding (scope_end patched by the enclosing block).
    fn let_binding(&mut self) -> usize {
        let line = self.line(self.pos);
        self.pos += 1; // let
                       // Pattern: idents until `:`/`=`/`;` at depth 0.
        let mut names = Vec::new();
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = self.text(self.pos);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ":" | "=" | ";" if depth <= 0 => break,
                _ => {
                    if self.is_ident(self.pos) && !matches!(t, "mut" | "ref" | "box") {
                        names.push(t.to_string());
                    }
                }
            }
            self.pos += 1;
        }
        // Type annotation.
        let mut ty = Vec::new();
        if self.text(self.pos) == ":" {
            self.pos += 1;
            let mut angle = 0i32;
            let mut depth = 0i32;
            while self.pos < self.toks.len() {
                let t = self.text(self.pos);
                match t {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "=" | ";" if angle <= 0 && depth <= 0 => break,
                    _ => {}
                }
                ty.push(t.to_string());
                self.pos += 1;
            }
        }
        // Initializer: from past `=` to the `;` at depth 0 (balanced
        // delimiters crossed; nested blocks NOT descended — see module
        // docs).
        let mut init = (self.pos, self.pos);
        if self.text(self.pos) == "=" {
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.toks.len() {
                match self.text(self.pos) {
                    "(" => self.skip_balanced("(", ")"),
                    "[" => self.skip_balanced("[", "]"),
                    "{" => self.skip_balanced("{", "}"),
                    ";" => break,
                    _ => self.pos += 1,
                }
            }
            init = (start, self.pos);
        }
        if self.text(self.pos) == ";" {
            self.pos += 1;
        }
        self.tree.lets.push(LetBinding {
            names,
            line,
            ty,
            init,
            scope_end: line, // patched when the block closes
        });
        self.tree.lets.len() - 1
    }

    /// Parses a `for` loop at the cursor (on `for`).
    fn for_loop(&mut self) {
        let line = self.line(self.pos);
        self.pos += 1; // for
                       // Pattern idents until `in` at depth 0.
        let mut pat = Vec::new();
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            let t = self.text(self.pos);
            match t {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth <= 0 => break,
                // Safety net for `for<'a>` HRTBs in type position: never
                // scan past a statement/body boundary looking for `in`.
                "{" | ";" if depth <= 0 => break,
                _ => {
                    if self.is_ident(self.pos) && !matches!(t, "mut" | "ref") {
                        pat.push(t.to_string());
                    }
                }
            }
            self.pos += 1;
        }
        if self.text(self.pos) == "in" {
            self.pos += 1;
        }
        // Header expression: to the body `{` at delimiter depth 0 (Rust
        // forbids bare struct literals in loop headers, so the first
        // depth-0 `{` IS the body; closure blocks sit inside call parens).
        let head_start = self.pos;
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" | ";" => break,
                _ => self.pos += 1,
            }
        }
        let head = (head_start, self.pos);
        if self.text(self.pos) == "{" {
            let body = self.block();
            self.tree.loops.push(body);
            self.tree.for_loops.push(ForLoop {
                line,
                pat,
                head,
                body,
            });
        }
    }

    /// Skips a `while`/`while let` header to the body `{` at depth 0.
    fn skip_loop_header(&mut self) {
        while self.pos < self.toks.len() {
            match self.text(self.pos) {
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" | ";" => return,
                _ => self.pos += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> Tree {
        let lexed = lex(src);
        let doc_lines: Vec<usize> = lexed
            .comments
            .iter()
            .filter(|c| c.doc)
            .map(|c| c.line)
            .collect();
        parse(&lexed.tokens, &doc_lines)
    }

    #[test]
    fn fn_signature_and_result_return() {
        let t = tree("pub fn load(p: &str) -> StoreResult<u32> { Ok(1) }\nfn plain() {}\n");
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].name, "load");
        assert!(t.fns[0].is_pub);
        assert!(t.fns[0].returns_result());
        assert!(!t.fns[1].returns_result());
        assert_eq!(t.fns[0].body.unwrap().start, 1);
    }

    #[test]
    fn generic_fn_with_where_clause_parses() {
        let t = tree(
            "fn f<T: Clone, E>(x: Vec<T>) -> Result<T, E>\nwhere\n    E: std::fmt::Debug,\n{\n    loop {}\n}\n",
        );
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].returns_result());
        assert_eq!(t.fns[0].body.unwrap(), Span { start: 4, end: 6 });
        assert_eq!(t.loops.len(), 1);
    }

    #[test]
    fn loops_nest_and_span_lines() {
        let t = tree("fn f() {\n  for i in 0..3 {\n    while i > 0 {\n      loop { break; }\n    }\n  }\n}\n");
        assert_eq!(t.loops.len(), 3);
        assert!(t.in_loop(4));
        assert!(!t.in_loop(1));
        assert_eq!(t.for_loops.len(), 1);
        assert_eq!(t.for_loops[0].pat, vec!["i".to_string()]);
    }

    #[test]
    fn let_bindings_record_scope_and_types() {
        let t = tree(
            "fn f() {\n  let mut m: HashMap<u64, f64> = HashMap::new();\n  {\n    let g = rel.lock();\n  }\n  let x = 1;\n}\n",
        );
        assert_eq!(t.lets.len(), 3);
        let m = &t.lets[0];
        assert_eq!(m.names, vec!["m".to_string()]);
        assert!(m.ty.iter().any(|s| s == "HashMap"));
        assert_eq!(m.scope_end, 7, "outer block closes on line 7");
        let g = &t.lets[1];
        assert_eq!(g.names, vec!["g".to_string()]);
        assert_eq!(g.scope_end, 5, "inner block closes on line 5");
    }

    #[test]
    fn trait_impl_members_are_marked() {
        let t = tree(
            "pub trait T { fn m(&self); }\nimpl T for S {\n    fn m(&self) {}\n}\nimpl S {\n    pub fn own(&self) {}\n}\n",
        );
        let fns: Vec<&Item> = t.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].in_trait_impl, "trait decl member");
        assert!(fns[1].in_trait_impl, "trait impl member");
        assert!(!fns[2].in_trait_impl, "inherent impl member");
        let impls: Vec<&Item> = t
            .items
            .iter()
            .filter(|i| matches!(i.kind, ItemKind::TraitImpl | ItemKind::InherentImpl))
            .collect();
        assert_eq!(impls[0].kind, ItemKind::TraitImpl);
        assert_eq!(impls[1].kind, ItemKind::InherentImpl);
    }

    #[test]
    fn impl_generics_with_hrtb_for_is_not_a_trait_impl() {
        let t = tree("impl<F: for<'a> Fn(&'a u8)> S<F> {\n    fn call(&self) {}\n}\n");
        let imp = t
            .items
            .iter()
            .find(|i| matches!(i.kind, ItemKind::InherentImpl | ItemKind::TraitImpl))
            .unwrap();
        assert_eq!(
            imp.kind,
            ItemKind::InherentImpl,
            "`for<'a>` inside generics must not mark a trait impl"
        );
    }

    #[test]
    fn doc_attachment_is_per_item() {
        let t = tree(
            "/// Documented.\npub struct A;\n\npub struct B;\n\n/// Doc with attr between.\n#[derive(Debug)]\npub struct C;\n",
        );
        let docs: Vec<(String, bool)> = t
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Struct)
            .map(|i| (i.name.clone(), i.has_doc))
            .collect();
        assert_eq!(
            docs,
            vec![
                ("A".to_string(), true),
                ("B".to_string(), false),
                ("C".to_string(), true)
            ]
        );
    }

    #[test]
    fn closures_in_for_headers_do_not_eat_the_body() {
        let t = tree("fn f(v: Vec<u8>) {\n  for x in v.iter().map(|b| { *b as u32 }) {\n    work(x);\n  }\n}\n");
        assert_eq!(t.for_loops.len(), 1);
        assert_eq!(t.for_loops[0].body, Span { start: 2, end: 4 });
    }

    #[test]
    fn closure_blocks_in_statement_position_are_descended() {
        let t =
            tree("fn f() {\n  let c = |x: u32| x + 1;\n  run(|| {\n    let inner = 2;\n  });\n}\n");
        // `inner` is inside a closure inside call parens — by the documented
        // non-goal it is invisible; `c` is recorded.
        assert!(t.lets.iter().any(|l| l.names.contains(&"c".to_string())));
    }

    #[test]
    fn enums_consts_statics_types_macros_parse() {
        let t = tree(
            "pub enum E { A, B }\nconst N: usize = { 3 };\npub static S: u8 = 0;\ntype Alias = Vec<u8>;\nmacro_rules! m { () => {} }\nuse std::fmt;\n",
        );
        let kinds: Vec<ItemKind> = t.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Enum,
                ItemKind::Const,
                ItemKind::Static,
                ItemKind::TypeAlias,
                ItemKind::Macro,
                ItemKind::Use
            ]
        );
        assert_eq!(t.items[1].name, "N");
    }

    #[test]
    fn tuple_struct_and_unit_struct_parse() {
        let t = tree("pub struct P(pub u32, f64);\nstruct U;\nstruct W { x: u8 }\n");
        let names: Vec<String> = t.items.iter().map(|i| i.name.clone()).collect();
        assert_eq!(names, vec!["P", "U", "W"]);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let t = tree("fn outer() {\n  fn inner() -> Result<(), ()> {\n    Err(())\n  }\n}\n");
        assert_eq!(t.enclosing_fn(3).unwrap().name, "inner");
        // Line 5 closes outer's body; inner's span ended on line 4.
        assert_eq!(t.enclosing_fn(5).unwrap().name, "outer");
    }

    #[test]
    fn restricted_visibility_is_recorded() {
        let t = tree(
            "pub(crate) fn helper() {}
pub fn api() {}
fn private() {}
",
        );
        assert!(t.items[0].is_pub && t.items[0].pub_restricted);
        assert!(t.items[1].is_pub && !t.items[1].pub_restricted);
        assert!(!t.items[2].is_pub);
    }

    #[test]
    fn raw_identifier_items_parse() {
        let t = tree("pub struct S { r#type: u32 }\nfn r#match() {}\n");
        assert_eq!(t.items[0].name, "S");
        assert!(t.fns.iter().any(|f| f.name == "r#match"));
    }
}
