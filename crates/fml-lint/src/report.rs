//! Report emission: the machine-readable JSON report, GitHub Actions
//! annotations, and the per-rule summary table.
//!
//! The JSON is hand-rolled (the registry is offline, so no serde): the
//! writer escapes strings per RFC 8259, and a minimal reader
//! ([`parse_report_json`]) exists purely so tests can prove the report
//! round-trips through the CI artifact step without a schema drift.

use crate::rules::Violation;
use crate::Report;

/// One row of the rule registry: name + the one-line invariant it protects.
pub struct RuleInfo {
    /// Rule name as it appears in diagnostics and allowlist entries.
    pub name: &'static str,
    /// The invariant the rule protects, for `--summary` and docs.
    pub invariant: &'static str,
}

/// The full rule registry, in reporting order: the five token/line rules,
/// then the five syntax-aware rules, then the allowlist's own hygiene rule.
pub const RULES: [RuleInfo; 11] = [
    RuleInfo {
        name: crate::rules::RULE_UNSAFE,
        invariant:
            "`unsafe` only in audited leaf modules, with SAFETY comments and `# Safety` docs",
    },
    RuleInfo {
        name: crate::rules::RULE_SPAWN,
        invariant: "threads are born only in the pool; bare spawns lose FML_THREADS/SIMD overrides",
    },
    RuleInfo {
        name: crate::rules::RULE_ENV,
        invariant: "FML_* env reads only at the designated resolve sites",
    },
    RuleInfo {
        name: crate::rules::RULE_FLOAT_EQ,
        invariant: "no float ==/!= in production code; to_bits or approx helpers",
    },
    RuleInfo {
        name: crate::rules::RULE_STRAY_IO,
        invariant: "no println!/eprintln!/dbg! in library code",
    },
    RuleInfo {
        name: crate::semantic::RULE_PANIC,
        invariant: "Result-returning store/serve functions propagate typed errors, never panic",
    },
    RuleInfo {
        name: crate::semantic::RULE_GUARD,
        invariant: "no lock guard live across a pool dispatch",
    },
    RuleInfo {
        name: crate::semantic::RULE_NONDET,
        invariant: "no hash-ordered iteration feeding float accumulation (bit-identity)",
    },
    RuleInfo {
        name: crate::semantic::RULE_ALLOC,
        invariant: "no per-iteration allocation in kernel/scorer loops",
    },
    RuleInfo {
        name: crate::semantic::RULE_PUB_DOC,
        invariant: "every externally-pub library item carries a doc comment",
    },
    RuleInfo {
        name: "stale-allowlist",
        invariant: "allowlist entries that match nothing must be removed",
    },
];

/// Escapes `s` as a JSON string body (no surrounding quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn violations_json(vs: &[Violation]) -> String {
    let rows: Vec<String> = vs
        .iter()
        .map(|v| {
            format!(
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                esc(v.rule),
                esc(&v.path),
                v.line,
                esc(&v.message)
            )
        })
        .collect();
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", rows.join(",\n"))
    }
}

/// Serializes a [`Report`] as the machine-readable JSON the CI step uploads.
pub fn to_json(report: &Report) -> String {
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|(rule, n)| format!("    {{\"rule\": \"{}\", \"count\": {n}}}", esc(rule)))
        .collect();
    let suppressed = if suppressed.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n  ]", suppressed.join(",\n"))
    };
    format!(
        "{{\n  \"files_scanned\": {},\n  \"clean\": {},\n  \"violations\": {},\n  \
         \"warnings\": {},\n  \"suppressed\": {}\n}}\n",
        report.files_scanned,
        report.is_clean(),
        violations_json(&report.violations),
        violations_json(&report.warnings),
        suppressed
    )
}

/// A violation read back from the JSON report (`rule` is owned — the
/// `&'static` interning of live runs does not survive serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedViolation {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Diagnostic message.
    pub message: String,
}

/// The JSON report read back: enough structure for the round-trip test and
/// for downstream tooling to consume the artifact.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ParsedReport {
    /// `files_scanned` field.
    pub files_scanned: usize,
    /// `clean` field.
    pub clean: bool,
    /// Deny-severity violations.
    pub violations: Vec<ParsedViolation>,
    /// Warn-severity violations.
    pub warnings: Vec<ParsedViolation>,
    /// Per-rule suppressed counts.
    pub suppressed: Vec<(String, usize)>,
}

/// A minimal JSON reader for the report's own shape (objects, arrays,
/// strings, integers, booleans — no floats, no null, no nesting beyond what
/// [`to_json`] emits).  Exists to prove the artifact round-trips.
pub fn parse_report_json(text: &str) -> Result<ParsedReport, String> {
    let mut p = Json {
        src: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    let obj = v.as_object().ok_or("report is not an object")?;
    let mut out = ParsedReport::default();
    for (k, v) in obj {
        match k.as_str() {
            "files_scanned" => out.files_scanned = v.as_usize().ok_or("files_scanned")?,
            "clean" => out.clean = v.as_bool().ok_or("clean")?,
            "violations" => out.violations = parse_violation_list(v)?,
            "warnings" => out.warnings = parse_violation_list(v)?,
            "suppressed" => {
                for item in v.as_array().ok_or("suppressed")? {
                    let o = item.as_object().ok_or("suppressed item")?;
                    let rule = get_str(o, "rule")?;
                    let count = get(o, "count")?.as_usize().ok_or("count")?;
                    out.suppressed.push((rule, count));
                }
            }
            other => return Err(format!("unknown report field {other:?}")),
        }
    }
    Ok(out)
}

fn parse_violation_list(v: &JsonValue) -> Result<Vec<ParsedViolation>, String> {
    let mut out = Vec::new();
    for item in v.as_array().ok_or("violation list")? {
        let o = item.as_object().ok_or("violation item")?;
        out.push(ParsedViolation {
            rule: get_str(o, "rule")?,
            path: get_str(o, "path")?,
            line: get(o, "line")?.as_usize().ok_or("line")?,
            message: get_str(o, "message")?,
        });
    }
    Ok(out)
}

fn get<'a>(o: &'a [(String, JsonValue)], k: &str) -> Result<&'a JsonValue, String> {
    o.iter()
        .find(|(key, _)| key == k)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {k:?}"))
}

fn get_str(o: &[(String, JsonValue)], k: &str) -> Result<String, String> {
    get(o, k)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {k:?} is not a string"))
}

enum JsonValue {
    Str(String),
    Int(usize),
    Bool(bool),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }
    fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
    fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
}

struct Json<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn ws(&mut self) {
        while self
            .src
            .get(self.pos)
            .map(|b| b.is_ascii_whitespace())
            .unwrap_or(false)
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.ws();
        match self.src.get(self.pos) {
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.src.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                loop {
                    self.ws();
                    let key = match self.value()? {
                        JsonValue::Str(s) => s,
                        _ => return Err("object key is not a string".to_string()),
                    };
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(fields));
                        }
                        _ => return Err(format!("bad object at byte {}", self.pos)),
                    }
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.src.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.src.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(format!("bad array at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.src.get(self.pos) {
                        None => return Err("unterminated string".to_string()),
                        Some(b'"') => {
                            self.pos += 1;
                            return Ok(JsonValue::Str(s));
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.src.get(self.pos) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b'r') => s.push('\r'),
                                Some(b't') => s.push('\t'),
                                Some(b'u') => {
                                    let hex = self
                                        .src
                                        .get(self.pos + 1..self.pos + 5)
                                        .ok_or("bad \\u escape")?;
                                    let code = u32::from_str_radix(
                                        std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                        16,
                                    )
                                    .map_err(|e| e.to_string())?;
                                    s.push(char::from_u32(code).ok_or("bad codepoint")?);
                                    self.pos += 4;
                                }
                                other => return Err(format!("bad escape {other:?}")),
                            }
                            self.pos += 1;
                        }
                        Some(_) => {
                            // Multi-byte UTF-8 sequences pass through intact.
                            let start = self.pos;
                            while self.pos < self.src.len()
                                && !matches!(self.src[self.pos], b'"' | b'\\')
                            {
                                self.pos += 1;
                            }
                            s.push_str(
                                std::str::from_utf8(&self.src[start..self.pos])
                                    .map_err(|e| e.to_string())?,
                            );
                        }
                    }
                }
            }
            Some(b't') if self.src[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') if self.src[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonValue::Bool(false))
            }
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .map(u8::is_ascii_digit)
                    .unwrap_or(false)
                {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .parse()
                    .map(JsonValue::Int)
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }
}

/// Formats one violation as a GitHub Actions workflow annotation
/// (`::error`/`::warning file=…,line=…,title=…::message`), which the runner
/// turns into inline PR review comments.
pub fn github_annotation(v: &Violation, warn: bool) -> String {
    let level = if warn { "warning" } else { "error" };
    // Annotation messages use %0A for newlines and must escape %, per the
    // workflow-command grammar.
    let msg = v.message.replace('%', "%25").replace('\n', "%0A");
    let title = format!("fml-lint: {}", v.rule);
    format!(
        "::{level} file={},line={},title={}::{}",
        v.path, v.line, title, msg
    )
}

/// Renders the per-rule summary table: violations, warnings, and suppressed
/// counts for every registered rule — the nightly job prints this so drift
/// in the allowlist is visible without diffing files.
pub fn summary(report: &Report) -> String {
    let count = |vs: &[Violation], rule: &str| vs.iter().filter(|v| v.rule == rule).count();
    let mut out = String::from("rule                    deny  warn  suppressed\n");
    for rule in &RULES {
        let suppressed = report.suppressed.get(rule.name).copied().unwrap_or(0);
        out.push_str(&format!(
            "{:<22}  {:>4}  {:>4}  {:>10}\n",
            rule.name,
            count(&report.violations, rule.name),
            count(&report.warnings, rule.name),
            suppressed
        ));
    }
    out.push_str(&format!(
        "files scanned: {}; clean: {}\n",
        report.files_scanned,
        report.is_clean()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample() -> Report {
        let mut suppressed = BTreeMap::new();
        suppressed.insert("panic-policy".to_string(), 7);
        Report {
            violations: vec![Violation {
                rule: "float-eq",
                path: "crates/a/src/x.rs".to_string(),
                line: 12,
                message: "msg with \"quotes\" and\nnewline".to_string(),
            }],
            warnings: vec![Violation {
                rule: "alloc-in-hot-loop",
                path: "crates/b/src/y.rs".to_string(),
                line: 3,
                message: "per-iteration alloc — hoist".to_string(),
            }],
            suppressed,
            files_scanned: 114,
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = parse_report_json(&to_json(&report)).unwrap();
        assert_eq!(parsed.files_scanned, 114);
        assert!(!parsed.clean);
        assert_eq!(parsed.violations.len(), 1);
        assert_eq!(parsed.violations[0].rule, "float-eq");
        assert_eq!(parsed.violations[0].line, 12);
        assert_eq!(
            parsed.violations[0].message,
            "msg with \"quotes\" and\nnewline"
        );
        assert_eq!(parsed.warnings.len(), 1);
        assert_eq!(parsed.warnings[0].message, "per-iteration alloc — hoist");
        assert_eq!(parsed.suppressed, vec![("panic-policy".to_string(), 7)]);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = Report {
            violations: Vec::new(),
            warnings: Vec::new(),
            suppressed: BTreeMap::new(),
            files_scanned: 0,
        };
        let parsed = parse_report_json(&to_json(&report)).unwrap();
        assert!(parsed.clean);
        assert!(parsed.violations.is_empty() && parsed.suppressed.is_empty());
    }

    #[test]
    fn github_annotations_escape_the_message() {
        let v = Violation {
            rule: "float-eq",
            path: "crates/a/src/x.rs".to_string(),
            line: 9,
            message: "100% wrong\nsecond line".to_string(),
        };
        let line = github_annotation(&v, false);
        assert_eq!(
            line,
            "::error file=crates/a/src/x.rs,line=9,title=fml-lint: float-eq\
             ::100%25 wrong%0Asecond line"
        );
        assert!(github_annotation(&v, true).starts_with("::warning "));
    }

    #[test]
    fn summary_lists_every_rule() {
        let s = summary(&sample());
        for rule in &RULES {
            assert!(s.contains(rule.name), "summary missing {}", rule.name);
        }
        assert!(s.contains("files scanned: 114"));
    }

    #[test]
    fn rule_registry_has_no_duplicates() {
        let mut names: Vec<&str> = RULES.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RULES.len());
    }
}
