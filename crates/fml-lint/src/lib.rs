//! `fml-lint`: the workspace static-analysis pass enforcing the invariants
//! `rustc` cannot check for us.
//!
//! The system's headline claims — factorized results bit-identical to the
//! materialized oracle, `FML_*` precedence resolved in exactly one place,
//! thread fan-out only through the worker pool, `unsafe` sound by the
//! drain-before-return protocol — all live in prose and tests.  This crate
//! makes them machine-checked: a minimal hand-rolled Rust lexer
//! ([`lexer`] — no `syn`/`dylint`, the registry is offline) feeds two rule
//! layers that walk every workspace source file and report `file:line`
//! diagnostics.
//!
//! **Token/line rules** ([`rules`]):
//!
//! * **`unsafe-audit`** — `unsafe` only in the audited leaf modules
//!   (`fml-linalg/src/simd.rs`, `fml-linalg/src/pool.rs`, the shims), every
//!   block/impl preceded by a `// SAFETY:` comment, every `unsafe fn`
//!   documented with a `# Safety` section.
//! * **`no-raw-spawn`** — `std::thread::spawn` only in `pool.rs` and test
//!   code: a bare spawn inherits neither the scoped `FML_THREADS` override
//!   nor the SIMD level, silently changing kernel behavior on the new
//!   thread.
//! * **`env-centralization`** — `env::var("FML_…")` only at the designated
//!   resolve sites (`policy.rs`, `simd.rs`, `exec.rs`, `fml-bench`).
//! * **`float-eq`** — no floating-point `==`/`!=`/`assert_eq!` in
//!   production code; bit contracts go through `f64::to_bits`, tolerances
//!   through the approx helpers.  Test code is exempt by design: the test
//!   corpus *is* the designated equivalence suite and its exact comparisons
//!   are deliberate bit-contract pins.
//! * **`no-stray-io`** — no `println!`/`eprintln!`/`dbg!` in library code.
//!
//! **Syntax-aware rules** ([`semantic`]), built on a dependency-free
//! recursive-descent parser ([`parse`]) that recovers items, function
//! signatures and return types, brace-matched blocks, loop nesting, and
//! `let`-binding scopes from the token stream:
//!
//! * **`panic-policy`** — no `unwrap`/`expect`/`panic!`-family calls inside
//!   `Result`-returning production functions of `fml-store`/`fml-serve`;
//!   fallible paths propagate typed errors.
//! * **`guard-across-dispatch`** — no `Mutex`/`RwLock` guard bound by `let`
//!   and still live at a worker-pool dispatch (`pool::run*`,
//!   `par_chunks*`, `par_row_bands*`) in the same scope: the closure fans
//!   out to worker threads while the caller holds the lock.
//! * **`nondet-iteration`** — no iteration over `HashMap`/`HashSet` state
//!   that feeds floating-point accumulation: hash order is randomized per
//!   process, so such loops break the bit-identity contract.  Sorted-key
//!   staging (`sorted_keys`/`sort_unstable`) is the sanctioned escape.
//! * **`alloc-in-hot-loop`** — no `Vec::new`/`vec![…]`/`.to_vec()`/
//!   `.collect()`/`.clone()` inside loops of the kernel files (`gemm.rs`,
//!   `simd.rs`, `sparse.rs`, `csr.rs`) or the serving scorer; buffers are
//!   hoisted and reused.
//! * **`pub-doc`** — every externally-`pub` library item carries a doc
//!   comment, and every library file opens with a `//!` header.
//!
//! The parser is deliberately not a Rust front-end: it tracks the shapes
//! the rules need (items, signatures, blocks, loops, `let` scopes) and
//! nothing else — no expressions, no types beyond token runs, no name
//! resolution, no macro expansion.  Rules built on it are heuristic and
//! tuned to this workspace's idioms; the escape hatch for false positives
//! is a *reasoned* allowlist entry, never a weaker rule.
//!
//! Justified exceptions live in `lint-allowlist.txt` at the workspace root
//! ([`allowlist`]) — plain text, one `[warn] rule path-glob reason` entry
//! per line.  Paths are globs (`*`, `**`, `?`); a `warn` prefix downgrades
//! matches to non-fatal warnings for hazards that are tracked rather than
//! proven impossible; entries that no longer match anything are themselves
//! errors.
//!
//! The pass ships three ways: the `fml-lint` binary (CI and humans, with
//! `--json`/`--github`/`--summary` outputs — see [`report`]), the
//! workspace self-clean test in `tests/workspace_clean.rs` (so tier-1
//! `cargo test -q` enforces it forever), and the CI step wiring.  What the
//! lint cannot see statically — real interleavings through the pool's
//! lifetime-erased `RawTask`s — is covered dynamically by the nightly Miri
//! and ThreadSanitizer jobs (see `.github/workflows/nightly.yml`).

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod walk;

use std::collections::BTreeMap;
use std::path::Path;

pub use rules::{check_file, Violation};

/// Name of the allowlist file expected at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allowlist.txt";

/// The outcome of a workspace run after the allowlist is applied.
#[derive(Debug)]
pub struct Report {
    /// Deny-severity violations that survived the allowlist (empty means
    /// clean); includes `stale-allowlist` diagnostics for dead entries.
    pub violations: Vec<Violation>,
    /// Violations downgraded by `warn` allowlist entries: reported but
    /// non-fatal.
    pub warnings: Vec<Violation>,
    /// Per-rule counts of violations suppressed by plain allowlist entries.
    pub suppressed: BTreeMap<String, usize>,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run found nothing fatal: no surviving deny violations.
    /// Warnings and suppressed counts do not affect cleanliness.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every rule over every workspace source file under `root`, applies
/// the allowlist, and turns stale allowlist entries into violations.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::rust_files(root)?;
    let mut violations = Vec::new();
    for (rel, abs) in &files {
        let source =
            std::fs::read_to_string(abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        violations.extend(rules::check_file(rel, &source));
    }
    let allow_path = root.join(ALLOWLIST_FILE);
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
        allowlist::parse(&text)?
    } else {
        Vec::new()
    };
    let mut applied = allowlist::apply(&entries, violations);
    let mut kept = applied.deny;
    for entry in applied.stale {
        kept.push(Violation {
            rule: "stale-allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: entry.line,
            message: format!(
                "allowlist entry `{} {}` matched no violation — the exception \
                 is no longer needed; remove it",
                entry.rule, entry.path
            ),
        });
    }
    let by_location = |a: &Violation, b: &Violation| (&a.path, a.line).cmp(&(&b.path, b.line));
    kept.sort_by(by_location);
    applied.warnings.sort_by(by_location);
    Ok(Report {
        violations: kept,
        warnings: applied.warnings,
        suppressed: applied.suppressed,
        files_scanned: files.len(),
    })
}
