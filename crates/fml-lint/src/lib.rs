//! `fml-lint`: the workspace static-analysis pass enforcing the invariants
//! `rustc` cannot check for us.
//!
//! The system's headline claims — factorized results bit-identical to the
//! materialized oracle, `FML_*` precedence resolved in exactly one place,
//! thread fan-out only through the worker pool, `unsafe` sound by the
//! drain-before-return protocol — all live in prose and tests.  This crate
//! makes them machine-checked: a minimal hand-rolled Rust lexer
//! ([`lexer`] — no `syn`/`dylint`, the registry is offline) feeds a
//! token/line-level rule engine ([`rules`]) that walks every workspace
//! source file and reports `file:line` diagnostics for:
//!
//! * **`unsafe-audit`** — `unsafe` only in the audited leaf modules
//!   (`fml-linalg/src/simd.rs`, `fml-linalg/src/pool.rs`, the shims), every
//!   block/impl preceded by a `// SAFETY:` comment, every `unsafe fn`
//!   documented with a `# Safety` section.
//! * **`no-raw-spawn`** — `std::thread::spawn` only in `pool.rs` and test
//!   code: a bare spawn inherits neither the scoped `FML_THREADS` override
//!   nor the SIMD level, silently changing kernel behavior on the new
//!   thread.
//! * **`env-centralization`** — `env::var("FML_…")` only at the designated
//!   resolve sites (`policy.rs`, `simd.rs`, `exec.rs`, `fml-bench`).
//! * **`float-eq`** — no floating-point `==`/`!=`/`assert_eq!` in
//!   production code; bit contracts go through `f64::to_bits`, tolerances
//!   through the approx helpers.  Test code is exempt by design: the test
//!   corpus *is* the designated equivalence suite and its exact comparisons
//!   are deliberate bit-contract pins.
//! * **`no-stray-io`** — no `println!`/`eprintln!`/`dbg!` in library code.
//!
//! Justified exceptions live in `lint-allowlist.txt` at the workspace root
//! ([`allowlist`]) — plain text, one `rule path reason` entry per line, and
//! entries that no longer match anything are themselves errors.
//!
//! The pass ships three ways: the `fml-lint` binary (CI and humans), the
//! workspace self-clean test in `tests/workspace_clean.rs` (so tier-1
//! `cargo test -q` enforces it forever), and the CI step wiring.  What the
//! lint cannot see statically — real interleavings through the pool's
//! lifetime-erased `RawTask`s — is covered dynamically by the nightly Miri
//! and ThreadSanitizer jobs (see `.github/workflows/nightly.yml`).

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use rules::{check_file, Violation};

/// Name of the allowlist file expected at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allowlist.txt";

/// The outcome of a workspace run: surviving violations (empty means clean)
/// and how many files were scanned.
#[derive(Debug)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every rule over every workspace source file under `root`, applies
/// the allowlist, and turns stale allowlist entries into violations.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let files = walk::rust_files(root)?;
    let mut violations = Vec::new();
    for (rel, abs) in &files {
        let source =
            std::fs::read_to_string(abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        violations.extend(rules::check_file(rel, &source));
    }
    let allow_path = root.join(ALLOWLIST_FILE);
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
        allowlist::parse(&text)?
    } else {
        Vec::new()
    };
    let (mut kept, stale) = allowlist::apply(&entries, violations);
    for entry in stale {
        kept.push(Violation {
            rule: "stale-allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: entry.line,
            message: format!(
                "allowlist entry `{} {}` matched no violation — the exception \
                 is no longer needed; remove it",
                entry.rule, entry.path
            ),
        });
    }
    kept.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(Report {
        violations: kept,
        files_scanned: files.len(),
    })
}
