//! The `fml-lint` binary: run from the workspace root (CI does
//! `cargo run -p fml-lint`), or pass the root as the first positional
//! argument.  Prints one `file:line: [rule] message` diagnostic per
//! violation and exits non-zero when any deny-severity violation survives
//! the allowlist (warnings are printed but never fail the run).
//!
//! Flags:
//!
//! * `--json <path>` — write the machine-readable report to `path`
//!   (uploaded as a CI artifact).
//! * `--github` — additionally emit GitHub Actions `::error`/`::warning`
//!   workflow annotations, which the runner renders inline on the PR diff.
//! * `--summary` — print the per-rule deny/warn/suppressed table (the
//!   nightly job uses this to make allowlist drift visible).

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: Option<PathBuf>,
    github: bool,
    summary: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: None,
        github: false,
        summary: false,
    };
    let mut saw_root = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let path = args.next().ok_or("--json requires a path argument")?;
                opts.json = Some(PathBuf::from(path));
            }
            "--github" => opts.github = true,
            "--summary" => opts.summary = true,
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown flag {flag}; known: --json <path>, --github, --summary"
                ));
            }
            positional => {
                if saw_root {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
                saw_root = true;
                opts.root = PathBuf::from(positional);
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("fml-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "fml-lint: {} does not look like the workspace root (no Cargo.toml)",
            opts.root.display()
        );
        return ExitCode::FAILURE;
    }
    let report = match fml_lint::run_workspace(&opts.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fml-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &report.violations {
        println!("{v}");
        if opts.github {
            println!("{}", fml_lint::report::github_annotation(v, false));
        }
    }
    for v in &report.warnings {
        println!("warning: {v}");
        if opts.github {
            println!("{}", fml_lint::report::github_annotation(v, true));
        }
    }
    if let Some(path) = &opts.json {
        let json = fml_lint::report::to_json(&report);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("fml-lint: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if opts.summary {
        print!("{}", fml_lint::report::summary(&report));
    }
    if report.is_clean() {
        let suppressed: usize = report.suppressed.values().sum();
        println!(
            "fml-lint: clean ({} files, {} rule(s), {} warning(s), {} suppressed)",
            report.files_scanned,
            fml_lint::report::RULES.len(),
            report.warnings.len(),
            suppressed
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "fml-lint: {} violation(s) across {} files",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
