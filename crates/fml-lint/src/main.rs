//! The `fml-lint` binary: run from the workspace root (CI does
//! `cargo run -p fml-lint`), or pass the root as the first argument.
//! Prints one `file:line: [rule] message` diagnostic per violation and
//! exits non-zero when any survive the allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "fml-lint: {} does not look like the workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::FAILURE;
    }
    match fml_lint::run_workspace(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            if report.is_clean() {
                println!(
                    "fml-lint: clean ({} files, rules: unsafe-audit no-raw-spawn \
                     env-centralization float-eq no-stray-io)",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "fml-lint: {} violation(s) across {} files",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("fml-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
