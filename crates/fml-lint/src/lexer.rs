//! A minimal Rust lexer: just enough token structure for line-level lint
//! rules, with none of the grammar.
//!
//! The hard part of scanning Rust for *tokens we care about* (`unsafe`,
//! `thread::spawn`, float literals next to `==`) is everything that can
//! *contain* those spellings without meaning them: line comments, nested
//! block comments, regular/raw/byte string literals, and character literals
//! that must not be confused with lifetimes.  This module resolves exactly
//! those ambiguities and emits a flat token stream plus the comment text
//! (which the `unsafe`-audit rule needs to find `// SAFETY:` markers and
//! `# Safety` doc sections).
//!
//! It is *not* a conforming lexer: multi-character operators beyond the
//! common two/three-character ones are split, numeric suffixes are folded
//! into the literal, and no parsing happens.  That is sufficient — every
//! rule matches short token sequences, and the fixtures in `tests/` pin the
//! corner cases (nested `/* /* */ */`, `r#"…"#`, `'a'` vs `'a`, doc comments
//! containing the word `unsafe`).

/// What a token is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `spawn`, `foo_bar`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Integer literal (including hex/octal/binary and tuple-index digits).
    Int,
    /// Floating-point literal (`1.0`, `2e5`, `3f64`).  The float-eq rule
    /// keys on this kind.
    Float,
    /// String or byte-string literal; `text` holds the *contents* (quotes
    /// and raw-string hashes stripped, escapes left as written).
    Str,
    /// Character or byte-character literal (`'a'`, `b'\n'`).
    Char,
    /// Any other punctuation; common two/three-character operators (`::`,
    /// `==`, `!=`, `..=`, …) arrive as a single token.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

/// One comment with its 1-based *starting* line.  `doc` distinguishes
/// `///`/`//!`/`/**`/`/*!` documentation from plain comments.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
    pub doc: bool,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators recognized as single `Punct` tokens, longest
/// first so `..=` is not split into `..` `=` (which would make `==`-matching
/// rules misfire on range patterns).
const OPS3: [&str; 4] = ["..=", "...", "<<=", ">>="];
const OPS2: [&str; 18] = [
    "::", "==", "!=", "<=", ">=", "->", "=>", "..", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=",
    "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src` into tokens and comments.  Never fails: unterminated
/// constructs simply run to end of input (the rustc build will report them;
/// the lint only needs to stay sound on valid code).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        // -- whitespace ----------------------------------------------------
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // -- comments ------------------------------------------------------
        if c == b'/' && cur.peek(1) == Some(b'/') {
            let line = cur.line;
            let start = cur.pos;
            while let Some(c) = cur.peek(0) {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            let text = std::str::from_utf8(&cur.src[start..cur.pos])
                .unwrap_or("")
                .to_string();
            // `///` and `//!` are doc comments; `////…` is a plain divider.
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            out.comments.push(Comment { line, text, doc });
            continue;
        }
        if c == b'/' && cur.peek(1) == Some(b'*') {
            let line = cur.line;
            let start = cur.pos;
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            // Block comments nest in Rust: track depth.
            while depth > 0 {
                if cur.starts_with("/*") {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.starts_with("*/") {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                } else if cur.bump().is_none() {
                    break;
                }
            }
            let text = std::str::from_utf8(&cur.src[start..cur.pos])
                .unwrap_or("")
                .to_string();
            let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
                || text.starts_with("/*!");
            out.comments.push(Comment { line, text, doc });
            continue;
        }
        // -- raw / byte string prefixes ------------------------------------
        // r"…", r#"…"#, br"…", b"…", b'…' — checked before plain idents so
        // the prefix letter is not lexed as an identifier.
        if (c == b'r' || c == b'b') && raw_or_byte_string(&mut cur, &mut out) {
            continue;
        }
        // -- identifiers ----------------------------------------------------
        if is_ident_start(c) {
            let line = cur.line;
            let start = cur.pos;
            while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
                line,
            });
            continue;
        }
        // -- numbers --------------------------------------------------------
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out);
            continue;
        }
        // -- strings --------------------------------------------------------
        if c == b'"' {
            lex_quoted(&mut cur, &mut out, b'"');
            continue;
        }
        // -- char literal vs lifetime --------------------------------------
        if c == b'\'' {
            lex_tick(&mut cur, &mut out);
            continue;
        }
        // -- punctuation ----------------------------------------------------
        let line = cur.line;
        let mut matched = None;
        for op in OPS3 {
            if cur.starts_with(op) {
                matched = Some(op);
                break;
            }
        }
        if matched.is_none() {
            for op in OPS2 {
                if cur.starts_with(op) {
                    matched = Some(op);
                    break;
                }
            }
        }
        if let Some(op) = matched {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: op.to_string(),
                line,
            });
        } else {
            cur.bump();
            out.tokens.push(Token {
                kind: TokenKind::Punct,
                text: (c as char).to_string(),
                line,
            });
        }
    }
    out
}

/// Handles `r`/`b`-prefixed literals at the cursor.  Returns `false` (cursor
/// untouched) when the prefix is actually a plain identifier (`radius`,
/// `b`).  Raw identifiers (`r#type`) are lexed here as a *single* `Ident`
/// token whose text keeps the `r#` prefix: `r#unsafe` names an identifier,
/// never the keyword, so keyword-matching rules must not see it as `unsafe`
/// — and the parser must not see a stray `#` inside a struct body.
fn raw_or_byte_string(cur: &mut Cursor, out: &mut Lexed) -> bool {
    let c = cur.peek(0).unwrap();
    // b'…' byte char
    if c == b'b' && cur.peek(1) == Some(b'\'') {
        cur.bump();
        lex_tick(cur, out);
        return true;
    }
    // b"…" byte string
    if c == b'b' && cur.peek(1) == Some(b'"') {
        cur.bump();
        lex_quoted(cur, out, b'"');
        return true;
    }
    // r#ident — raw identifier (exactly one `#`, then an ident start).
    if c == b'r' && cur.peek(1) == Some(b'#') && cur.peek(2).map(is_ident_start).unwrap_or(false) {
        let line = cur.line;
        let start = cur.pos;
        cur.bump(); // r
        cur.bump(); // #
        while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Ident,
            text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            line,
        });
        return true;
    }
    // r"…" / r#"…"# / br"…" / br#"…"#
    let mut ahead = 1;
    if c == b'b' && cur.peek(1) == Some(b'r') {
        ahead = 2;
    } else if c != b'r' {
        return false;
    }
    let mut hashes = 0usize;
    while cur.peek(ahead + hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek(ahead + hashes) != Some(b'"') {
        return false; // a plain ident starting with r/b
    }
    let line = cur.line;
    for _ in 0..ahead + hashes + 1 {
        cur.bump();
    }
    let start = cur.pos;
    let terminator = format!("\"{}", "#".repeat(hashes));
    let mut end = cur.pos;
    while cur.peek(0).is_some() {
        if cur.starts_with(&terminator) {
            end = cur.pos;
            for _ in 0..terminator.len() {
                cur.bump();
            }
            break;
        }
        cur.bump();
        end = cur.pos;
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
    });
    true
}

/// Lexes a `"…"` (or `b"…"`) string with backslash escapes.
fn lex_quoted(cur: &mut Cursor, out: &mut Lexed, quote: u8) {
    let line = cur.line;
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek(0) {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
            continue;
        }
        if c == quote {
            end = cur.pos;
            cur.bump();
            break;
        }
        cur.bump();
        end = cur.pos;
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
    });
}

/// Disambiguates `'…` — char literal or lifetime/label.
///
/// After the tick: a backslash always means a char literal (`'\n'`); an
/// identifier character followed by a closing tick is a char literal
/// (`'a'`); an identifier character *not* followed by a closing tick starts
/// a lifetime (`'a`, `'static`); anything else (e.g. `'('`) is a one-char
/// literal.
fn lex_tick(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let next = cur.peek(1);
    let after = cur.peek(2);
    let is_lifetime = match next {
        Some(c) if is_ident_start(c) => after != Some(b'\''),
        _ => false,
    };
    if is_lifetime {
        cur.bump(); // tick
        let start = cur.pos;
        while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Lifetime,
            text: format!("'{}", String::from_utf8_lossy(&cur.src[start..cur.pos])),
            line,
        });
        return;
    }
    // Char literal: consume to the closing tick, honoring escapes.
    cur.bump(); // opening tick
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek(0) {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
            continue;
        }
        if c == b'\'' {
            end = cur.pos;
            cur.bump();
            break;
        }
        // A char literal is at most a few bytes; bail if a stray tick opens
        // something unterminated so we cannot swallow the rest of the file.
        if cur.pos - start > 8 {
            break;
        }
        cur.bump();
        end = cur.pos;
    }
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text: String::from_utf8_lossy(&cur.src[start..end]).into_owned(),
        line,
    });
}

/// Lexes a numeric literal, classifying it as `Int` or `Float`.
///
/// Float iff it has a fractional part (`1.0`, `4.`), an exponent (`2e5`), or
/// an `f32`/`f64` suffix.  `x.0` tuple indexing never reaches here with the
/// dot (the dot is lexed as punctuation first), and `1..n` keeps the range
/// operator: a dot only joins the literal when followed by a digit or by
/// nothing number-like (`4.`), never by a second dot or an identifier.
fn lex_number(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let start = cur.pos;
    let mut float = false;

    if cur.peek(0) == Some(b'0')
        && matches!(
            cur.peek(1),
            Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X')
        )
    {
        cur.bump();
        cur.bump();
        while cur
            .peek(0)
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            cur.bump();
        }
    } else {
        while cur
            .peek(0)
            .map(|c| c.is_ascii_digit() || c == b'_')
            .unwrap_or(false)
        {
            cur.bump();
        }
        // fractional part
        if cur.peek(0) == Some(b'.') {
            let after = cur.peek(1);
            let joins = match after {
                Some(c) if c.is_ascii_digit() => true,
                Some(b'.') => false,                   // range `1..n`
                Some(c) if is_ident_start(c) => false, // method `1.max(..)`
                _ => true,                             // trailing `4.`
            };
            if joins {
                float = true;
                cur.bump();
                while cur
                    .peek(0)
                    .map(|c| c.is_ascii_digit() || c == b'_')
                    .unwrap_or(false)
                {
                    cur.bump();
                }
            }
        }
        // exponent
        if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
            let (sign, digit) = (cur.peek(1), cur.peek(2));
            let has_exp = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some(b'+') | Some(b'-') => digit.map(|c| c.is_ascii_digit()).unwrap_or(false),
                _ => false,
            };
            if has_exp {
                float = true;
                cur.bump();
                if matches!(cur.peek(0), Some(b'+') | Some(b'-')) {
                    cur.bump();
                }
                while cur
                    .peek(0)
                    .map(|c| c.is_ascii_digit() || c == b'_')
                    .unwrap_or(false)
                {
                    cur.bump();
                }
            }
        }
        // suffix (u32, i64, f64, usize, …) — folded into the literal
        let suffix_start = cur.pos;
        while cur.peek(0).map(is_ident_continue).unwrap_or(false) {
            cur.bump();
        }
        let suffix = &cur.src[suffix_start..cur.pos];
        if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
            float = true;
        }
    }

    out.tokens.push(Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
        line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let l = lex("a /* outer /* inner */ still outer */ b");
        assert_eq!(l.tokens.len(), 2, "only `a` and `b` are code");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert!(!l.comments[0].doc);
    }

    #[test]
    fn line_and_doc_comments_are_classified() {
        let l = lex("/// doc\n//! inner doc\n// plain\n//// divider\nfn x() {}");
        let docs: Vec<bool> = l.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, true, false, false]);
        assert_eq!(l.comments[2].line, 3);
    }

    #[test]
    fn doc_comment_containing_unsafe_is_not_a_code_token() {
        let l = lex("/// this fn is unsafe to misuse\nfn safe_actually() {}");
        assert!(
            !l.tokens.iter().any(|t| t.text == "unsafe"),
            "`unsafe` inside a doc comment must not appear as a code token"
        );
        assert!(l.comments[0].text.contains("unsafe"));
    }

    #[test]
    fn raw_strings_hide_their_contents_from_code() {
        let l = lex(r###"let s = r#"unsafe { == } "quoted" "#; let t = 1;"###);
        let strs: Vec<&Token> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("unsafe"));
        assert!(
            !l.tokens
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "unsafe"),
            "raw-string contents must not leak into code tokens"
        );
        // the lexer resumes correctly after the closing `"#`
        assert!(l.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_strings() {
        let l = lex(r##"let a = b"bytes"; let b2 = br#"raw bytes"#;"##);
        let strs: Vec<String> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec!["bytes".to_string(), "raw bytes".to_string()]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("let c = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n'; 'outer: loop {}");
        let chars: Vec<String> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        let lifetimes: Vec<String> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["a".to_string(), "\\n".to_string()]);
        assert_eq!(
            lifetimes,
            vec!["'a".to_string(), "'a".to_string(), "'outer".to_string()]
        );
    }

    #[test]
    fn escaped_quote_inside_string_does_not_terminate_it() {
        let l = lex(r#"let s = "with \" quote"; let x = 2;"#);
        let s = l
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("one string");
        assert_eq!(s.text, r#"with \" quote"#);
        assert!(l.tokens.iter().any(|t| t.text == "x"));
    }

    #[test]
    fn float_vs_int_classification() {
        for (src, kind) in [
            ("1.0", TokenKind::Float),
            ("4.", TokenKind::Float),
            ("2e5", TokenKind::Float),
            ("1.5e-3", TokenKind::Float),
            ("3f64", TokenKind::Float),
            ("7", TokenKind::Int),
            ("0xFF", TokenKind::Int),
            ("1_000", TokenKind::Int),
            ("42usize", TokenKind::Int),
        ] {
            let l = lex(src);
            assert_eq!(l.tokens[0].kind, kind, "literal {src:?}");
        }
        // tuple index and ranges stay integers
        let l = kinds("x.0 == y.0");
        assert!(l.iter().all(|(k, _)| *k != TokenKind::Float), "{l:?}");
        let l = kinds("for i in 1..n {}");
        assert!(l.iter().any(|(k, t)| *k == TokenKind::Punct && t == ".."));
        assert!(l.iter().all(|(k, _)| *k != TokenKind::Float));
        // method call on an integer literal
        let l = kinds("1.max(2)");
        assert!(l.iter().any(|(_, t)| t == "max"));
        assert!(l.iter().all(|(k, _)| *k != TokenKind::Float));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let l = kinds("a == b != c ..= d :: e");
        let puncts: Vec<&str> = l
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "..=", "::"]);
    }

    #[test]
    fn unsafe_code_attribute_is_one_identifier() {
        let l = kinds("#[allow(unsafe_code)]");
        assert!(
            l.iter().any(|(_, t)| t == "unsafe_code"),
            "`unsafe_code` must not split into `unsafe` + `_code`: {l:?}"
        );
        assert!(!l.iter().any(|(_, t)| t == "unsafe"));
    }

    #[test]
    fn raw_identifiers_are_single_idents_and_never_keywords() {
        let l = kinds("struct S { r#type: u32, r#unsafe: bool }\nlet r#fn = 1;");
        assert!(
            l.iter()
                .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"),
            "r#type must be one Ident token: {l:?}"
        );
        assert!(
            !l.iter().any(|(_, t)| t == "unsafe" || t == "#"),
            "r#unsafe must not leak a bare `unsafe` keyword or `#`: {l:?}"
        );
        // `r#"…"#` raw strings still lex as strings after the change.
        let l = lex(r###"let s = r#"still a string"#;"###);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "fn a() {}\n/* two\nlines */\nlet s = \"x\ny\";\nfn b() {}";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 6);
        assert_eq!(l.comments[0].line, 2);
    }
}
