//! Property-based tests for the storage engine: encode/decode round trips, page
//! capacity invariants, and join correctness against an in-memory oracle.

use fml_store::batch::scan_all;
use fml_store::factorized_scan::GroupScan;
use fml_store::join::materialize_join;
use fml_store::{Database, JoinSpec, Schema, Tuple};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tuple_encode_decode_roundtrip(
        nfk in 0usize..3,
        nfeat in 0usize..20,
        has_target in any::<bool>(),
        key in any::<u64>(),
        raw_fks in prop::collection::vec(0u64..50, 3),
        raw_feats in prop::collection::vec(-1e6f64..1e6, 20),
        target in -1e6f64..1e6,
    ) {
        let schema = Schema { name: "t".into(), num_features: nfeat, num_foreign_keys: nfk, has_target };
        let tuple = Tuple {
            key,
            fks: raw_fks[..nfk].to_vec(),
            target: if has_target { Some(target) } else { None },
            features: raw_feats[..nfeat].to_vec(),
        };
        let mut buf = Vec::new();
        tuple.encode(&schema, &mut buf);
        prop_assert_eq!(buf.len(), schema.record_size());
        let back = Tuple::decode(&schema, &buf).unwrap();
        prop_assert_eq!(back, tuple);
    }

    #[test]
    fn relation_scan_preserves_all_tuples(n in 1u64..500, nfeat in 1usize..12) {
        let db = Database::in_memory();
        let rel = db.create_relation(Schema::dimension("r", nfeat)).unwrap();
        let mut expected = Vec::new();
        {
            let mut r = rel.lock();
            for key in 0..n {
                let t = Tuple::dimension(key, (0..nfeat).map(|j| (key * 7 + j as u64) as f64).collect());
                r.append(&t).unwrap();
                expected.push(t);
            }
            r.flush().unwrap();
        }
        let scanned = scan_all(&rel, 3).unwrap();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn materialized_join_matches_group_scan_oracle(n_r in 1u64..20, n_s in 1u64..200, d_s in 1usize..4, d_r in 1usize..6) {
        let db = Database::in_memory();
        let r = db.create_relation(Schema::dimension("R", d_r)).unwrap();
        let s = db.create_relation(Schema::fact("S", d_s, 1)).unwrap();
        for key in 0..n_r {
            r.lock().append(&Tuple::dimension(key, vec![key as f64; d_r])).unwrap();
        }
        for key in 0..n_s {
            s.lock().append(&Tuple::fact(key, vec![key % n_r], vec![key as f64; d_s])).unwrap();
        }
        r.lock().flush().unwrap();
        s.lock().flush().unwrap();
        let spec = JoinSpec::binary("S", "R");

        // oracle: denormalize via the group scan
        let mut oracle: HashMap<u64, Vec<f64>> = HashMap::new();
        for block in GroupScan::from_spec(&db, &spec, 2).unwrap() {
            for group in block.unwrap() {
                for j in group.denormalize() {
                    oracle.insert(j.key, j.features);
                }
            }
        }

        let t = materialize_join(&db, &spec, "T", 2).unwrap();
        let rows = t.lock().read_all().unwrap();
        prop_assert_eq!(rows.len() as u64, n_s);
        for row in rows {
            prop_assert_eq!(&oracle[&row.key], &row.features);
        }
    }
}
