//! Minimal CSV import/export for relations.
//!
//! The examples use this to show how a real (externally produced) dataset would be
//! loaded into the engine before training; the implementation is intentionally
//! simple (no quoting — all columns are numeric).
//!
//! Column order mirrors the record layout: `key, fk_1 … fk_q, [target,] f_1 … f_d`.

use crate::catalog::RelationHandle;
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Writes a header line for the schema.
fn header(schema: &Schema) -> String {
    let mut cols = vec!["key".to_string()];
    for i in 0..schema.num_foreign_keys {
        cols.push(format!("fk{i}"));
    }
    if schema.has_target {
        cols.push("target".to_string());
    }
    for i in 0..schema.num_features {
        cols.push(format!("x{i}"));
    }
    cols.join(",")
}

/// Exports a relation to a CSV file (with header).
pub fn export_csv(relation: &RelationHandle, path: &Path) -> StoreResult<()> {
    let mut rel = relation.lock();
    let schema = rel.schema().clone();
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{}", header(&schema))?;
    for p in 0..rel.num_pages() {
        for t in rel.read_page_tuples(p)? {
            let mut cols = Vec::with_capacity(schema.fields_per_record());
            cols.push(t.key.to_string());
            for fk in &t.fks {
                cols.push(fk.to_string());
            }
            if let Some(y) = t.target {
                cols.push(format!("{y}"));
            }
            for f in &t.features {
                cols.push(format!("{f}"));
            }
            writeln!(w, "{}", cols.join(","))?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Parses one CSV line into a tuple for the given schema.
fn parse_line(schema: &Schema, line: &str, line_no: usize) -> StoreResult<Tuple> {
    let expected =
        1 + schema.num_foreign_keys + usize::from(schema.has_target) + schema.num_features;
    let cols: Vec<&str> = line.split(',').map(|c| c.trim()).collect();
    if cols.len() != expected {
        return Err(StoreError::Csv(format!(
            "line {line_no}: expected {expected} columns, got {}",
            cols.len()
        )));
    }
    let parse_u64 = |s: &str| -> StoreResult<u64> {
        s.parse()
            .map_err(|_| StoreError::Csv(format!("line {line_no}: invalid integer '{s}'")))
    };
    let parse_f64 = |s: &str| -> StoreResult<f64> {
        s.parse()
            .map_err(|_| StoreError::Csv(format!("line {line_no}: invalid number '{s}'")))
    };
    let missing = |what: &str| StoreError::Csv(format!("line {line_no}: missing {what} column"));
    let mut it = cols.into_iter();
    let key = parse_u64(it.next().ok_or_else(|| missing("key"))?)?;
    let mut fks = Vec::with_capacity(schema.num_foreign_keys);
    for _ in 0..schema.num_foreign_keys {
        fks.push(parse_u64(it.next().ok_or_else(|| missing("foreign-key"))?)?);
    }
    let target = if schema.has_target {
        Some(parse_f64(it.next().ok_or_else(|| missing("target"))?)?)
    } else {
        None
    };
    let mut features = Vec::with_capacity(schema.num_features);
    for col in it {
        features.push(parse_f64(col)?);
    }
    Ok(Tuple {
        key,
        fks,
        target,
        features,
    })
}

/// Imports a CSV file (with or without header) into an existing relation.
/// Returns the number of tuples loaded.
pub fn import_csv(relation: &RelationHandle, path: &Path) -> StoreResult<u64> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut rel = relation.lock();
    let schema = rel.schema().clone();
    let mut count = 0u64;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if i == 0 && trimmed.starts_with("key") {
            continue; // header
        }
        let tuple = parse_line(&schema, trimmed, i + 1)?;
        rel.append(&tuple)?;
        count += 1;
    }
    rel.flush()?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;

    #[test]
    fn export_import_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fml_csv_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rel.csv");

        let db = Database::in_memory();
        let schema = Schema::fact_with_target("s", 2, 1);
        let rel = db.create_relation(schema.clone()).unwrap();
        for i in 0..50u64 {
            rel.lock()
                .append(&Tuple::fact_with_target(
                    i,
                    vec![i % 5],
                    i as f64 / 2.0,
                    vec![i as f64, -1.5],
                ))
                .unwrap();
        }
        rel.lock().flush().unwrap();
        export_csv(&rel, &path).unwrap();

        let rel2 = db.create_relation(schema.renamed("s2")).unwrap();
        let n = import_csv(&rel2, &path).unwrap();
        assert_eq!(n, 50);
        let a = rel.lock().read_all().unwrap();
        let b = rel2.lock().read_all().unwrap();
        assert_eq!(a, b);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_format() {
        let schema = Schema::fact_with_target("s", 2, 1);
        assert_eq!(header(&schema), "key,fk0,target,x0,x1");
        let dim = Schema::dimension("r", 1);
        assert_eq!(header(&dim), "key,x0");
    }

    #[test]
    fn parse_line_errors() {
        let schema = Schema::dimension("r", 2);
        assert!(parse_line(&schema, "1,2.0,3.0", 1).is_ok());
        assert!(parse_line(&schema, "1,2.0", 1).is_err()); // too few columns
        assert!(parse_line(&schema, "x,2.0,3.0", 1).is_err()); // bad key
        assert!(parse_line(&schema, "1,a,3.0", 1).is_err()); // bad feature
    }
}
