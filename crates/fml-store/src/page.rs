//! Fixed-size pages holding fixed-width records.
//!
//! Page layout:
//!
//! ```text
//! +-----------+-----------------+---------------------------------------+
//! | count u16 | record_size u16 | record 0 | record 1 | … | free space  |
//! +-----------+-----------------+---------------------------------------+
//! ```
//!
//! All records in a page have the same width (the schema is fixed per relation),
//! so slot addressing is pure arithmetic.  The 4-byte header keeps the payload
//! capacity at `PAGE_SIZE - 4` bytes.

use crate::error::{StoreError, StoreResult};
use crate::PAGE_SIZE;

/// Number of bytes reserved for the page header.
pub const PAGE_HEADER: usize = 4;

/// A single fixed-size page.
#[derive(Clone)]
pub struct Page {
    data: Vec<u8>,
}

impl Page {
    /// Creates an empty page for records of the given size.
    ///
    /// # Errors
    /// Returns [`StoreError::RecordTooLarge`] when a single record cannot fit in
    /// the page payload.
    pub fn new(record_size: usize) -> StoreResult<Self> {
        if record_size == 0 || record_size > PAGE_SIZE - PAGE_HEADER {
            return Err(StoreError::RecordTooLarge {
                record_size,
                capacity: PAGE_SIZE - PAGE_HEADER,
            });
        }
        let mut data = vec![0u8; PAGE_SIZE];
        data[2..4].copy_from_slice(&(record_size as u16).to_le_bytes());
        Ok(Self { data })
    }

    /// Reconstructs a page from raw bytes (e.g. read back from disk).
    pub fn from_bytes(data: Vec<u8>) -> StoreResult<Self> {
        if data.len() != PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                data.len()
            )));
        }
        let page = Self { data };
        let rs = page.record_size();
        if rs == 0 || rs > PAGE_SIZE - PAGE_HEADER {
            return Err(StoreError::Corrupt(format!("invalid record size {rs}")));
        }
        if page.len() > page.capacity() {
            return Err(StoreError::Corrupt(format!(
                "page claims {} records but capacity is {}",
                page.len(),
                page.capacity()
            )));
        }
        Ok(page)
    }

    /// Raw page bytes (always `PAGE_SIZE` long).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of records currently stored.
    pub fn len(&self) -> usize {
        u16::from_le_bytes([self.data[0], self.data[1]]) as usize
    }

    /// Whether the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width in bytes of each record in this page.
    pub fn record_size(&self) -> usize {
        u16::from_le_bytes([self.data[2], self.data[3]]) as usize
    }

    /// Maximum number of records this page can hold.
    pub fn capacity(&self) -> usize {
        (PAGE_SIZE - PAGE_HEADER) / self.record_size()
    }

    /// Whether the page has no free slots left.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    fn set_len(&mut self, len: usize) {
        self.data[0..2].copy_from_slice(&(len as u16).to_le_bytes());
    }

    fn slot_range(&self, slot: usize) -> std::ops::Range<usize> {
        let start = PAGE_HEADER + slot * self.record_size();
        start..start + self.record_size()
    }

    /// Appends an encoded record, returning its slot index.
    ///
    /// # Errors
    /// Returns [`StoreError::SlotOutOfRange`] when the page is full and
    /// [`StoreError::Corrupt`] when the record has the wrong width.
    pub fn push(&mut self, record: &[u8]) -> StoreResult<usize> {
        if record.len() != self.record_size() {
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes pushed into page with record size {}",
                record.len(),
                self.record_size()
            )));
        }
        if self.is_full() {
            return Err(StoreError::SlotOutOfRange {
                slot: self.len(),
                slots: self.capacity(),
            });
        }
        let slot = self.len();
        let range = self.slot_range(slot);
        self.data[range].copy_from_slice(record);
        self.set_len(slot + 1);
        Ok(slot)
    }

    /// Borrows the record stored at `slot`.
    pub fn record(&self, slot: usize) -> StoreResult<&[u8]> {
        if slot >= self.len() {
            return Err(StoreError::SlotOutOfRange {
                slot,
                slots: self.len(),
            });
        }
        Ok(&self.data[self.slot_range(slot)])
    }

    /// Iterates over all occupied records as raw byte slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |slot| &self.data[self.slot_range(slot)])
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Page {{ records: {}/{}, record_size: {} }}",
            self.len(),
            self.capacity(),
            self.record_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut page = Page::new(16).unwrap();
        assert!(page.is_empty());
        assert_eq!(page.capacity(), (PAGE_SIZE - PAGE_HEADER) / 16);
        let rec: Vec<u8> = (0u8..16).collect();
        let slot = page.push(&rec).unwrap();
        assert_eq!(slot, 0);
        assert_eq!(page.len(), 1);
        assert_eq!(page.record(0).unwrap(), rec.as_slice());
    }

    #[test]
    fn fill_to_capacity() {
        let mut page = Page::new(1024).unwrap();
        let rec = vec![7u8; 1024];
        for i in 0..page.capacity() {
            assert_eq!(page.push(&rec).unwrap(), i);
        }
        assert!(page.is_full());
        assert!(page.push(&rec).is_err());
    }

    #[test]
    fn wrong_record_width_rejected() {
        let mut page = Page::new(8).unwrap();
        assert!(page.push(&[0u8; 9]).is_err());
    }

    #[test]
    fn record_too_large_rejected() {
        assert!(Page::new(PAGE_SIZE).is_err());
        assert!(Page::new(0).is_err());
        assert!(Page::new(PAGE_SIZE - PAGE_HEADER).is_ok());
    }

    #[test]
    fn slot_out_of_range() {
        let page = Page::new(8).unwrap();
        assert!(matches!(
            page.record(0),
            Err(StoreError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut page = Page::new(24).unwrap();
        page.push(&[1u8; 24]).unwrap();
        page.push(&[2u8; 24]).unwrap();
        let bytes = page.as_bytes().to_vec();
        let restored = Page::from_bytes(bytes).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.record(1).unwrap(), &[2u8; 24]);
        assert_eq!(restored.record_size(), 24);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Page::from_bytes(vec![0u8; 10]).is_err());
        // valid size but zero record size
        assert!(Page::from_bytes(vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn iter_yields_all_records() {
        let mut page = Page::new(8).unwrap();
        for i in 0..5u8 {
            page.push(&[i; 8]).unwrap();
        }
        let collected: Vec<Vec<u8>> = page.iter().map(|r| r.to_vec()).collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[3], vec![3u8; 8]);
    }
}
