//! Error types for the storage engine.

use std::fmt;

/// Result alias used throughout the crate.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A relation with this name already exists in the catalog.
    RelationExists(String),
    /// No relation with this name exists in the catalog.
    UnknownRelation(String),
    /// A tuple did not match the relation's schema.
    SchemaMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A page index was out of range for the heap file.
    PageOutOfRange {
        /// Requested page index.
        page: usize,
        /// Number of pages in the file.
        pages: usize,
    },
    /// A record slot was out of range within a page.
    SlotOutOfRange {
        /// Requested slot.
        slot: usize,
        /// Number of occupied slots.
        slots: usize,
    },
    /// The record is too large to ever fit in a page.
    RecordTooLarge {
        /// Size of one record in bytes.
        record_size: usize,
        /// Page payload capacity in bytes.
        capacity: usize,
    },
    /// A foreign key referenced a primary key that does not exist.
    DanglingForeignKey {
        /// Referencing relation.
        relation: String,
        /// The missing key value.
        key: u64,
    },
    /// Stored bytes could not be decoded.
    Corrupt(String),
    /// A CSV file could not be parsed.
    Csv(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::RelationExists(n) => write!(f, "relation '{n}' already exists"),
            StoreError::UnknownRelation(n) => write!(f, "unknown relation '{n}'"),
            StoreError::SchemaMismatch { relation, detail } => {
                write!(f, "schema mismatch for relation '{relation}': {detail}")
            }
            StoreError::PageOutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages} pages)")
            }
            StoreError::SlotOutOfRange { slot, slots } => {
                write!(f, "slot {slot} out of range (page has {slots} slots)")
            }
            StoreError::RecordTooLarge {
                record_size,
                capacity,
            } => write!(
                f,
                "record of {record_size} bytes cannot fit a page payload of {capacity} bytes"
            ),
            StoreError::DanglingForeignKey { relation, key } => {
                write!(
                    f,
                    "foreign key {key} in relation '{relation}' has no referenced tuple"
                )
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StoreError::Csv(msg) => write!(f, "csv error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::UnknownRelation("orders".into());
        assert!(e.to_string().contains("orders"));
        let e = StoreError::PageOutOfRange { page: 9, pages: 3 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('3'));
        let e = StoreError::DanglingForeignKey {
            relation: "S".into(),
            key: 42,
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
