//! Join access paths for the streaming (`S-*`) and factorized (`F-*`) algorithms.
//!
//! Two scan shapes are provided:
//!
//! * [`GroupScan`] — for **binary** joins.  The dimension table `R` is read in
//!   blocks; for every block, the fact table `S` is probed for matching tuples
//!   (block-nested-loop by default, optionally through a prebuilt FK hash index).
//!   Each yielded [`JoinGroup`] pairs one `R` tuple with *all* its matching `S`
//!   tuples, which is exactly the unit of reuse the factorized algorithms exploit:
//!   anything that depends only on `x_R` is computed once per group.
//! * [`StarScan`] — for **multi-way** joins.  The dimension tables are cached in
//!   memory ([`DimCache`]) and the fact table is scanned in blocks; per-dimension
//!   reuse is keyed on the foreign-key values of each fact tuple.
//!
//! The streaming variants use the same scans but immediately denormalize each
//! group into joined tuples ([`JoinGroup::denormalize`]), paying the redundant
//! computation the factorized variants avoid.

use crate::batch::BatchScan;
use crate::catalog::RelationHandle;
use crate::error::StoreResult;
use crate::index::HashIndex;
use crate::join::{DimCache, JoinSpec};
use crate::tuple::Tuple;
use crate::Database;
use std::collections::HashMap;

/// One dimension tuple together with every fact tuple referencing it.
#[derive(Debug, Clone)]
pub struct JoinGroup {
    /// The dimension (`R`) tuple.
    pub r_tuple: Tuple,
    /// All fact (`S`) tuples whose foreign key equals `r_tuple.key`.
    pub s_tuples: Vec<Tuple>,
}

impl JoinGroup {
    /// Number of joined tuples this group expands to.
    pub fn len(&self) -> usize {
        self.s_tuples.len()
    }

    /// Whether the group has no matching fact tuples.
    pub fn is_empty(&self) -> bool {
        self.s_tuples.is_empty()
    }

    /// Expands the group into denormalized tuples `T(SID, [Y], [x_S x_R])`,
    /// duplicating the dimension features once per fact tuple (what the `S-*`
    /// algorithms feed to the unchanged learner).
    pub fn denormalize(&self) -> Vec<Tuple> {
        self.s_tuples
            .iter()
            .map(|s| Tuple::joined(s, &[&self.r_tuple]))
            .collect()
    }
}

/// How `S` is probed for the tuples matching a block of `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStrategy {
    /// Re-scan the fact table once per `R` block (the paper's default cost model:
    /// `|R| + |R|/BlockSize · |S|` page reads per pass).
    BlockNestedLoop,
    /// Probe a prebuilt foreign-key hash index and fetch only matching pages.
    IndexProbe,
}

/// Block-wise scan of a binary join grouped by dimension tuple.
pub struct GroupScan {
    r: RelationHandle,
    s: RelationHandle,
    fk_column: usize,
    block_pages: usize,
    strategy: ProbeStrategy,
    index: Option<HashIndex>,
    r_scan: BatchScan,
}

impl GroupScan {
    /// Creates a group scan over `R ⋈ S` using block-nested-loop probing.
    pub fn new(r: RelationHandle, s: RelationHandle, fk_column: usize, block_pages: usize) -> Self {
        Self {
            r_scan: BatchScan::new(r.clone(), block_pages),
            r,
            s,
            fk_column,
            block_pages,
            strategy: ProbeStrategy::BlockNestedLoop,
            index: None,
        }
    }

    /// Creates a group scan from a [`JoinSpec`] (must be a binary join).
    pub fn from_spec(db: &Database, spec: &JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        assert_eq!(
            spec.num_dimensions(),
            1,
            "GroupScan::from_spec requires a binary join; use StarScan for multi-way joins"
        );
        Ok(Self::new(
            db.relation(&spec.dimensions[0])?,
            db.relation(&spec.fact)?,
            0,
            block_pages,
        ))
    }

    /// Switches to index-probe mode using a prebuilt FK index over `S`.
    pub fn with_index(mut self, index: HashIndex) -> Self {
        self.strategy = ProbeStrategy::IndexProbe;
        self.index = Some(index);
        self
    }

    /// The probe strategy in use.
    pub fn strategy(&self) -> ProbeStrategy {
        self.strategy
    }

    /// Restarts the scan from the first `R` block (one training pass = one scan).
    pub fn reset(&mut self) {
        self.r_scan = BatchScan::new(self.r.clone(), self.block_pages);
    }

    fn probe_block(&mut self, r_block: Vec<Tuple>) -> StoreResult<Vec<JoinGroup>> {
        let mut groups: Vec<JoinGroup> = r_block
            .into_iter()
            .map(|r_tuple| JoinGroup {
                r_tuple,
                s_tuples: Vec::new(),
            })
            .collect();
        match self.strategy {
            ProbeStrategy::BlockNestedLoop => {
                let pos: HashMap<u64, usize> = groups
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (g.r_tuple.key, i))
                    .collect();
                for s_batch in BatchScan::new(self.s.clone(), self.block_pages) {
                    for s_tuple in s_batch? {
                        if let Some(&i) = pos.get(&s_tuple.fks[self.fk_column]) {
                            groups[i].s_tuples.push(s_tuple);
                        }
                    }
                }
            }
            ProbeStrategy::IndexProbe => {
                let index = self.index.as_ref().expect("index-probe mode without index");
                for g in &mut groups {
                    g.s_tuples = index.fetch(&self.s, g.r_tuple.key)?;
                }
            }
        }
        Ok(groups)
    }
}

impl Iterator for GroupScan {
    type Item = StoreResult<Vec<JoinGroup>>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.r_scan.next()? {
            Ok(r_block) => Some(self.probe_block(r_block)),
            Err(e) => Some(Err(e)),
        }
    }
}

/// Block-wise scan of a multi-way star join: fact tuples plus a dimension cache.
pub struct StarScan {
    fact: RelationHandle,
    cache: DimCache,
    block_pages: usize,
}

impl StarScan {
    /// Loads the dimension tables of `spec` into memory and prepares a fact scan.
    pub fn new(db: &Database, spec: &JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        let dims = spec.dimension_relations(db)?;
        let cache = DimCache::load(&dims)?;
        Ok(Self {
            fact: spec.fact_relation(db)?,
            cache,
            block_pages,
        })
    }

    /// The cached dimension tables.
    pub fn cache(&self) -> &DimCache {
        &self.cache
    }

    /// Iterates over fact-table blocks.  Each block is a `Vec<Tuple>` whose foreign
    /// keys can be resolved against [`Self::cache`].
    pub fn blocks(&self) -> BatchScan {
        BatchScan::new(self.fact.clone(), self.block_pages)
    }

    /// Denormalizes one fact tuple using the cache (streaming variants).
    pub fn denormalize(&self, fact: &Tuple) -> StoreResult<Tuple> {
        let dims = self.cache.resolve(fact)?;
        Ok(Tuple::joined(fact, &dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKey;
    use crate::schema::Schema;

    /// 3 dimension tuples, 30 fact tuples, fk = key % 3.
    fn setup() -> (Database, JoinSpec) {
        let db = Database::in_memory();
        let r = db.create_relation(Schema::dimension("R", 2)).unwrap();
        let s = db.create_relation(Schema::fact("S", 1, 1)).unwrap();
        for k in 0..3u64 {
            r.lock()
                .append(&Tuple::dimension(k, vec![k as f64, -(k as f64)]))
                .unwrap();
        }
        for i in 0..30u64 {
            s.lock()
                .append(&Tuple::fact(i, vec![i % 3], vec![i as f64]))
                .unwrap();
        }
        r.lock().flush().unwrap();
        s.lock().flush().unwrap();
        (db, JoinSpec::binary("S", "R"))
    }

    #[test]
    fn group_scan_bnl_covers_every_fact_tuple_once() {
        let (db, spec) = setup();
        let scan = GroupScan::from_spec(&db, &spec, 4).unwrap();
        let mut total = 0;
        let mut seen_r = std::collections::HashSet::new();
        for block in scan {
            for g in block.unwrap() {
                assert!(seen_r.insert(g.r_tuple.key));
                assert_eq!(g.len(), 10);
                assert!(!g.is_empty());
                assert!(g.s_tuples.iter().all(|s| s.fks[0] == g.r_tuple.key));
                total += g.len();
            }
        }
        assert_eq!(total, 30);
        assert_eq!(seen_r.len(), 3);
    }

    #[test]
    fn group_scan_index_probe_equivalent_to_bnl() {
        let (db, spec) = setup();
        let collect = |scan: GroupScan| {
            let mut pairs: Vec<(u64, Vec<u64>)> = Vec::new();
            for block in scan {
                for g in block.unwrap() {
                    let mut keys: Vec<u64> = g.s_tuples.iter().map(|t| t.key).collect();
                    keys.sort_unstable();
                    pairs.push((g.r_tuple.key, keys));
                }
            }
            pairs.sort();
            pairs
        };
        let bnl = collect(GroupScan::from_spec(&db, &spec, 2).unwrap());
        let s = db.relation("S").unwrap();
        let idx = HashIndex::build(&s, IndexKey::Foreign(0)).unwrap();
        let ip = collect(GroupScan::from_spec(&db, &spec, 2).unwrap().with_index(idx));
        assert_eq!(bnl, ip);
    }

    #[test]
    fn denormalize_duplicates_dimension_features() {
        let (db, spec) = setup();
        let scan = GroupScan::from_spec(&db, &spec, 8).unwrap();
        for block in scan {
            for g in block.unwrap() {
                for t in g.denormalize() {
                    assert_eq!(t.features.len(), 3);
                    assert_eq!(t.features[1], g.r_tuple.features[0]);
                    assert_eq!(t.features[2], g.r_tuple.features[1]);
                }
            }
        }
    }

    #[test]
    fn group_scan_reset_allows_multiple_passes() {
        let (db, spec) = setup();
        let mut scan = GroupScan::from_spec(&db, &spec, 4).unwrap();
        let first: usize = scan
            .by_ref()
            .map(|b| b.unwrap().iter().map(|g| g.len()).sum::<usize>())
            .sum();
        assert_eq!(first, 30);
        // exhausted now
        assert!(scan.next().is_none());
        scan.reset();
        let second: usize = scan
            .map(|b| b.unwrap().iter().map(|g| g.len()).sum::<usize>())
            .sum();
        assert_eq!(second, 30);
    }

    #[test]
    fn star_scan_resolves_multiway_fks() {
        let db = Database::in_memory();
        let r1 = db.create_relation(Schema::dimension("d1", 1)).unwrap();
        let r2 = db.create_relation(Schema::dimension("d2", 2)).unwrap();
        let s = db
            .create_relation(Schema::fact_with_target("f", 1, 2))
            .unwrap();
        for k in 0..4u64 {
            r1.lock()
                .append(&Tuple::dimension(k, vec![k as f64]))
                .unwrap();
        }
        for k in 0..2u64 {
            r2.lock()
                .append(&Tuple::dimension(k, vec![10.0 * k as f64, 1.0]))
                .unwrap();
        }
        for i in 0..20u64 {
            s.lock()
                .append(&Tuple::fact_with_target(
                    i,
                    vec![i % 4, i % 2],
                    0.5,
                    vec![i as f64],
                ))
                .unwrap();
        }
        r1.lock().flush().unwrap();
        r2.lock().flush().unwrap();
        s.lock().flush().unwrap();

        let spec = JoinSpec::multiway("f", vec!["d1".into(), "d2".into()]);
        let scan = StarScan::new(&db, &spec, 4).unwrap();
        assert_eq!(scan.cache().num_dims(), 2);
        let mut count = 0;
        for block in scan.blocks() {
            for fact in block.unwrap() {
                let dims = scan.cache().resolve(&fact).unwrap();
                assert_eq!(dims[0].key, fact.fks[0]);
                assert_eq!(dims[1].key, fact.fks[1]);
                let joined = scan.denormalize(&fact).unwrap();
                assert_eq!(joined.features.len(), 4);
                count += 1;
            }
        }
        assert_eq!(count, 20);
    }

    #[test]
    fn group_scan_io_cost_matches_bnl_formula() {
        let (db, spec) = setup();
        let r_pages = db.relation("R").unwrap().lock().num_pages();
        let s_pages = db.relation("S").unwrap().lock().num_pages();
        db.stats().reset();
        let scan = GroupScan::from_spec(&db, &spec, 1).unwrap();
        for block in scan {
            block.unwrap();
        }
        let reads = db.stats().snapshot().pages_read as usize;
        assert_eq!(reads, r_pages + r_pages * s_pages);
    }
}
