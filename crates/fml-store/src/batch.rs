//! Block-wise scans over a single relation.
//!
//! A "block" is a fixed number of pages read together, mirroring the
//! block-nested-loop reading pattern the paper's cost analysis assumes
//! (`BlockSize` pages of the outer relation per probe pass over the inner one).

use crate::catalog::RelationHandle;
use crate::error::StoreResult;
use crate::tuple::Tuple;

/// Iterator over a relation's tuples in blocks of `block_pages` pages.
pub struct BatchScan {
    relation: RelationHandle,
    block_pages: usize,
    next_page: usize,
    total_pages: usize,
}

impl BatchScan {
    /// Creates a scan over `relation` reading `block_pages` pages per step.
    pub fn new(relation: RelationHandle, block_pages: usize) -> Self {
        let total_pages = relation.lock().num_pages();
        Self {
            relation,
            block_pages: block_pages.max(1),
            next_page: 0,
            total_pages,
        }
    }

    /// Number of blocks this scan will yield.
    pub fn num_blocks(&self) -> usize {
        self.total_pages.div_ceil(self.block_pages)
    }

    /// Pages per block.
    pub fn block_pages(&self) -> usize {
        self.block_pages
    }
}

impl Iterator for BatchScan {
    type Item = StoreResult<Vec<Tuple>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_page >= self.total_pages {
            return None;
        }
        let end = (self.next_page + self.block_pages).min(self.total_pages);
        let mut out = Vec::new();
        let mut rel = self.relation.lock();
        for p in self.next_page..end {
            match rel.read_page_tuples(p) {
                Ok(tuples) => out.extend(tuples),
                Err(e) => {
                    self.next_page = self.total_pages; // poison further iteration
                    return Some(Err(e));
                }
            }
        }
        self.next_page = end;
        Some(Ok(out))
    }
}

/// Convenience: scans the whole relation, returning all tuples batch by batch
/// already collected (used by tests and small dimension tables).
pub fn scan_all(relation: &RelationHandle, block_pages: usize) -> StoreResult<Vec<Tuple>> {
    let mut out = Vec::new();
    for batch in BatchScan::new(relation.clone(), block_pages) {
        out.extend(batch?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::Schema;

    fn build(n: u64) -> (Database, RelationHandle) {
        let db = Database::in_memory();
        let r = db.create_relation(Schema::dimension("r", 8)).unwrap();
        {
            let mut rel = r.lock();
            for i in 0..n {
                rel.append(&Tuple::dimension(i, vec![i as f64; 8])).unwrap();
            }
            rel.flush().unwrap();
        }
        (db, r)
    }

    #[test]
    fn scan_covers_every_tuple_once() {
        let (_db, r) = build(3000);
        let mut seen = 0u64;
        let mut keys = std::collections::HashSet::new();
        for batch in BatchScan::new(r.clone(), 2) {
            let batch = batch.unwrap();
            seen += batch.len() as u64;
            for t in &batch {
                assert!(keys.insert(t.key), "duplicate key {}", t.key);
            }
        }
        assert_eq!(seen, 3000);
        assert_eq!(keys.len(), 3000);
    }

    #[test]
    fn block_size_controls_batches() {
        let (_db, r) = build(3000);
        let pages = r.lock().num_pages();
        let scan = BatchScan::new(r.clone(), 1);
        assert_eq!(scan.num_blocks(), pages);
        assert_eq!(scan.count(), pages);

        let scan = BatchScan::new(r.clone(), usize::MAX);
        assert_eq!(scan.num_blocks(), 1);
        let batches: Vec<_> = BatchScan::new(r, 1_000_000).collect();
        assert_eq!(batches.len(), 1);
    }

    #[test]
    fn zero_block_pages_is_clamped() {
        let (_db, r) = build(100);
        let scan = BatchScan::new(r, 0);
        assert_eq!(scan.block_pages(), 1);
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let db = Database::in_memory();
        let r = db.create_relation(Schema::dimension("empty", 1)).unwrap();
        assert_eq!(BatchScan::new(r, 4).count(), 0);
    }

    #[test]
    fn scan_all_collects_everything() {
        let (_db, r) = build(257);
        assert_eq!(scan_all(&r, 3).unwrap().len(), 257);
    }

    #[test]
    fn scan_charges_page_reads() {
        let (db, r) = build(3000);
        db.stats().reset();
        let pages = r.lock().num_pages();
        let _ = scan_all(&r, 4).unwrap();
        assert_eq!(db.stats().snapshot().pages_read as usize, pages);
    }
}
