//! In-memory hash indexes on primary or foreign keys.
//!
//! Dimension tables in a star schema are small (thousands of tuples in the paper's
//! workloads), so a primary-key index over a dimension table fits comfortably in
//! memory.  A foreign-key index over the fact table maps each dimension key to the
//! fact tuples referencing it, which is what the streaming/factorized scans use to
//! "probe `S` for matching tuples" when iterating over `R` in batches.

use crate::catalog::RelationHandle;
use crate::error::{StoreError, StoreResult};
use crate::tuple::{Tuple, TupleId};
use std::collections::HashMap;

/// Which key the index is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKey {
    /// The tuple's primary key.
    Primary,
    /// The `i`-th foreign key column.
    Foreign(usize),
}

/// A hash index from key value to the tuple ids carrying that value.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key: IndexKey,
    map: HashMap<u64, Vec<TupleId>>,
    entries: u64,
}

impl HashIndex {
    /// Builds an index by scanning the relation once (the scan is charged to the
    /// relation's I/O statistics, exactly like the build phase of a hash join).
    pub fn build(relation: &RelationHandle, key: IndexKey) -> StoreResult<Self> {
        let mut map: HashMap<u64, Vec<TupleId>> = HashMap::new();
        let mut entries = 0u64;
        let mut rel = relation.lock();
        if let IndexKey::Foreign(col) = key {
            if col >= rel.schema().num_foreign_keys {
                return Err(StoreError::SchemaMismatch {
                    relation: rel.name().to_string(),
                    detail: format!(
                        "foreign key column {col} out of range ({} present)",
                        rel.schema().num_foreign_keys
                    ),
                });
            }
        }
        for p in 0..rel.num_pages() {
            for (id, tuple) in rel.read_page_with_ids(p)? {
                let k = match key {
                    IndexKey::Primary => tuple.key,
                    IndexKey::Foreign(col) => tuple.fks[col],
                };
                map.entry(k).or_default().push(id);
                entries += 1;
            }
        }
        Ok(Self { key, map, entries })
    }

    /// The key the index was built on.
    pub fn key(&self) -> IndexKey {
        self.key
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct key values.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Tuple ids whose key equals `value` (empty slice when absent).
    pub fn probe(&self, value: u64) -> &[TupleId] {
        self.map.get(&value).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Fetches all tuples matching `value` from the relation, charging index-probe
    /// and page-read costs.  Tuple ids are grouped by page so each page is read at
    /// most once per call.
    pub fn fetch(&self, relation: &RelationHandle, value: u64) -> StoreResult<Vec<Tuple>> {
        let ids = self.probe(value);
        let mut rel = relation.lock();
        rel.stats().add_index_probes(1);
        if ids.is_empty() {
            return Ok(Vec::new());
        }
        let mut by_page: HashMap<u32, Vec<u16>> = HashMap::new();
        for id in ids {
            by_page.entry(id.page).or_default().push(id.slot);
        }
        let mut out = Vec::with_capacity(ids.len());
        let mut pages: Vec<u32> = by_page.keys().copied().collect();
        pages.sort_unstable();
        for page in pages {
            let tuples = rel.read_page_with_ids(page as usize)?;
            for slot in &by_page[&page] {
                out.push(tuples[*slot as usize].1.clone());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::Schema;

    fn setup() -> (Database, RelationHandle) {
        let db = Database::in_memory();
        let s = db.create_relation(Schema::fact("s", 2, 1)).unwrap();
        {
            let mut rel = s.lock();
            for i in 0..100u64 {
                rel.append(&Tuple::fact(i, vec![i % 7], vec![i as f64, 1.0]))
                    .unwrap();
            }
            rel.flush().unwrap();
        }
        (db, s)
    }

    #[test]
    fn primary_index_unique_keys() {
        let (_db, s) = setup();
        let idx = HashIndex::build(&s, IndexKey::Primary).unwrap();
        assert_eq!(idx.len(), 100);
        assert_eq!(idx.distinct_keys(), 100);
        assert_eq!(idx.probe(42).len(), 1);
        assert!(idx.probe(1000).is_empty());
        assert!(!idx.is_empty());
        assert_eq!(idx.key(), IndexKey::Primary);
    }

    #[test]
    fn foreign_index_groups_by_fk() {
        let (_db, s) = setup();
        let idx = HashIndex::build(&s, IndexKey::Foreign(0)).unwrap();
        assert_eq!(idx.distinct_keys(), 7);
        // keys 0..=1 appear 15 times (0,7,...,98), others 14
        assert_eq!(idx.probe(0).len(), 15);
        assert_eq!(idx.probe(6).len(), 14);
    }

    #[test]
    fn fetch_returns_matching_tuples_and_counts_probes() {
        let (db, s) = setup();
        let idx = HashIndex::build(&s, IndexKey::Foreign(0)).unwrap();
        db.stats().reset();
        let tuples = idx.fetch(&s, 3).unwrap();
        assert!(!tuples.is_empty());
        assert!(tuples.iter().all(|t| t.fks[0] == 3));
        let snap = db.stats().snapshot();
        assert_eq!(snap.index_probes, 1);
        assert!(snap.pages_read >= 1);

        // absent key: probe counted, nothing read
        db.stats().reset();
        assert!(idx.fetch(&s, 999).unwrap().is_empty());
        assert_eq!(db.stats().snapshot().pages_read, 0);
    }

    #[test]
    fn foreign_index_on_missing_column_is_error() {
        let (_db, s) = setup();
        assert!(HashIndex::build(&s, IndexKey::Foreign(3)).is_err());
    }
}
