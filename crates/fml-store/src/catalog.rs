//! The database catalog: named relations sharing one I/O-statistics domain.

use crate::error::{StoreError, StoreResult};
use crate::heap::{FilePageStore, HeapFile, MemPageStore};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::IoStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Shared handle to a relation.  Scans and trainers lock it per page access.
pub type RelationHandle = Arc<Mutex<Relation>>;

enum Backend {
    Memory,
    Disk(PathBuf),
}

/// A collection of relations with a shared I/O counter domain — the stand-in for
/// the RDBMS instance used by the paper's evaluation.
pub struct Database {
    backend: Backend,
    stats: IoStats,
    relations: Mutex<BTreeMap<String, RelationHandle>>,
}

impl Database {
    /// Creates an in-memory database (pages live on the heap, I/O still counted).
    pub fn in_memory() -> Self {
        Self {
            backend: Backend::Memory,
            stats: IoStats::new(),
            relations: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates a disk-backed database rooted at `dir` (created if missing).
    pub fn on_disk(dir: impl Into<PathBuf>) -> StoreResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            backend: Backend::Disk(dir),
            stats: IoStats::new(),
            relations: Mutex::new(BTreeMap::new()),
        })
    }

    /// The database-wide I/O statistics handle.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Creates a new, empty relation with the given schema.
    ///
    /// # Errors
    /// Returns [`StoreError::RelationExists`] when the name is already taken.
    pub fn create_relation(&self, schema: Schema) -> StoreResult<RelationHandle> {
        let mut rels = self.relations.lock();
        if rels.contains_key(&schema.name) {
            return Err(StoreError::RelationExists(schema.name));
        }
        let heap = match &self.backend {
            Backend::Memory => HeapFile::new(
                Box::new(MemPageStore::new()),
                schema.record_size(),
                self.stats.clone(),
            )?,
            Backend::Disk(dir) => {
                let path = dir.join(format!("{}.pages", sanitize(&schema.name)));
                let store = FilePageStore::create(&path)?;
                HeapFile::new(Box::new(store), schema.record_size(), self.stats.clone())?
            }
        };
        let handle: RelationHandle = Arc::new(Mutex::new(Relation::new(schema.clone(), heap)));
        rels.insert(schema.name, handle.clone());
        Ok(handle)
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> StoreResult<RelationHandle> {
        self.relations
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::UnknownRelation(name.to_string()))
    }

    /// Removes a relation from the catalog (its pages are dropped / its file left
    /// on disk).  Used by experiments that re-materialize a join under the same
    /// name between runs.
    pub fn drop_relation(&self, name: &str) -> StoreResult<()> {
        let removed = self.relations.lock().remove(name);
        if removed.is_none() {
            return Err(StoreError::UnknownRelation(name.to_string()));
        }
        if let Backend::Disk(dir) = &self.backend {
            let path = dir.join(format!("{}.pages", sanitize(name)));
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Names of all relations in the catalog, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.lock().keys().cloned().collect()
    }

    /// Whether a relation with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.lock().contains_key(name)
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn create_lookup_drop() {
        let db = Database::in_memory();
        let s = db.create_relation(Schema::fact("s", 2, 1)).unwrap();
        assert!(db.contains("s"));
        assert_eq!(db.relation_names(), vec!["s".to_string()]);
        {
            let mut s = s.lock();
            s.append(&Tuple::fact(1, vec![1], vec![0.0, 1.0])).unwrap();
            s.flush().unwrap();
        }
        let again = db.relation("s").unwrap();
        assert_eq!(again.lock().num_tuples(), 1);
        db.drop_relation("s").unwrap();
        assert!(!db.contains("s"));
        assert!(db.relation("s").is_err());
        assert!(db.drop_relation("s").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = Database::in_memory();
        db.create_relation(Schema::dimension("r", 1)).unwrap();
        assert!(matches!(
            db.create_relation(Schema::dimension("r", 2)),
            Err(StoreError::RelationExists(_))
        ));
    }

    #[test]
    fn stats_are_shared_across_relations() {
        let db = Database::in_memory();
        let a = db.create_relation(Schema::dimension("a", 1)).unwrap();
        let b = db.create_relation(Schema::dimension("b", 1)).unwrap();
        a.lock().append(&Tuple::dimension(1, vec![1.0])).unwrap();
        b.lock().append(&Tuple::dimension(2, vec![2.0])).unwrap();
        a.lock().flush().unwrap();
        b.lock().flush().unwrap();
        let snap = db.stats().snapshot();
        assert_eq!(snap.tuples_written, 2);
        assert_eq!(snap.pages_written, 2);
    }

    #[test]
    fn disk_backend_creates_files() {
        let dir = std::env::temp_dir().join(format!("fml_db_test_{}", std::process::id()));
        let db = Database::on_disk(&dir).unwrap();
        let r = db.create_relation(Schema::dimension("items", 2)).unwrap();
        {
            let mut r = r.lock();
            for i in 0..10 {
                r.append(&Tuple::dimension(i, vec![i as f64, 0.0])).unwrap();
            }
            r.flush().unwrap();
        }
        assert!(dir.join("items.pages").exists());
        assert_eq!(r.lock().read_all().unwrap().len(), 10);
        db.drop_relation("items").unwrap();
        assert!(!dir.join("items.pages").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("a/b c"), "a_b_c");
        assert_eq!(sanitize("T_join"), "T_join");
    }
}
