//! Relation schemas.
//!
//! Relations in this engine follow the shape used throughout the paper
//! (Section IV, Table I):
//!
//! * every tuple has a `u64` primary key (`SID` / `RID`);
//! * a fact table `S` carries zero or more `u64` foreign keys (`FK_1 … FK_q`) and,
//!   for supervised (NN) training, one `f64` target `Y`;
//! * all remaining attributes are `f64` features (`x_S` / `x_R`).
//!
//! Records are fixed width, which keeps page arithmetic — and therefore the I/O
//! cost accounting — simple and predictable.

use serde::{Deserialize, Serialize};

/// Description of a relation's columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Relation name (unique within a [`crate::Database`]).
    pub name: String,
    /// Number of `f64` feature columns.
    pub num_features: usize,
    /// Number of `u64` foreign-key columns.
    pub num_foreign_keys: usize,
    /// Whether tuples carry a supervised-learning target `Y`.
    pub has_target: bool,
}

impl Schema {
    /// Schema of a dimension table `R(RID, x_R)`: key + features only.
    pub fn dimension(name: impl Into<String>, num_features: usize) -> Self {
        Self {
            name: name.into(),
            num_features,
            num_foreign_keys: 0,
            has_target: false,
        }
    }

    /// Schema of a fact table `S(SID, x_S, FK_1 … FK_q)` without a target.
    pub fn fact(name: impl Into<String>, num_features: usize, num_foreign_keys: usize) -> Self {
        Self {
            name: name.into(),
            num_features,
            num_foreign_keys,
            has_target: false,
        }
    }

    /// Schema of a supervised fact table `S(SID, Y, x_S, FK_1 … FK_q)`.
    pub fn fact_with_target(
        name: impl Into<String>,
        num_features: usize,
        num_foreign_keys: usize,
    ) -> Self {
        Self {
            name: name.into(),
            num_features,
            num_foreign_keys,
            has_target: true,
        }
    }

    /// Returns a copy of this schema under a different relation name.
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..self.clone()
        }
    }

    /// Size in bytes of one encoded record.
    ///
    /// Layout: `key (8) | fks (8·nfk) | target (8, if present) | features (8·nfeat)`.
    pub fn record_size(&self) -> usize {
        8 + 8 * self.num_foreign_keys + if self.has_target { 8 } else { 0 } + 8 * self.num_features
    }

    /// Number of 8-byte fields per record, the unit used by the paper when
    /// counting how many values the backward-propagation phase must read
    /// (`n_S·d_S + n_R·d_R` versus `N·d`).
    pub fn fields_per_record(&self) -> usize {
        self.record_size() / 8
    }

    /// Schema of the projected join result `T(SID, [Y], [x_S x_R1 … x_Rq])`
    /// obtained by joining this fact schema with the given dimension schemas.
    ///
    /// The result keeps the fact table's key and target but drops the foreign keys
    /// (they are redundant after the join), mirroring
    /// `T(SID, [X_S X_R]) ← π(R ⋈ S)` from the paper.
    pub fn join_result(&self, name: impl Into<String>, dims: &[&Schema]) -> Self {
        let extra: usize = dims.iter().map(|d| d.num_features).sum();
        Self {
            name: name.into(),
            num_features: self.num_features + extra,
            num_foreign_keys: 0,
            has_target: self.has_target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_columns() {
        let r = Schema::dimension("items", 5);
        assert_eq!(r.num_features, 5);
        assert_eq!(r.num_foreign_keys, 0);
        assert!(!r.has_target);

        let s = Schema::fact("orders", 3, 2);
        assert_eq!(s.num_foreign_keys, 2);
        assert!(!s.has_target);

        let sy = Schema::fact_with_target("orders", 3, 1);
        assert!(sy.has_target);
    }

    #[test]
    fn record_size_layout() {
        // key + 2 fk + target + 4 features = (1 + 2 + 1 + 4) * 8 = 64
        let s = Schema::fact_with_target("s", 4, 2);
        assert_eq!(s.record_size(), 64);
        assert_eq!(s.fields_per_record(), 8);

        let r = Schema::dimension("r", 3);
        assert_eq!(r.record_size(), 32);
    }

    #[test]
    fn join_result_concatenates_features_and_drops_fks() {
        let s = Schema::fact_with_target("s", 5, 2);
        let r1 = Schema::dimension("r1", 10);
        let r2 = Schema::dimension("r2", 20);
        let t = s.join_result("t", &[&r1, &r2]);
        assert_eq!(t.num_features, 35);
        assert_eq!(t.num_foreign_keys, 0);
        assert!(t.has_target);
        assert_eq!(t.name, "t");
    }

    #[test]
    fn renamed_preserves_columns() {
        let s = Schema::fact("s", 5, 1);
        let s2 = s.renamed("s_copy");
        assert_eq!(s2.name, "s_copy");
        assert_eq!(s2.num_features, 5);
        assert_eq!(s2.num_foreign_keys, 1);
    }
}
