//! Relations: a schema plus a heap file of encoded tuples.

use crate::error::StoreResult;
use crate::heap::HeapFile;
use crate::schema::Schema;
use crate::stats::IoStats;
use crate::tuple::{Tuple, TupleId};

/// A stored relation.
pub struct Relation {
    schema: Schema,
    heap: HeapFile,
    encode_buf: Vec<u8>,
}

impl Relation {
    /// Creates a relation over an existing heap file.
    ///
    /// The heap's record size must match the schema's record size.
    pub fn new(schema: Schema, heap: HeapFile) -> Self {
        assert_eq!(
            heap.record_size(),
            schema.record_size(),
            "heap record size does not match schema '{}'",
            schema.name
        );
        Self {
            schema,
            heap,
            encode_buf: Vec::new(),
        }
    }

    /// Creates an in-memory relation.
    pub fn in_memory(schema: Schema, stats: IoStats) -> StoreResult<Self> {
        let heap = HeapFile::in_memory(schema.record_size(), stats)?;
        Ok(Self::new(schema, heap))
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Shared I/O statistics handle.
    pub fn stats(&self) -> &IoStats {
        self.heap.stats()
    }

    /// Number of tuples stored.
    pub fn num_tuples(&self) -> u64 {
        self.heap.num_records()
    }

    /// Number of pages a full scan must read (the `|S|`, `|R|`, `|T|` of the
    /// paper's I/O cost formulas).
    pub fn num_pages(&self) -> usize {
        self.heap.scan_pages()
    }

    /// Number of tuples that fit in one page.
    pub fn tuples_per_page(&self) -> usize {
        self.heap.records_per_page()
    }

    /// Appends a tuple after validating it against the schema.
    pub fn append(&mut self, tuple: &Tuple) -> StoreResult<()> {
        tuple.validate(&self.schema)?;
        self.encode_buf.clear();
        tuple.encode(&self.schema, &mut self.encode_buf);
        let buf = std::mem::take(&mut self.encode_buf);
        let res = self.heap.append(&buf);
        self.encode_buf = buf;
        res
    }

    /// Appends many tuples and flushes the tail page.
    pub fn append_all<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a Tuple>,
    ) -> StoreResult<()> {
        for t in tuples {
            self.append(t)?;
        }
        self.flush()
    }

    /// Flushes buffered writes to the backend.
    pub fn flush(&mut self) -> StoreResult<()> {
        self.heap.flush()
    }

    /// Reads all tuples of page `page_idx`, charging one page read plus the
    /// decoded tuple count to the stats.
    pub fn read_page_tuples(&mut self, page_idx: usize) -> StoreResult<Vec<Tuple>> {
        let page = self.heap.read_page(page_idx)?;
        let mut out = Vec::with_capacity(page.len());
        for record in page.iter() {
            out.push(Tuple::decode(&self.schema, record)?);
        }
        self.stats().add_tuples_read(out.len() as u64);
        self.stats()
            .add_fields_read((out.len() * self.schema.fields_per_record()) as u64);
        Ok(out)
    }

    /// Reads the tuples of page `page_idx` together with their [`TupleId`]s.
    pub fn read_page_with_ids(&mut self, page_idx: usize) -> StoreResult<Vec<(TupleId, Tuple)>> {
        let page = self.heap.read_page(page_idx)?;
        let mut out = Vec::with_capacity(page.len());
        for (slot, record) in page.iter().enumerate() {
            out.push((
                TupleId::new(page_idx as u32, slot as u16),
                Tuple::decode(&self.schema, record)?,
            ));
        }
        self.stats().add_tuples_read(out.len() as u64);
        self.stats()
            .add_fields_read((out.len() * self.schema.fields_per_record()) as u64);
        Ok(out)
    }

    /// Fetches a single tuple by id (reads its whole page, as a real system would).
    pub fn fetch(&mut self, id: TupleId) -> StoreResult<Tuple> {
        let page = self.heap.read_page(id.page as usize)?;
        let record = page.record(id.slot as usize)?;
        let t = Tuple::decode(&self.schema, record)?;
        self.stats().add_tuples_read(1);
        self.stats()
            .add_fields_read(self.schema.fields_per_record() as u64);
        Ok(t)
    }

    /// Reads the entire relation into memory (test / small-dimension-table helper).
    pub fn read_all(&mut self) -> StoreResult<Vec<Tuple>> {
        let mut out = Vec::with_capacity(self.num_tuples() as usize);
        for p in 0..self.num_pages() {
            out.extend(self.read_page_tuples(p)?);
        }
        Ok(out)
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Relation {{ name: {}, tuples: {}, pages: {} }}",
            self.name(),
            self.num_tuples(),
            self.num_pages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_relation(n: u64) -> Relation {
        let schema = Schema::fact_with_target("s", 3, 1);
        let mut rel = Relation::in_memory(schema, IoStats::new()).unwrap();
        for i in 0..n {
            rel.append(&Tuple::fact_with_target(
                i,
                vec![i % 10],
                i as f64,
                vec![i as f64, -(i as f64), 0.5],
            ))
            .unwrap();
        }
        rel.flush().unwrap();
        rel
    }

    #[test]
    fn append_scan_roundtrip() {
        let mut rel = sample_relation(500);
        assert_eq!(rel.num_tuples(), 500);
        let all = rel.read_all().unwrap();
        assert_eq!(all.len(), 500);
        assert_eq!(all[42].key, 42);
        assert_eq!(all[42].fks, vec![2]);
        assert_eq!(all[42].target, Some(42.0));
        assert_eq!(all[42].features[1], -42.0);
    }

    #[test]
    fn schema_violation_rejected() {
        let schema = Schema::dimension("r", 2);
        let mut rel = Relation::in_memory(schema, IoStats::new()).unwrap();
        assert!(rel.append(&Tuple::dimension(1, vec![1.0])).is_err());
        assert!(rel
            .append(&Tuple::fact(1, vec![3], vec![1.0, 2.0]))
            .is_err());
        assert!(rel.append(&Tuple::dimension(1, vec![1.0, 2.0])).is_ok());
    }

    #[test]
    fn page_reads_are_counted() {
        let mut rel = sample_relation(500);
        rel.stats().reset();
        let _ = rel.read_all().unwrap();
        let snap = rel.stats().snapshot();
        assert_eq!(snap.pages_read as usize, rel.num_pages());
        assert_eq!(snap.tuples_read, 500);
        // 1 key + 1 fk + 1 target + 3 features = 6 fields per tuple
        assert_eq!(snap.fields_read, 500 * 6);
    }

    #[test]
    fn fetch_by_tuple_id() {
        let mut rel = sample_relation(300);
        let with_ids = rel.read_page_with_ids(0).unwrap();
        let (id, t) = with_ids[7].clone();
        let fetched = rel.fetch(id).unwrap();
        assert_eq!(fetched, t);
    }

    #[test]
    fn multi_page_relations_report_page_counts() {
        let rel = sample_relation(5000);
        assert!(rel.num_pages() > 1);
        assert_eq!(
            rel.tuples_per_page(),
            (crate::PAGE_SIZE - crate::page::PAGE_HEADER) / rel.schema().record_size()
        );
    }
}
