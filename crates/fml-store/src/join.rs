//! PK/FK equi-joins: specification, dimension caching and materialization.
//!
//! The fact table `S` carries one foreign key per dimension table `R_i`
//! (`S.FK_i → R_i.RID`).  [`JoinSpec`] names the participating relations;
//! [`materialize_join`] produces the denormalized table `T` used by the `M-*`
//! algorithms; [`DimCache`] loads the (small) dimension tables into memory so the
//! streaming / factorized scans can resolve foreign keys without re-reading pages
//! for every fact tuple.

use crate::batch::BatchScan;
use crate::catalog::{Database, RelationHandle};
use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// Names the relations participating in a star join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Fact relation `S` (holds the foreign keys and, for NN training, the target).
    pub fact: String,
    /// Dimension relations `R_1 … R_q`; `S.FK_i` references `dimensions[i]`.
    pub dimensions: Vec<String>,
}

impl JoinSpec {
    /// Binary join `R ⋈ S`.
    pub fn binary(fact: impl Into<String>, dimension: impl Into<String>) -> Self {
        Self {
            fact: fact.into(),
            dimensions: vec![dimension.into()],
        }
    }

    /// Multi-way join `R_1 ⋈ … ⋈ R_q ⋈ S`.
    pub fn multiway(fact: impl Into<String>, dimensions: Vec<String>) -> Self {
        Self {
            fact: fact.into(),
            dimensions,
        }
    }

    /// Number of dimension tables (`q`).
    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }

    /// Resolves the fact relation handle.
    pub fn fact_relation(&self, db: &Database) -> StoreResult<RelationHandle> {
        db.relation(&self.fact)
    }

    /// Resolves all dimension relation handles, in join order.
    pub fn dimension_relations(&self, db: &Database) -> StoreResult<Vec<RelationHandle>> {
        self.dimensions.iter().map(|d| db.relation(d)).collect()
    }

    /// Validates that the relations exist and the fact table has one foreign key
    /// per dimension table.
    pub fn validate(&self, db: &Database) -> StoreResult<()> {
        let fact = self.fact_relation(db)?;
        let nfk = fact.lock().schema().num_foreign_keys;
        if nfk != self.dimensions.len() {
            return Err(StoreError::SchemaMismatch {
                relation: self.fact.clone(),
                detail: format!(
                    "fact table has {} foreign keys but the join names {} dimension tables",
                    nfk,
                    self.dimensions.len()
                ),
            });
        }
        for d in &self.dimensions {
            db.relation(d)?;
        }
        Ok(())
    }

    /// Schema of the materialized join result.
    pub fn result_schema(&self, db: &Database, name: impl Into<String>) -> StoreResult<Schema> {
        let fact = self.fact_relation(db)?;
        let dims = self.dimension_relations(db)?;
        let dim_schemas: Vec<Schema> = dims.iter().map(|d| d.lock().schema().clone()).collect();
        let dim_refs: Vec<&Schema> = dim_schemas.iter().collect();
        let fact_guard = fact.lock();
        Ok(fact_guard.schema().join_result(name, &dim_refs))
    }

    /// Total feature dimensionality `d = d_S + Σ d_{R_i}` of the joined tuples.
    pub fn total_features(&self, db: &Database) -> StoreResult<usize> {
        let fact = self.fact_relation(db)?;
        let dims = self.dimension_relations(db)?;
        let mut d = fact.lock().schema().num_features;
        for dim in dims {
            d += dim.lock().schema().num_features;
        }
        Ok(d)
    }

    /// Per-relation feature sizes `[d_S, d_{R_1}, …, d_{R_q}]` — the block
    /// partition the factorized algorithms operate on.
    pub fn feature_partition(&self, db: &Database) -> StoreResult<Vec<usize>> {
        let fact = self.fact_relation(db)?;
        let dims = self.dimension_relations(db)?;
        let mut sizes = vec![fact.lock().schema().num_features];
        for dim in dims {
            sizes.push(dim.lock().schema().num_features);
        }
        Ok(sizes)
    }
}

/// All dimension tables of a join loaded into memory, keyed by primary key.
///
/// Dimension tables are small by construction (`n_R ≪ n_S`); loading them once per
/// training pass is exactly what the paper's streaming and factorized variants do.
pub struct DimCache {
    maps: Vec<HashMap<u64, Tuple>>,
    names: Vec<String>,
}

impl DimCache {
    /// Loads every dimension relation, charging the page reads to the shared stats.
    pub fn load(dims: &[RelationHandle]) -> StoreResult<Self> {
        let mut maps = Vec::with_capacity(dims.len());
        let mut names = Vec::with_capacity(dims.len());
        for dim in dims {
            let mut rel = dim.lock();
            names.push(rel.name().to_string());
            let tuples = rel.read_all()?;
            let mut map = HashMap::with_capacity(tuples.len());
            for t in tuples {
                map.insert(t.key, t);
            }
            maps.push(map);
        }
        Ok(Self { maps, names })
    }

    /// Number of dimension tables cached.
    pub fn num_dims(&self) -> usize {
        self.maps.len()
    }

    /// Number of tuples cached for dimension `i`.
    pub fn dim_len(&self, i: usize) -> usize {
        self.maps[i].len()
    }

    /// Looks up dimension `i` by primary key.
    pub fn get(&self, i: usize, key: u64) -> Option<&Tuple> {
        self.maps[i].get(&key)
    }

    /// Iterates over all tuples of dimension `i` (arbitrary order).
    pub fn iter_dim(&self, i: usize) -> impl Iterator<Item = &Tuple> {
        self.maps[i].values()
    }

    /// Resolves the dimension tuples referenced by a fact tuple, in join order.
    ///
    /// # Errors
    /// Returns [`StoreError::DanglingForeignKey`] when a foreign key has no match.
    pub fn resolve<'a>(&'a self, fact: &Tuple) -> StoreResult<Vec<&'a Tuple>> {
        let mut out = Vec::with_capacity(fact.fks.len());
        for (i, fk) in fact.fks.iter().enumerate() {
            match self.maps.get(i).and_then(|m| m.get(fk)) {
                Some(t) => out.push(t),
                None => {
                    return Err(StoreError::DanglingForeignKey {
                        relation: self.names.get(i).cloned().unwrap_or_default(),
                        key: *fk,
                    })
                }
            }
        }
        Ok(out)
    }
}

/// Materializes the projected join `T(SID, [Y], [x_S x_R1 … x_Rq])` as a new
/// relation named `output`, returning its handle.
///
/// For a **binary** join the implementation follows the paper's block-nested-loop
/// plan with `R` as the outer relation: each block of `R` pages is loaded into a
/// hash table and all of `S` is scanned against it, giving the
/// `|R| + |R|/BlockSize·|S|` page-read cost of Section V-A (plus `|T|` page writes).
/// For **multi-way** joins the dimension tables are cached in memory and `S` is
/// scanned once.
pub fn materialize_join(
    db: &Database,
    spec: &JoinSpec,
    output: impl Into<String>,
    block_pages: usize,
) -> StoreResult<RelationHandle> {
    spec.validate(db)?;
    let output = output.into();
    let schema = spec.result_schema(db, output.clone())?;
    let out_rel = db.create_relation(schema)?;
    let fact = spec.fact_relation(db)?;
    let dims = spec.dimension_relations(db)?;

    if dims.len() == 1 {
        // Block-nested-loop join, dimension table as the outer relation.
        let dim = &dims[0];
        for r_block in BatchScan::new(dim.clone(), block_pages) {
            let r_block = r_block?;
            let block_map: HashMap<u64, &Tuple> = r_block.iter().map(|t| (t.key, t)).collect();
            for s_batch in BatchScan::new(fact.clone(), block_pages) {
                for s_tuple in s_batch? {
                    if let Some(r_tuple) = block_map.get(&s_tuple.fks[0]) {
                        let joined = Tuple::joined(&s_tuple, &[r_tuple]);
                        out_rel.lock().append(&joined)?;
                    }
                }
            }
        }
    } else {
        let cache = DimCache::load(&dims)?;
        for s_batch in BatchScan::new(fact.clone(), block_pages) {
            for s_tuple in s_batch? {
                let dim_tuples = cache.resolve(&s_tuple)?;
                let joined = Tuple::joined(&s_tuple, &dim_tuples);
                out_rel.lock().append(&joined)?;
            }
        }
    }
    out_rel.lock().flush()?;
    Ok(out_rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    /// Builds a tiny star schema: 4 dimension tuples, 12 fact tuples.
    fn star(db: &Database) -> JoinSpec {
        let r = db.create_relation(Schema::dimension("R", 2)).unwrap();
        let s = db
            .create_relation(Schema::fact_with_target("S", 1, 1))
            .unwrap();
        {
            let mut r = r.lock();
            for k in 0..4u64 {
                r.append(&Tuple::dimension(k, vec![k as f64 * 10.0, 1.0]))
                    .unwrap();
            }
            r.flush().unwrap();
        }
        {
            let mut s = s.lock();
            for i in 0..12u64 {
                s.append(&Tuple::fact_with_target(
                    i,
                    vec![i % 4],
                    i as f64,
                    vec![i as f64],
                ))
                .unwrap();
            }
            s.flush().unwrap();
        }
        JoinSpec::binary("S", "R")
    }

    #[test]
    fn spec_validation() {
        let db = Database::in_memory();
        let spec = star(&db);
        assert!(spec.validate(&db).is_ok());
        assert_eq!(spec.num_dimensions(), 1);
        assert_eq!(spec.total_features(&db).unwrap(), 3);
        assert_eq!(spec.feature_partition(&db).unwrap(), vec![1, 2]);

        let bad = JoinSpec::binary("S", "missing");
        assert!(bad.validate(&db).is_err());
        let wrong_arity = JoinSpec::multiway("S", vec!["R".into(), "R".into()]);
        assert!(wrong_arity.validate(&db).is_err());
    }

    #[test]
    fn materialize_binary_join_produces_every_fact_tuple_once() {
        let db = Database::in_memory();
        let spec = star(&db);
        let t = materialize_join(&db, &spec, "T", 4).unwrap();
        let mut t_rel = t.lock();
        assert_eq!(t_rel.num_tuples(), 12);
        let schema = t_rel.schema().clone();
        assert_eq!(schema.num_features, 3);
        assert_eq!(schema.num_foreign_keys, 0);
        assert!(schema.has_target);
        let tuples = t_rel.read_all().unwrap();
        // every joined tuple carries the dimension features of its fk
        for t in &tuples {
            let fk = (t.features[0] as u64) % 4;
            assert_eq!(t.features[1], fk as f64 * 10.0);
            assert_eq!(t.features[2], 1.0);
            assert_eq!(t.target, Some(t.features[0]));
        }
        // keys unique
        let keys: std::collections::HashSet<u64> = tuples.iter().map(|t| t.key).collect();
        assert_eq!(keys.len(), 12);
    }

    #[test]
    fn materialize_multiway_join() {
        let db = Database::in_memory();
        let r1 = db.create_relation(Schema::dimension("users", 2)).unwrap();
        let r2 = db.create_relation(Schema::dimension("movies", 3)).unwrap();
        let s = db
            .create_relation(Schema::fact_with_target("ratings", 1, 2))
            .unwrap();
        for k in 0..5u64 {
            r1.lock()
                .append(&Tuple::dimension(k, vec![k as f64, 0.0]))
                .unwrap();
        }
        for k in 0..3u64 {
            r2.lock()
                .append(&Tuple::dimension(k, vec![0.0, k as f64, 1.0]))
                .unwrap();
        }
        for i in 0..30u64 {
            s.lock()
                .append(&Tuple::fact_with_target(
                    i,
                    vec![i % 5, i % 3],
                    1.0,
                    vec![i as f64],
                ))
                .unwrap();
        }
        r1.lock().flush().unwrap();
        r2.lock().flush().unwrap();
        s.lock().flush().unwrap();

        let spec = JoinSpec::multiway("ratings", vec!["users".into(), "movies".into()]);
        let t = materialize_join(&db, &spec, "T", 8).unwrap();
        let mut t = t.lock();
        assert_eq!(t.num_tuples(), 30);
        assert_eq!(t.schema().num_features, 6);
        let rows = t.read_all().unwrap();
        for row in rows {
            let i = row.features[0] as u64;
            assert_eq!(row.features[1], (i % 5) as f64); // users feature 0
            assert_eq!(row.features[4], (i % 3) as f64); // movies feature 1
        }
    }

    #[test]
    fn dangling_fk_detected_in_multiway() {
        let db = Database::in_memory();
        let r1 = db.create_relation(Schema::dimension("d1", 1)).unwrap();
        let r2 = db.create_relation(Schema::dimension("d2", 1)).unwrap();
        let s = db.create_relation(Schema::fact("f", 1, 2)).unwrap();
        r1.lock().append(&Tuple::dimension(0, vec![0.0])).unwrap();
        r2.lock().append(&Tuple::dimension(0, vec![0.0])).unwrap();
        s.lock()
            .append(&Tuple::fact(0, vec![0, 99], vec![1.0]))
            .unwrap();
        r1.lock().flush().unwrap();
        r2.lock().flush().unwrap();
        s.lock().flush().unwrap();
        let spec = JoinSpec::multiway("f", vec!["d1".into(), "d2".into()]);
        let err = materialize_join(&db, &spec, "T", 4).unwrap_err();
        assert!(matches!(
            err,
            StoreError::DanglingForeignKey { key: 99, .. }
        ));
    }

    #[test]
    fn dim_cache_resolution() {
        let db = Database::in_memory();
        let spec = star(&db);
        let dims = spec.dimension_relations(&db).unwrap();
        let cache = DimCache::load(&dims).unwrap();
        assert_eq!(cache.num_dims(), 1);
        assert_eq!(cache.dim_len(0), 4);
        assert!(cache.get(0, 2).is_some());
        assert!(cache.get(0, 7).is_none());
        assert_eq!(cache.iter_dim(0).count(), 4);

        let fact = Tuple::fact_with_target(0, vec![3], 0.0, vec![0.0]);
        let resolved = cache.resolve(&fact).unwrap();
        assert_eq!(resolved[0].key, 3);

        let dangling = Tuple::fact_with_target(0, vec![9], 0.0, vec![0.0]);
        assert!(cache.resolve(&dangling).is_err());
    }

    #[test]
    fn materialized_join_page_cost_follows_bnl_shape() {
        // With R as outer in blocks, S is re-scanned ceil(|R|/block) times.
        let db = Database::in_memory();
        let spec = star(&db);
        let r_pages = db.relation("R").unwrap().lock().num_pages();
        let s_pages = db.relation("S").unwrap().lock().num_pages();
        db.stats().reset();
        let t = materialize_join(&db, &spec, "T", 1).unwrap();
        let t_pages = t.lock().num_pages();
        let snap = db.stats().snapshot();
        let expected_reads = r_pages + r_pages.div_ceil(1) * s_pages;
        assert_eq!(snap.pages_read as usize, expected_reads);
        assert_eq!(snap.pages_written as usize, t_pages);
    }
}
