//! Tuples and their fixed-width binary encoding.

use crate::error::{StoreError, StoreResult};
use crate::schema::Schema;
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Physical address of a tuple inside a relation's heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId {
    /// Page index within the heap file.
    pub page: u32,
    /// Slot index within the page.
    pub slot: u16,
}

impl TupleId {
    /// Creates a tuple id.
    pub fn new(page: u32, slot: u16) -> Self {
        Self { page, slot }
    }
}

/// An in-memory tuple.
///
/// The field layout follows the schemas of Section IV of the paper: a primary key,
/// optional foreign keys, an optional supervised target and dense `f64` features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Primary key (`SID` for fact tables, `RID` for dimension tables).
    pub key: u64,
    /// Foreign keys `FK_1 … FK_q` (empty for dimension tables).
    pub fks: Vec<u64>,
    /// Supervised target `Y` (only present when the schema has a target).
    pub target: Option<f64>,
    /// Feature vector `x`.
    pub features: Vec<f64>,
}

impl Tuple {
    /// Creates a dimension-table tuple `R(RID, x_R)`.
    pub fn dimension(key: u64, features: Vec<f64>) -> Self {
        Self {
            key,
            fks: Vec::new(),
            target: None,
            features,
        }
    }

    /// Creates an unsupervised fact-table tuple `S(SID, x_S, FK…)`.
    pub fn fact(key: u64, fks: Vec<u64>, features: Vec<f64>) -> Self {
        Self {
            key,
            fks,
            target: None,
            features,
        }
    }

    /// Creates a supervised fact-table tuple `S(SID, Y, x_S, FK…)`.
    pub fn fact_with_target(key: u64, fks: Vec<u64>, target: f64, features: Vec<f64>) -> Self {
        Self {
            key,
            fks,
            target: Some(target),
            features,
        }
    }

    /// Checks the tuple against a schema.
    pub fn validate(&self, schema: &Schema) -> StoreResult<()> {
        if self.features.len() != schema.num_features {
            return Err(StoreError::SchemaMismatch {
                relation: schema.name.clone(),
                detail: format!(
                    "expected {} features, got {}",
                    schema.num_features,
                    self.features.len()
                ),
            });
        }
        if self.fks.len() != schema.num_foreign_keys {
            return Err(StoreError::SchemaMismatch {
                relation: schema.name.clone(),
                detail: format!(
                    "expected {} foreign keys, got {}",
                    schema.num_foreign_keys,
                    self.fks.len()
                ),
            });
        }
        if self.target.is_some() != schema.has_target {
            return Err(StoreError::SchemaMismatch {
                relation: schema.name.clone(),
                detail: format!(
                    "target presence mismatch (schema has_target={}, tuple target={:?})",
                    schema.has_target, self.target
                ),
            });
        }
        Ok(())
    }

    /// Encodes the tuple into `out` using the schema's fixed-width layout.
    pub fn encode(&self, schema: &Schema, out: &mut Vec<u8>) {
        debug_assert!(self.validate(schema).is_ok());
        out.put_u64_le(self.key);
        for fk in &self.fks {
            out.put_u64_le(*fk);
        }
        if schema.has_target {
            out.put_f64_le(self.target.unwrap_or(0.0));
        }
        for f in &self.features {
            out.put_f64_le(*f);
        }
    }

    /// Decodes a tuple from a fixed-width record.
    pub fn decode(schema: &Schema, mut buf: &[u8]) -> StoreResult<Self> {
        if buf.len() < schema.record_size() {
            return Err(StoreError::Corrupt(format!(
                "record for '{}' needs {} bytes, got {}",
                schema.name,
                schema.record_size(),
                buf.len()
            )));
        }
        let key = buf.get_u64_le();
        let mut fks = Vec::with_capacity(schema.num_foreign_keys);
        for _ in 0..schema.num_foreign_keys {
            fks.push(buf.get_u64_le());
        }
        let target = if schema.has_target {
            Some(buf.get_f64_le())
        } else {
            None
        };
        let mut features = Vec::with_capacity(schema.num_features);
        for _ in 0..schema.num_features {
            features.push(buf.get_f64_le());
        }
        Ok(Self {
            key,
            fks,
            target,
            features,
        })
    }

    /// Builds the joined ("denormalized") tuple for `T(SID, [Y], [x_S x_R1 … x_Rq])`
    /// from a fact tuple and its matching dimension tuples, concatenating feature
    /// vectors in join order.
    pub fn joined(fact: &Tuple, dims: &[&Tuple]) -> Tuple {
        let extra: usize = dims.iter().map(|d| d.features.len()).sum();
        let mut features = Vec::with_capacity(fact.features.len() + extra);
        features.extend_from_slice(&fact.features);
        for d in dims {
            features.extend_from_slice(&d.features);
        }
        Tuple {
            key: fact.key,
            fks: Vec::new(),
            target: fact.target,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let schema = Schema::fact_with_target("s", 3, 2);
        let t = Tuple::fact_with_target(7, vec![11, 13], 0.5, vec![1.0, -2.0, 3.5]);
        let mut buf = Vec::new();
        t.encode(&schema, &mut buf);
        assert_eq!(buf.len(), schema.record_size());
        let back = Tuple::decode(&schema, &buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn decode_short_buffer_is_error() {
        let schema = Schema::dimension("r", 2);
        let err = Tuple::decode(&schema, &[0u8; 4]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn validate_detects_mismatches() {
        let schema = Schema::fact_with_target("s", 2, 1);
        assert!(Tuple::fact_with_target(1, vec![2], 1.0, vec![0.0, 0.0])
            .validate(&schema)
            .is_ok());
        // wrong feature count
        assert!(Tuple::fact_with_target(1, vec![2], 1.0, vec![0.0])
            .validate(&schema)
            .is_err());
        // wrong fk count
        assert!(Tuple::fact_with_target(1, vec![], 1.0, vec![0.0, 0.0])
            .validate(&schema)
            .is_err());
        // missing target
        assert!(Tuple::fact(1, vec![2], vec![0.0, 0.0])
            .validate(&schema)
            .is_err());
    }

    #[test]
    fn joined_concatenates_features_in_order() {
        let s = Tuple::fact_with_target(3, vec![10, 20], 1.5, vec![1.0, 2.0]);
        let r1 = Tuple::dimension(10, vec![3.0]);
        let r2 = Tuple::dimension(20, vec![4.0, 5.0]);
        let t = Tuple::joined(&s, &[&r1, &r2]);
        assert_eq!(t.key, 3);
        assert_eq!(t.target, Some(1.5));
        assert!(t.fks.is_empty());
        assert_eq!(t.features, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn tuple_id_ordering() {
        let a = TupleId::new(0, 5);
        let b = TupleId::new(1, 0);
        assert!(a < b);
    }
}
