//! # fml-store
//!
//! A small paged relational storage engine — the substrate on which the paper's
//! three training strategies (materialize / stream / factorize) are compared.
//! It replaces the PostgreSQL + psycopg2 layer used by the original evaluation
//! with a self-contained Rust implementation that exposes exactly the primitives
//! the algorithms need:
//!
//! * **Slotted pages & heap files** ([`page`], [`heap`]): fixed-size 8 KiB pages
//!   holding fixed-width records, stored either on disk or in memory.
//! * **Relations, schemas & catalog** ([`schema`], [`mod@tuple`], [`relation`],
//!   [`catalog`]): typed relations with a `u64` primary key, optional foreign keys,
//!   an optional training target, and `f64` feature columns.
//! * **Batch scans** ([`batch`]): block-wise iteration (a "block" is a fixed number
//!   of pages) as assumed by the paper's block-nested-loop cost analysis.
//! * **Indexes** ([`index`]): in-memory hash indexes on primary or foreign keys,
//!   used to probe the fact table for matches of a dimension-table batch.
//! * **Joins** ([`join`]): PK/FK equi-joins that either materialize the result as a
//!   new relation (`M-*` algorithms) or stream joined batches (`S-*`), plus the
//!   *factorized group scan* ([`factorized_scan`]) that yields each dimension tuple
//!   with its matching fact tuples (`F-*`).
//! * **I/O accounting** ([`stats`]): page read/write and field read counters so the
//!   paper's I/O cost formulas can be validated against observed behaviour.
//!
//! The engine is intentionally single-threaded per relation (training is
//! sequential in the paper); interior mutability uses `parking_lot` locks so scans
//! can share the catalog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod csv;
pub mod error;
pub mod factorized_scan;
pub mod heap;
pub mod index;
pub mod join;
pub mod page;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod tuple;

pub use catalog::Database;
pub use error::{StoreError, StoreResult};
pub use index::HashIndex;
pub use join::JoinSpec;
pub use relation::Relation;
pub use schema::Schema;
pub use stats::{IoSnapshot, IoStats};
pub use tuple::{Tuple, TupleId};

/// Size of a storage page in bytes (matches the PostgreSQL default the paper's
/// cost analysis implicitly assumes).
pub const PAGE_SIZE: usize = 8192;

/// Default number of pages read together as one "block" by block-nested-loop
/// style scans (`BlockSize` in the paper's I/O cost formulas).
pub const DEFAULT_BLOCK_PAGES: usize = 64;
