//! I/O accounting.
//!
//! The paper's cost analysis (Section V-A) argues about algorithm choice in terms
//! of page reads and writes (`|S|`, `|R|`, `|T|`, `BlockSize`) and, for the NN
//! backward pass, in terms of how many 8-byte fields are fetched
//! (`n_S·d_S + n_R·d_R` versus `N·d`).  [`IoStats`] is a cheap shareable counter
//! bundle that every heap file and scan updates, so experiments can report
//! *measured* I/O next to the analytic model.
//!
//! When observability is on (`FML_OBS=metrics|trace`), every `add_*` call
//! additionally mirrors its increment into the process-wide `fml-obs`
//! registry (`fml_store_pages_read_total` etc.), so exported metrics carry
//! the same page/field accounting the per-database [`IoStats`] handles do —
//! gated on one relaxed load so the off path is unchanged.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct Counters {
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    tuples_read: AtomicU64,
    tuples_written: AtomicU64,
    fields_read: AtomicU64,
    index_probes: AtomicU64,
}

/// Shareable handle onto a set of I/O counters.
///
/// Cloning an `IoStats` yields a handle onto the *same* counters, so a database,
/// its relations and all scans derived from them report into one place.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IoSnapshot {
    /// Pages fetched from storage.
    pub pages_read: u64,
    /// Pages written to storage.
    pub pages_written: u64,
    /// Tuples decoded from pages.
    pub tuples_read: u64,
    /// Tuples appended to relations.
    pub tuples_written: u64,
    /// Individual 8-byte fields materialized for the learner.
    pub fields_read: u64,
    /// Hash-index probe operations.
    pub index_probes: u64,
}

impl IoSnapshot {
    /// Difference `self - earlier`, counter by counter (saturating).
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.pages_read.saturating_sub(earlier.pages_read),
            pages_written: self.pages_written.saturating_sub(earlier.pages_written),
            tuples_read: self.tuples_read.saturating_sub(earlier.tuples_read),
            tuples_written: self.tuples_written.saturating_sub(earlier.tuples_written),
            fields_read: self.fields_read.saturating_sub(earlier.fields_read),
            index_probes: self.index_probes.saturating_sub(earlier.index_probes),
        }
    }

    /// Total page I/O (reads + writes), the quantity the paper's formulas bound.
    pub fn total_page_io(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

impl IoStats {
    /// Creates a fresh, zeroed counter bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` page reads.
    pub fn add_pages_read(&self, n: u64) {
        self.inner.pages_read.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_pages_read_total").add(n);
        }
    }

    /// Records `n` page writes.
    pub fn add_pages_written(&self, n: u64) {
        self.inner.pages_written.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_pages_written_total").add(n);
        }
    }

    /// Records `n` tuples decoded.
    pub fn add_tuples_read(&self, n: u64) {
        self.inner.tuples_read.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_tuples_read_total").add(n);
        }
    }

    /// Records `n` tuples appended.
    pub fn add_tuples_written(&self, n: u64) {
        self.inner.tuples_written.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_tuples_written_total").add(n);
        }
    }

    /// Records `n` 8-byte fields handed to the learner.
    pub fn add_fields_read(&self, n: u64) {
        self.inner.fields_read.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_fields_read_total").add(n);
        }
    }

    /// Records `n` index probes.
    pub fn add_index_probes(&self, n: u64) {
        self.inner.index_probes.fetch_add(n, Ordering::Relaxed);
        if fml_obs::metrics_enabled() {
            fml_obs::counter!("fml_store_index_probes_total").add(n);
        }
    }

    /// Takes a snapshot of the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            pages_read: self.inner.pages_read.load(Ordering::Relaxed),
            pages_written: self.inner.pages_written.load(Ordering::Relaxed),
            tuples_read: self.inner.tuples_read.load(Ordering::Relaxed),
            tuples_written: self.inner.tuples_written.load(Ordering::Relaxed),
            fields_read: self.inner.fields_read.load(Ordering::Relaxed),
            index_probes: self.inner.index_probes.load(Ordering::Relaxed),
        }
    }

    /// Cumulative `(total_page_io, fields_read)` probe — the reading shape the
    /// trainers hand to `fml_linalg::exec::FitNotifier` for per-iteration I/O
    /// deltas.  Defined once here so every trainer probes the same counters.
    pub fn io_probe(&self) -> impl Fn() -> (u64, u64) + '_ {
        || {
            let s = self.snapshot();
            (s.total_page_io(), s.fields_read)
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.inner.pages_read.store(0, Ordering::Relaxed);
        self.inner.pages_written.store(0, Ordering::Relaxed);
        self.inner.tuples_read.store(0, Ordering::Relaxed);
        self.inner.tuples_written.store(0, Ordering::Relaxed);
        self.inner.fields_read.store(0, Ordering::Relaxed);
        self.inner.index_probes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let stats = IoStats::new();
        stats.add_pages_read(3);
        stats.add_pages_written(2);
        stats.add_tuples_read(10);
        stats.add_tuples_written(4);
        stats.add_fields_read(100);
        stats.add_index_probes(7);
        let snap = stats.snapshot();
        assert_eq!(snap.pages_read, 3);
        assert_eq!(snap.pages_written, 2);
        assert_eq!(snap.tuples_read, 10);
        assert_eq!(snap.tuples_written, 4);
        assert_eq!(snap.fields_read, 100);
        assert_eq!(snap.index_probes, 7);
        assert_eq!(snap.total_page_io(), 5);
        stats.reset();
        assert_eq!(stats.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn clones_share_counters() {
        let stats = IoStats::new();
        let clone = stats.clone();
        clone.add_pages_read(5);
        assert_eq!(stats.snapshot().pages_read, 5);
    }

    #[test]
    fn delta_since() {
        let stats = IoStats::new();
        stats.add_pages_read(5);
        let before = stats.snapshot();
        stats.add_pages_read(3);
        stats.add_fields_read(11);
        let after = stats.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.pages_read, 3);
        assert_eq!(d.fields_read, 11);
        assert_eq!(d.pages_written, 0);
    }
}
