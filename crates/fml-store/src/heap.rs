//! Heap files: ordered sequences of pages, on disk or in memory.
//!
//! A [`HeapFile`] owns a [`PageStore`] backend plus a small tail-page write buffer,
//! and reports every page transfer to a shared [`IoStats`] handle.  Two backends
//! are provided:
//!
//! * [`MemPageStore`] — pages held in a `Vec<Vec<u8>>`; used for unit tests and
//!   for experiments where only *counted* I/O matters.
//! * [`FilePageStore`] — pages stored in a regular file with positional reads and
//!   writes; used by the examples and the benchmark harness so that the
//!   materialized variants actually pay the cost of writing the join result.

use crate::error::{StoreError, StoreResult};
use crate::page::Page;
use crate::stats::IoStats;
use crate::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstraction over where pages physically live.
pub trait PageStore: Send {
    /// Number of pages currently stored.
    fn num_pages(&self) -> usize;
    /// Reads page `idx`.
    fn read_page(&mut self, idx: usize) -> StoreResult<Page>;
    /// Overwrites page `idx`.
    fn write_page(&mut self, idx: usize, page: &Page) -> StoreResult<()>;
    /// Appends a page, returning its index.
    fn append_page(&mut self, page: &Page) -> StoreResult<usize>;
}

/// In-memory page store.
#[derive(Default)]
pub struct MemPageStore {
    pages: Vec<Vec<u8>>,
}

impl MemPageStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemPageStore {
    fn num_pages(&self) -> usize {
        self.pages.len()
    }

    fn read_page(&mut self, idx: usize) -> StoreResult<Page> {
        let bytes = self
            .pages
            .get(idx)
            .ok_or(StoreError::PageOutOfRange {
                page: idx,
                pages: self.pages.len(),
            })?
            .clone();
        Page::from_bytes(bytes)
    }

    fn write_page(&mut self, idx: usize, page: &Page) -> StoreResult<()> {
        if idx >= self.pages.len() {
            return Err(StoreError::PageOutOfRange {
                page: idx,
                pages: self.pages.len(),
            });
        }
        self.pages[idx] = page.as_bytes().to_vec();
        Ok(())
    }

    fn append_page(&mut self, page: &Page) -> StoreResult<usize> {
        self.pages.push(page.as_bytes().to_vec());
        Ok(self.pages.len() - 1)
    }
}

/// File-backed page store.
pub struct FilePageStore {
    file: File,
    num_pages: usize,
}

impl FilePageStore {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path) -> StoreResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self { file, num_pages: 0 })
    }

    /// Opens an existing page file at `path`.
    pub fn open(path: &Path) -> StoreResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len() as usize;
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(StoreError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        Ok(Self {
            file,
            num_pages: len / PAGE_SIZE,
        })
    }
}

impl PageStore for FilePageStore {
    fn num_pages(&self) -> usize {
        self.num_pages
    }

    fn read_page(&mut self, idx: usize) -> StoreResult<Page> {
        if idx >= self.num_pages {
            return Err(StoreError::PageOutOfRange {
                page: idx,
                pages: self.num_pages,
            });
        }
        self.file.seek(SeekFrom::Start((idx * PAGE_SIZE) as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        Page::from_bytes(buf)
    }

    fn write_page(&mut self, idx: usize, page: &Page) -> StoreResult<()> {
        if idx >= self.num_pages {
            return Err(StoreError::PageOutOfRange {
                page: idx,
                pages: self.num_pages,
            });
        }
        self.file.seek(SeekFrom::Start((idx * PAGE_SIZE) as u64))?;
        self.file.write_all(page.as_bytes())?;
        Ok(())
    }

    fn append_page(&mut self, page: &Page) -> StoreResult<usize> {
        self.file
            .seek(SeekFrom::Start((self.num_pages * PAGE_SIZE) as u64))?;
        self.file.write_all(page.as_bytes())?;
        self.num_pages += 1;
        Ok(self.num_pages - 1)
    }
}

/// A heap file of fixed-width records with a tail-page append buffer.
pub struct HeapFile {
    store: Box<dyn PageStore>,
    record_size: usize,
    stats: IoStats,
    /// Partially filled tail page not yet flushed, with its page index if it was
    /// already appended once.
    tail: Option<(Option<usize>, Page)>,
    num_records: u64,
}

impl HeapFile {
    /// Creates a heap file for records of `record_size` bytes on the given backend.
    pub fn new(store: Box<dyn PageStore>, record_size: usize, stats: IoStats) -> StoreResult<Self> {
        // Validate record size eagerly (Page::new performs the check).
        Page::new(record_size)?;
        let mut num_records = 0u64;
        // If reopening an existing store, count records without charging stats.
        let mut store = store;
        for i in 0..store.num_pages() {
            num_records += store.read_page(i)?.len() as u64;
        }
        Ok(Self {
            store,
            record_size,
            stats,
            tail: None,
            num_records,
        })
    }

    /// Creates an in-memory heap file.
    pub fn in_memory(record_size: usize, stats: IoStats) -> StoreResult<Self> {
        Self::new(Box::new(MemPageStore::new()), record_size, stats)
    }

    /// Width of each record.
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Shared I/O statistics handle.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Total number of records appended.
    pub fn num_records(&self) -> u64 {
        self.num_records
    }

    /// Number of pages including the unflushed tail page.
    pub fn num_pages(&self) -> usize {
        self.store.num_pages()
            + match &self.tail {
                Some((None, _)) => 1,
                _ => 0,
            }
    }

    /// Maximum number of records per page for this record size.
    pub fn records_per_page(&self) -> usize {
        (PAGE_SIZE - crate::page::PAGE_HEADER) / self.record_size
    }

    /// Appends one encoded record.
    pub fn append(&mut self, record: &[u8]) -> StoreResult<()> {
        if self.tail.is_none() {
            self.tail = Some((None, Page::new(self.record_size)?));
        }
        {
            let (_, page) = self.tail.as_mut().unwrap();
            page.push(record)?;
            self.num_records += 1;
            self.stats.add_tuples_written(1);
        }
        let full = self
            .tail
            .as_ref()
            .map(|(_, p)| p.is_full())
            .unwrap_or(false);
        if full {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes the tail page (if any) to the backend.
    pub fn flush(&mut self) -> StoreResult<()> {
        if let Some((idx, page)) = self.tail.take() {
            match idx {
                Some(i) => {
                    self.store.write_page(i, &page)?;
                    self.stats.add_pages_written(1);
                    if !page.is_full() {
                        self.tail = Some((Some(i), page));
                    }
                }
                None => {
                    let i = self.store.append_page(&page)?;
                    self.stats.add_pages_written(1);
                    if !page.is_full() {
                        self.tail = Some((Some(i), page));
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads page `idx`, charging one page read to the stats.
    pub fn read_page(&mut self, idx: usize) -> StoreResult<Page> {
        // Serve unflushed tail reads from memory (still counts as a page read so
        // every algorithm variant is charged identically for scanning its input).
        if let Some((Some(i), page)) = &self.tail {
            if *i == idx {
                self.stats.add_pages_read(1);
                return Ok(page.clone());
            }
        }
        if let Some((None, page)) = &self.tail {
            if idx == self.store.num_pages() {
                self.stats.add_pages_read(1);
                return Ok(page.clone());
            }
        }
        let page = self.store.read_page(idx)?;
        self.stats.add_pages_read(1);
        Ok(page)
    }

    /// Number of pages that a scan must touch (flushed pages plus tail).
    pub fn scan_pages(&self) -> usize {
        let mut n = self.store.num_pages();
        if let Some((idx, _)) = &self.tail {
            if idx.is_none() {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(v: u8, size: usize) -> Vec<u8> {
        vec![v; size]
    }

    #[test]
    fn append_and_read_in_memory() {
        let stats = IoStats::new();
        let mut heap = HeapFile::in_memory(8, stats.clone()).unwrap();
        for i in 0..10u8 {
            heap.append(&record(i, 8)).unwrap();
        }
        heap.flush().unwrap();
        assert_eq!(heap.num_records(), 10);
        assert_eq!(heap.scan_pages(), 1);
        let page = heap.read_page(0).unwrap();
        assert_eq!(page.len(), 10);
        assert_eq!(page.record(3).unwrap(), record(3, 8).as_slice());
        assert!(stats.snapshot().pages_written >= 1);
        assert_eq!(stats.snapshot().tuples_written, 10);
        assert_eq!(stats.snapshot().pages_read, 1);
    }

    #[test]
    fn spills_to_multiple_pages() {
        let stats = IoStats::new();
        // large records so a page fills quickly
        let record_size = 2048;
        let per_page = (PAGE_SIZE - crate::page::PAGE_HEADER) / record_size;
        let mut heap = HeapFile::in_memory(record_size, stats).unwrap();
        let total = per_page * 3 + 1;
        for i in 0..total {
            heap.append(&record(i as u8, record_size)).unwrap();
        }
        heap.flush().unwrap();
        assert_eq!(heap.num_records() as usize, total);
        assert_eq!(heap.scan_pages(), 4);
        // read all pages back and count records
        let mut seen = 0;
        for p in 0..heap.scan_pages() {
            seen += heap.read_page(p).unwrap().len();
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn unflushed_tail_is_readable() {
        let stats = IoStats::new();
        let mut heap = HeapFile::in_memory(8, stats).unwrap();
        heap.append(&record(9, 8)).unwrap();
        // no flush: page 0 lives only in the tail buffer
        assert_eq!(heap.scan_pages(), 1);
        let page = heap.read_page(0).unwrap();
        assert_eq!(page.len(), 1);
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fml_store_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("heap_roundtrip.pages");
        let stats = IoStats::new();
        {
            let store = FilePageStore::create(&path).unwrap();
            let mut heap = HeapFile::new(Box::new(store), 16, stats.clone()).unwrap();
            for i in 0..100u8 {
                heap.append(&record(i, 16)).unwrap();
            }
            heap.flush().unwrap();
        }
        {
            let store = FilePageStore::open(&path).unwrap();
            let mut heap = HeapFile::new(Box::new(store), 16, stats).unwrap();
            assert_eq!(heap.num_records(), 100);
            let page = heap.read_page(0).unwrap();
            assert_eq!(page.record(5).unwrap(), record(5, 16).as_slice());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_past_end_is_error() {
        let stats = IoStats::new();
        let mut heap = HeapFile::in_memory(8, stats).unwrap();
        assert!(heap.read_page(0).is_err());
    }
}
