//! # fml-nn
//!
//! Feed-forward neural networks trained by back-propagation over **normalized**
//! relational data, implementing the three algorithm variants of the paper
//! (Section VI):
//!
//! * [`materialized::MaterializedNn`] (`M-NN`) — materialize the PK/FK join, then
//!   train scanning the denormalized table each epoch.
//! * [`streaming::StreamingNn`] (`S-NN`) — join on the fly each epoch and feed the
//!   joined tuples to an unchanged trainer.
//! * [`factorized::FactorizedNn`] (`F-NN`) — push the first-layer computation
//!   through the join: the partial pre-activation `W¹_R·x_R + b¹` is computed once
//!   per dimension tuple and reused for every matching fact tuple during forward
//!   propagation, and the first-layer weight gradient's dimension-side block is
//!   accumulated per dimension tuple during backward propagation; the redundant
//!   dimension fields are never read from storage (Section VI-A3's I/O saving).
//!   [`multiway::FactorizedMultiwayNn`] generalizes this to star joins.
//!
//! [`layer_reuse`] contains the paper's negative result about layers ≥ 2: only
//! additive activation functions admit exact reuse beyond the first layer, and
//! even then the reused evaluation costs at least as many operations as the direct
//! one (Section VI-A2).
//!
//! All variants run full-batch gradient descent by default, which makes the
//! learned parameters independent of tuple order and therefore identical across
//! variants up to floating-point rounding — the property the integration tests
//! assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod factorized;
pub mod gradcheck;
pub mod layer;
pub mod layer_reuse;
pub mod loss;
pub mod materialized;
pub mod mlp;
pub mod multiway;
pub mod streaming;
pub mod trainer;

pub use activation::Activation;
pub use factorized::FactorizedNn;
pub use layer::DenseLayer;
pub use materialized::MaterializedNn;
pub use mlp::Mlp;
pub use multiway::FactorizedMultiwayNn;
pub use streaming::StreamingNn;
pub use trainer::{NnConfig, NnFit, SupervisedSource};
