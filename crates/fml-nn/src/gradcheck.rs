//! Finite-difference gradient checking, used by the test suite to validate the
//! analytic back-propagation gradients.

use crate::layer::LayerGradient;
use crate::mlp::Mlp;

/// Compares analytic gradients against central finite differences for a single
/// example, returning the largest absolute deviation over all parameters.
pub fn check_gradients(net: &Mlp, x: &[f64], target: f64) -> f64 {
    let eps = 1e-6;
    let mut grads: Vec<LayerGradient> = net.zero_grads();
    net.accumulate_example(x, target, &mut grads);

    let loss = |net: &Mlp| -> f64 { 0.5 * (net.predict(x) - target).powi(2) };

    let mut max_err: f64 = 0.0;
    #[allow(clippy::needless_range_loop)] // `l` indexes fresh clones, not one slice
    for l in 0..net.layers().len() {
        let (rows, cols) = net.layers()[l].weights.shape();
        for i in 0..rows {
            for j in 0..cols {
                let mut plus = net.clone();
                plus.layers_mut()[l].weights[(i, j)] += eps;
                let mut minus = net.clone();
                minus.layers_mut()[l].weights[(i, j)] -= eps;
                let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                max_err = max_err.max((fd - grads[l].d_weights[(i, j)]).abs());
            }
            let mut plus = net.clone();
            plus.layers_mut()[l].bias[i] += eps;
            let mut minus = net.clone();
            minus.layers_mut()[l].bias[i] -= eps;
            let fd = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            max_err = max_err.max((fd - grads[l].d_bias[i]).abs());
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    #[test]
    fn analytic_gradients_agree_with_finite_differences() {
        let net = Mlp::new(3, &[5], Activation::Sigmoid, 42);
        let err = check_gradients(&net, &[0.2, -0.4, 1.1], 0.3);
        assert!(err < 1e-6, "gradient check error {err}");
    }

    #[test]
    fn deeper_networks_also_pass() {
        let net = Mlp::new(2, &[4, 4, 3], Activation::Tanh, 9);
        let err = check_gradients(&net, &[0.5, -0.25], -0.8);
        assert!(err < 1e-5, "gradient check error {err}");
    }
}
