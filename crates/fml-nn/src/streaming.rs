//! `S-NN`: join on the fly each epoch, feed the denormalized tuples to the
//! unchanged trainer.

use crate::materialized::ensure_has_target;
use crate::mlp::Mlp;
use crate::trainer::{train_supervised_from, NnConfig, NnFit, SupervisedSource};
use fml_linalg::exec::ExecPolicy;
use fml_store::factorized_scan::{GroupScan, StarScan};
use fml_store::{Database, JoinSpec, StoreResult};
use std::time::Instant;

/// The streaming (join-on-the-fly) NN training strategy.
pub struct StreamingNn;

impl StreamingNn {
    /// Trains the network joining the base relations on the fly each epoch.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &NnConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<NnFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        spec.validate(db)?;
        ensure_has_target(db, spec)?;
        let d = spec.total_features(db)?;
        let initial = Mlp::new(d, &config.hidden, config.activation, ex.seed);
        let probe = db.stats().io_probe();
        let mut fit = if spec.num_dimensions() == 1 {
            let mut source = BinarySupervisedSource::new(db, spec.clone(), ex.block_pages)?;
            train_supervised_from(&mut source, config, exec, initial, Some(&probe))?
        } else {
            let mut source = StarSupervisedSource::new(db, spec.clone(), ex.block_pages)?;
            train_supervised_from(&mut source, config, exec, initial, Some(&probe))?
        };
        fit.elapsed = start.elapsed();
        Ok(fit)
    }
}

/// Supervised source for binary joins (reads `R` in blocks, probes `S`).
pub struct BinarySupervisedSource<'a> {
    db: &'a Database,
    spec: JoinSpec,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl<'a> BinarySupervisedSource<'a> {
    /// Creates the source.
    pub fn new(db: &'a Database, spec: JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        let dim = spec.total_features(db)?;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        Ok(Self {
            db,
            spec,
            block_pages,
            dim,
            n,
        })
    }
}

impl SupervisedSource for BinarySupervisedSource<'_> {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()> {
        let scan = GroupScan::from_spec(self.db, &self.spec, self.block_pages)?;
        for block in scan {
            for group in block? {
                for joined in group.denormalize() {
                    f(&joined.features, joined.target.unwrap_or(0.0));
                }
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Supervised source for multi-way joins (dimension cache + fact scan).
pub struct StarSupervisedSource<'a> {
    db: &'a Database,
    spec: JoinSpec,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl<'a> StarSupervisedSource<'a> {
    /// Creates the source.
    pub fn new(db: &'a Database, spec: JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        let dim = spec.total_features(db)?;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        Ok(Self {
            db,
            spec,
            block_pages,
            dim,
            n,
        })
    }
}

impl SupervisedSource for StarSupervisedSource<'_> {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()> {
        let scan = StarScan::new(self.db, &self.spec, self.block_pages)?;
        for block in scan.blocks() {
            for fact in block? {
                let joined = scan.denormalize(&fact)?;
                f(&joined.features, joined.target.unwrap_or(0.0));
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialized::MaterializedNn;
    use fml_data::multiway::{DimSpec, MultiwayConfig};
    use fml_data::SyntheticConfig;

    #[test]
    fn streaming_matches_materialized_binary() {
        let w = SyntheticConfig {
            n_s: 250,
            n_r: 10,
            d_s: 2,
            d_r: 4,
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 9,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![8],
            epochs: 4,
            ..NnConfig::default()
        };
        let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            m.model.max_param_diff(&s.model) < 1e-9,
            "M-NN vs S-NN diff {}",
            m.model.max_param_diff(&s.model)
        );
        for (a, b) in m.loss_trace.iter().zip(s.loss_trace.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn streaming_multiway() {
        let w = MultiwayConfig {
            n_s: 200,
            d_s: 2,
            dims: vec![DimSpec::new(10, 2), DimSpec::new(5, 3)],
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 12,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![6],
            epochs: 3,
            ..NnConfig::default()
        };
        let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&s.model) < 1e-9);
        assert_eq!(s.model.input_dim(), 7);
    }
}
