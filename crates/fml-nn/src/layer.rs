//! A fully connected layer.

use crate::activation::Activation;
use fml_linalg::{gemm, vector, Matrix};
use serde::{Deserialize, Serialize};

/// A dense layer `h = f(W·x + b)` with `W ∈ ℝ^{out×in}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix (`out_dim × in_dim`).
    pub weights: Matrix,
    /// Bias vector (`out_dim`).
    pub bias: Vec<f64>,
    /// Activation applied to the pre-activation values.
    pub activation: Activation,
}

impl DenseLayer {
    /// Creates a layer with the given parameters.
    pub fn new(weights: Matrix, bias: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(
            weights.rows(),
            bias.len(),
            "weights/bias dimension mismatch"
        );
        Self {
            weights,
            bias,
            activation,
        }
    }

    /// Deterministically initializes a layer with small seeded pseudo-random
    /// weights (scaled by `1/√in_dim`, the usual fan-in scaling).
    pub fn init(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        // Small deterministic generator (SplitMix64) — keeps initialization
        // identical for every training variant without threading an RNG through.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z = z ^ (z >> 31);
            // map to (-0.5, 0.5)
            (z as f64 / u64::MAX as f64) - 0.5
        };
        let scale = 1.0 / (in_dim as f64).sqrt();
        let mut w = Matrix::zeros(out_dim, in_dim);
        for i in 0..out_dim {
            for j in 0..in_dim {
                w[(i, j)] = next() * scale;
            }
        }
        let bias = (0..out_dim).map(|_| next() * 0.1).collect();
        Self::new(w, bias, activation)
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimensionality (number of units).
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Computes the pre-activation `a = W·x + b` under the default policy.
    pub fn pre_activation(&self, x: &[f64]) -> Vec<f64> {
        self.pre_activation_with(fml_linalg::KernelPolicy::default(), x)
    }

    /// Computes the pre-activation under an explicit kernel policy.
    pub fn pre_activation_with(&self, kp: fml_linalg::KernelPolicy, x: &[f64]) -> Vec<f64> {
        let mut a = gemm::matvec_with(kp, &self.weights, x);
        vector::axpy(1.0, &self.bias, &mut a);
        a
    }

    /// Forward pass returning `(a, h)` — pre-activation and activated output.
    pub fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        self.forward_with(fml_linalg::KernelPolicy::default(), x)
    }

    /// [`Self::forward`] under an explicit kernel policy.
    pub fn forward_with(&self, kp: fml_linalg::KernelPolicy, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let a = self.pre_activation_with(kp, x);
        let mut h = a.clone();
        self.activation.apply_slice(&mut h);
        (a, h)
    }

    /// Largest absolute parameter difference against another layer.
    pub fn max_param_diff(&self, other: &DenseLayer) -> f64 {
        self.weights
            .max_abs_diff(&other.weights)
            .max(vector::max_abs_diff(&self.bias, &other.bias))
    }
}

/// Accumulated gradients for one layer.
#[derive(Debug, Clone)]
pub struct LayerGradient {
    /// Gradient of the (summed) loss with respect to the weights.
    pub d_weights: Matrix,
    /// Gradient with respect to the bias.
    pub d_bias: Vec<f64>,
}

impl LayerGradient {
    /// Creates a zeroed gradient accumulator for the given layer.
    pub fn zeros_like(layer: &DenseLayer) -> Self {
        Self {
            d_weights: Matrix::zeros(layer.out_dim(), layer.in_dim()),
            d_bias: vec![0.0; layer.out_dim()],
        }
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        self.d_weights.fill_zero();
        self.d_bias.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Merges another accumulator into this one (`dθ += dθ_other`).
    ///
    /// The parallel trainers give each worker a private accumulator and merge
    /// the partials **in worker-index order**, fixing the floating-point
    /// reduction order for a given chunking.
    pub fn merge_from(&mut self, other: &LayerGradient) {
        self.d_weights.add_assign(&other.d_weights);
        vector::axpy(1.0, &other.d_bias, &mut self.d_bias);
    }

    /// Applies the accumulated gradient to a layer: `θ -= lr/n · dθ`.
    pub fn apply(&self, layer: &mut DenseLayer, learning_rate: f64, n: f64) {
        let step = -learning_rate / n;
        layer.weights.axpy(step, &self.d_weights);
        vector::axpy(step, &self.d_bias, &mut layer.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]);
        let layer = DenseLayer::new(w, vec![0.5, -0.5], Activation::Relu);
        let (a, h) = layer.forward(&[1.0, 1.0]);
        assert_eq!(a, vec![3.5, -1.0]);
        assert_eq!(h, vec![3.5, 0.0]);
        assert_eq!(layer.in_dim(), 2);
        assert_eq!(layer.out_dim(), 2);
        assert_eq!(layer.num_params(), 6);
    }

    #[test]
    fn init_is_deterministic_and_seed_sensitive() {
        let a = DenseLayer::init(4, 3, Activation::Sigmoid, 1);
        let b = DenseLayer::init(4, 3, Activation::Sigmoid, 1);
        let c = DenseLayer::init(4, 3, Activation::Sigmoid, 2);
        assert_eq!(a.max_param_diff(&b), 0.0);
        assert!(a.max_param_diff(&c) > 0.0);
        // weights bounded by the fan-in scaling
        assert!(a.weights.as_slice().iter().all(|w| w.abs() <= 0.5));
    }

    #[test]
    fn gradient_apply_moves_parameters() {
        let mut layer = DenseLayer::init(2, 2, Activation::Identity, 3);
        let before = layer.clone();
        let mut grad = LayerGradient::zeros_like(&layer);
        grad.d_weights[(0, 0)] = 1.0;
        grad.d_bias[1] = 2.0;
        grad.apply(&mut layer, 0.1, 1.0);
        assert!((layer.weights[(0, 0)] - (before.weights[(0, 0)] - 0.1)).abs() < 1e-12);
        assert!((layer.bias[1] - (before.bias[1] - 0.2)).abs() < 1e-12);
        grad.reset();
        assert_eq!(grad.d_weights.frobenius_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_bias_rejected() {
        DenseLayer::new(Matrix::zeros(2, 2), vec![0.0], Activation::Identity);
    }
}
