//! `F-NN` for binary joins: back-propagation pushed through the join
//! (Sections VI-A1 and VI-A3).
//!
//! * **Forward, first layer**: the pre-activation splits as
//!   `a¹ = W¹_S·x_S + (W¹_R·x_R + b¹)`.  The parenthesized term depends only on
//!   the dimension tuple and the (epoch-constant) weights, so it is computed once
//!   per dimension tuple per epoch and reused for every matching fact tuple.
//! * **Forward/backward, layers ≥ 2**: evaluated exactly as in the dense variants
//!   — the paper shows that sharing computation there is only exact for additive
//!   activations and never cheaper (see [`crate::layer_reuse`]).
//! * **Backward, first layer**: `∂E/∂W¹ = δ¹·xᵀ = [PG_S  PG_R]` (Equation 29).
//!   The fact-side block accumulates per tuple; the dimension-side block
//!   accumulates the per-group sum of `δ¹` and performs a single outer product
//!   with `x_R` per dimension tuple.  Either way the features are read from the
//!   base relations (`n_S·d_S + n_R·d_R` fields instead of `N·d`), the I/O saving
//!   of Section VI-A3.

use crate::materialized::ensure_has_target;
use crate::mlp::Mlp;
use crate::multiway::FactorizedMultiwayNn;
use crate::trainer::{NnConfig, NnFit};
use fml_linalg::exec::{ExecPolicy, FitNotifier};
use fml_linalg::policy::par_chunks_with_threads;
use fml_linalg::repcache::RepCache;
use fml_linalg::{gemm, vector, Matrix};
use fml_store::factorized_scan::GroupScan;
use fml_store::{Database, JoinSpec, StoreResult};
use std::time::Instant;

/// Minimum per-example work (≈ `4·|θ|` flops) below which the parallel policy
/// processes join groups inline instead of fanning out (mirrors the GMM
/// trainers' `PAR_MIN_GROUP_FLOPS`).
const PAR_MIN_GROUP_FLOPS: usize = 1 << 12;

/// The factorized NN training strategy (the paper's proposal).
pub struct FactorizedNn;

impl FactorizedNn {
    /// Trains the network without materializing the join, reusing the
    /// dimension-side first-layer computation.  Multi-way joins are dispatched to
    /// [`FactorizedMultiwayNn`].
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &NnConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<NnFit> {
        spec.validate(db)?;
        if spec.num_dimensions() > 1 {
            return FactorizedMultiwayNn::train(db, spec, config, exec);
        }
        ensure_has_target(db, spec)?;
        Self::train_binary(db, spec, config, exec)
    }

    fn train_binary(
        db: &Database,
        spec: &JoinSpec,
        config: &NnConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<NnFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        // Kernels invoked under a parallel policy on this thread fan out to
        // exactly the resolved thread count while training runs.
        let _kernel_threads = ex.kernel_thread_scope();
        // The resolved observability mode governs instrumentation on every
        // thread this run touches (pool workers, storage scans).
        let _obs = ex.obs_scope();
        let sizes = spec.feature_partition(db)?;
        let (d_s, d_r) = (sizes[0], sizes[1]);
        let d = d_s + d_r;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        assert!(n > 0, "cannot train on an empty source");
        let mut model = Mlp::new(d, &config.hidden, config.activation, ex.seed);
        let mut loss_trace = Vec::with_capacity(config.epochs);
        let probe = db.stats().io_probe();
        let mut notifier = FitNotifier::new(exec, Some(&probe));

        // Per-tuple representation caches (one-hot / weighted CSR / dense),
        // filled lazily during the first epoch's scan and indexed by group /
        // fact scan position — detection runs at most once per tuple for the
        // whole training run instead of once per epoch (the shared
        // [`RepCache`] protocol).
        let mut group_reps = RepCache::new(ex.sparse);
        let mut fact_reps = RepCache::new(ex.sparse);

        for _epoch in 0..config.epochs {
            // Weights are constant within an epoch (full-batch update at the end),
            // so the column split of W¹ is hoisted out of the scan.
            let nh = model.layers()[0].out_dim();
            let w1 = &model.layers()[0].weights;
            let w1_s = w1.sub_block(0, nh, 0, d_s);
            let w1_r = w1.sub_block(0, nh, d_s, d);
            let b1 = model.layers()[0].bias.clone();

            let mut grads = model.zero_grads();
            // First-layer weight gradient, accumulated block-wise.
            let mut grad_w_s = Matrix::zeros(nh, d_s);
            let mut grad_w_r = Matrix::zeros(nh, d_r);
            let mut loss_sum = 0.0;

            let kp = ex.kernel_policy.sequential();
            // Fan out over join groups only when per-example work can amortize
            // the scoped-thread spawns.
            let par =
                ex.kernel_policy.is_parallel() && 4 * model.num_params() >= PAR_MIN_GROUP_FLOPS;
            let workers = ex.workers(par);
            let mut group_cursor = 0usize;
            let mut fact_cursor = 0usize;
            let scan = GroupScan::from_spec(db, spec, ex.block_pages)?;
            for block in scan {
                // Join groups are independent within a block: chunks of groups
                // accumulate private gradients that merge in chunk order.
                let groups = block?;
                let fact_offsets: Vec<usize> = groups
                    .iter()
                    .scan(fact_cursor, |acc, g| {
                        let o = *acc;
                        *acc += g.s_tuples.len();
                        Some(o)
                    })
                    .collect();
                let group_base = group_cursor;
                let (group_reps_ref, fact_reps_ref) = (&group_reps, &fact_reps);
                let parts = par_chunks_with_threads(workers, groups.len(), 1, |range| {
                    let mut local_grads = model.zero_grads();
                    let mut local_w_s = Matrix::zeros(nh, d_s);
                    let mut local_w_r = Matrix::zeros(nh, d_r);
                    let mut group_seg = group_reps_ref.segment(group_base + range.start);
                    let mut fact_seg = fact_reps_ref.segment(fact_offsets[range.start]);
                    let mut local_loss = 0.0;
                    for gi in range {
                        let group = &groups[gi];
                        // Reused per dimension tuple: t_R = W¹_R·x_R + b¹.
                        // Sparse x_R gathers the active columns of W¹_R
                        // instead of multiplying through the zeros.
                        let r_rep =
                            group_seg.rep_or_detect(group_base + gi, &group.r_tuple.features);
                        let mut t_r = match r_rep {
                            Some(rep) => rep.matvec(kp, &w1_r),
                            None => gemm::matvec_with(kp, &w1_r, &group.r_tuple.features),
                        };
                        vector::axpy(1.0, &b1, &mut t_r);
                        // Per-group sum of first-layer deltas (for PG_R and its
                        // bias-free outer product with x_R).
                        let mut delta_sum = vec![0.0; nh];

                        for (fi, s_tuple) in group.s_tuples.iter().enumerate() {
                            // ---- forward, first layer (factorized) ----
                            let s_rep =
                                fact_seg.rep_or_detect(fact_offsets[gi] + fi, &s_tuple.features);
                            let mut a1 = match s_rep {
                                Some(rep) => rep.matvec(kp, &w1_s),
                                None => gemm::matvec_with(kp, &w1_s, &s_tuple.features),
                            };
                            vector::axpy(1.0, &t_r, &mut a1);
                            let mut h1 = a1.clone();
                            model.layers()[0].activation.apply_slice(&mut h1);
                            // ---- forward, remaining layers (dense) ----
                            let mut trace_layers = Vec::with_capacity(model.layers().len());
                            trace_layers.push((a1, h1));
                            for layer in &model.layers()[1..] {
                                let (a, h) =
                                    layer.forward_with(kp, &trace_layers.last().unwrap().1);
                                trace_layers.push((a, h));
                            }
                            let trace = crate::mlp::ForwardTrace {
                                layers: trace_layers,
                            };
                            // ---- backward ----
                            let y = s_tuple.target.unwrap_or(0.0);
                            let (delta1, loss) =
                                model.backward_factorized_with(kp, &trace, y, &mut local_grads);
                            local_loss += loss;
                            // PG_S: per fact tuple — scatter-add into the
                            // active columns for sparse x_S.
                            match s_rep {
                                Some(rep) => rep.ger_cols(kp, 1.0, &delta1, &mut local_w_s),
                                None => gemm::ger_with(
                                    kp,
                                    1.0,
                                    &delta1,
                                    &s_tuple.features,
                                    &mut local_w_s,
                                ),
                            }
                            vector::axpy(1.0, &delta1, &mut delta_sum);
                        }
                        // PG_R: one outer product per dimension tuple.
                        match r_rep {
                            Some(rep) => rep.ger_cols(kp, 1.0, &delta_sum, &mut local_w_r),
                            None => gemm::ger_with(
                                kp,
                                1.0,
                                &delta_sum,
                                &group.r_tuple.features,
                                &mut local_w_r,
                            ),
                        }
                    }
                    (
                        local_grads,
                        local_w_s,
                        local_w_r,
                        local_loss,
                        group_seg.into_detected(),
                        fact_seg.into_detected(),
                    )
                });
                for (
                    local_grads,
                    local_w_s,
                    local_w_r,
                    local_loss,
                    group_detected,
                    fact_detected,
                ) in parts
                {
                    for (dst, src) in grads.iter_mut().zip(local_grads.iter()) {
                        dst.merge_from(src);
                    }
                    grad_w_s.add_assign(&local_w_s);
                    grad_w_r.add_assign(&local_w_r);
                    loss_sum += local_loss;
                    group_reps.merge(group_detected);
                    fact_reps.merge(fact_detected);
                }
                group_cursor += groups.len();
                fact_cursor += groups.iter().map(|g| g.s_tuples.len()).sum::<usize>();
            }
            group_reps.finish_fill();
            fact_reps.finish_fill();

            // Assemble the first layer's weight gradient from its two blocks.
            for i in 0..nh {
                for j in 0..d_s {
                    grads[0].d_weights[(i, j)] += grad_w_s[(i, j)];
                }
                for j in 0..d_r {
                    grads[0].d_weights[(i, d_s + j)] += grad_w_r[(i, j)];
                }
            }
            model.apply_grads(&grads, config.learning_rate, n as f64);
            loss_trace.push(loss_sum / n as f64);
            notifier.notify(loss_sum / n as f64);
        }

        Ok(NnFit {
            model,
            epochs: config.epochs,
            loss_trace,
            n_tuples: n,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::materialized::MaterializedNn;
    use crate::streaming::StreamingNn;
    use fml_data::SyntheticConfig;

    fn workload(n_s: u64, n_r: u64, d_s: usize, d_r: usize) -> fml_data::Workload {
        SyntheticConfig {
            n_s,
            n_r,
            d_s,
            d_r,
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 19,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn factorized_matches_materialized_and_streaming() {
        let w = workload(300, 12, 2, 5);
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu] {
            let config = NnConfig {
                hidden: vec![7],
                epochs: 4,
                activation: act,
                ..NnConfig::default()
            };
            let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
            let s = StreamingNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
            let f = FactorizedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
            assert!(
                m.model.max_param_diff(&f.model) < 1e-9,
                "{act:?}: M vs F diff {}",
                m.model.max_param_diff(&f.model)
            );
            assert!(s.model.max_param_diff(&f.model) < 1e-9);
            for (a, b) in m.loss_trace.iter().zip(f.loss_trace.iter()) {
                assert!((a - b).abs() < 1e-9, "loss traces diverged: {a} vs {b}");
            }
        }
    }

    #[test]
    fn factorized_matches_with_two_hidden_layers() {
        let w = workload(200, 10, 3, 6);
        let config = NnConfig {
            hidden: vec![6, 4],
            epochs: 3,
            ..NnConfig::default()
        };
        let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&f.model) < 1e-9);
    }

    #[test]
    fn loss_decreases_during_training() {
        let w = workload(400, 16, 2, 4);
        let config = NnConfig {
            hidden: vec![10],
            epochs: 30,
            learning_rate: 0.1,
            ..NnConfig::default()
        };
        let f = FactorizedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            f.final_loss() < f.loss_trace[0],
            "loss did not decrease: {:?}",
            f.loss_trace
        );
    }

    #[test]
    fn factorized_reads_fewer_fields_than_materialized() {
        let w = workload(1000, 10, 2, 10);
        let config = NnConfig {
            hidden: vec![5],
            epochs: 2,
            ..NnConfig::default()
        };
        w.db.stats().reset();
        let _ = FactorizedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f_fields = w.db.stats().snapshot().fields_read;
        w.db.stats().reset();
        let _ = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let m_fields = w.db.stats().snapshot().fields_read;
        assert!(
            f_fields < m_fields,
            "factorized read {f_fields} fields, materialized {m_fields}"
        );
    }
}
