//! The squared-error loss used by the paper's backward-propagation phase:
//! `E = 1/(2N) · Σ_n (o^{(n)} − Y^{(n)})²`.

/// Mean squared error over a set of predictions (the paper's `E`).
pub fn mse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "mse: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let sum: f64 = predictions
        .iter()
        .zip(targets.iter())
        .map(|(o, y)| (o - y).powi(2))
        .sum();
    sum / (2.0 * predictions.len() as f64)
}

/// Per-example gradient of the *summed* squared error with respect to the output:
/// `∂(½(o−y)²)/∂o = o − y`.  The `1/N` factor is applied once when the accumulated
/// gradient is used for the parameter update, so that accumulation order does not
/// change the result.
#[inline]
pub fn output_gradient(prediction: f64, target: f64) -> f64 {
    prediction - target
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_values() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        // errors 1 and 3 → (1 + 9) / (2*2) = 2.5
        assert_eq!(mse(&[2.0, 0.0], &[1.0, 3.0]), 2.5);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn gradient_is_residual() {
        assert_eq!(output_gradient(2.0, 0.5), 1.5);
        assert_eq!(output_gradient(-1.0, 1.0), -2.0);
    }

    #[test]
    fn gradient_matches_finite_difference_of_mse() {
        let y = 0.7;
        let o = 1.3;
        let eps = 1e-6;
        // single-example mse = (o-y)^2 / 2, derivative = o - y
        let f = |o: f64| mse(&[o], &[y]);
        let fd = (f(o + eps) - f(o - eps)) / (2.0 * eps);
        assert!((output_gradient(o, y) - fd).abs() < 1e-6);
    }
}
