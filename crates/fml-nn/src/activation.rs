//! Activation functions and the additivity property the paper's second-layer
//! analysis hinges on.

use serde::{Deserialize, Serialize};

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `σ(a) = 1 / (1 + e^{-a})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit `max(0, a)`.
    Relu,
    /// Identity (used at the output layer for regression, and the only activation
    /// in this list that is *additive* — `f(x+y) = f(x)+f(y)` — which Section
    /// VI-A2 shows is required for exact computation sharing beyond layer 1).
    Identity,
}

impl Activation {
    /// Applies the activation.
    #[inline]
    pub fn apply(&self, a: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-a).exp()),
            Activation::Tanh => a.tanh(),
            Activation::Relu => a.max(0.0),
            Activation::Identity => a,
        }
    }

    /// Derivative with respect to the pre-activation `a`.
    #[inline]
    pub fn derivative(&self, a: f64) -> f64 {
        match self {
            Activation::Sigmoid => {
                let s = self.apply(a);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - a.tanh().powi(2),
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation elementwise in place.
    pub fn apply_slice(&self, a: &mut [f64]) {
        for v in a.iter_mut() {
            *v = self.apply(*v);
        }
    }

    /// Whether `f(x + y) = f(x) + f(y)` holds for all inputs — a solution of the
    /// Cauchy functional equation.  Only such activations admit exact reuse of
    /// partial sums beyond the first hidden layer (Section VI-A2).  `ReLU` is
    /// additive only when both terms share a sign, so it does not qualify in
    /// general.
    pub fn is_additive(&self) -> bool {
        matches!(self, Activation::Identity)
    }

    /// Whether `f(x + y) = f(x) + f(y)` holds for the *specific* pair `(x, y)` —
    /// used to demonstrate the ReLU same-sign special case the paper mentions.
    pub fn is_additive_at(&self, x: f64, y: f64) -> bool {
        (self.apply(x + y) - (self.apply(x) + self.apply(y))).abs() < 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_values_and_derivative() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(s.apply(10.0) > 0.9999);
        assert!(s.apply(-10.0) < 0.0001);
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tanh_and_relu_and_identity() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert!((Activation::Tanh.apply(0.5) - 0.5f64.tanh()).abs() < 1e-15);
        assert_eq!(Activation::Identity.apply(7.0), 7.0);
        assert_eq!(Activation::Identity.derivative(7.0), 1.0);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
            Activation::Identity,
        ] {
            for &a in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(a + eps) - act.apply(a - eps)) / (2.0 * eps);
                assert!(
                    (act.derivative(a) - fd).abs() < 1e-5,
                    "{act:?} at {a}: {} vs {}",
                    act.derivative(a),
                    fd
                );
            }
        }
    }

    #[test]
    fn only_identity_is_additive() {
        assert!(Activation::Identity.is_additive());
        assert!(!Activation::Sigmoid.is_additive());
        assert!(!Activation::Tanh.is_additive());
        assert!(!Activation::Relu.is_additive());
    }

    #[test]
    fn relu_is_additive_only_for_same_sign_terms() {
        let r = Activation::Relu;
        assert!(r.is_additive_at(1.0, 2.0)); // both positive
        assert!(r.is_additive_at(-1.0, -2.0)); // both negative (all zero)
        assert!(!r.is_additive_at(3.0, -1.0)); // mixed signs break additivity
        assert!(!Activation::Sigmoid.is_additive_at(0.5, 0.5));
        assert!(Activation::Identity.is_additive_at(3.0, -1.0));
    }

    #[test]
    fn apply_slice_applies_elementwise() {
        let mut v = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }
}
