//! Shared training configuration, result type, and the dense full-batch trainer
//! used by `M-NN` and `S-NN`.

use crate::activation::Activation;
use crate::mlp::Mlp;
use fml_linalg::exec::{ExecPolicy, FitNotifier, IoProbe};
use fml_linalg::policy::par_chunks_with_threads;
use fml_linalg::repcache::RepCache;
use fml_store::StoreResult;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Number of examples buffered per parallel batch: each batch fans out over
/// deterministic chunks whose gradient partials merge in chunk order.
pub const PAR_BATCH_EXAMPLES: usize = 1024;

/// Minimum per-batch flops below which the parallel policy stays inline.
pub const PAR_MIN_BATCH_FLOPS: usize = 1 << 22;

/// Model configuration shared by every NN training variant.
///
/// Holds only *model* concerns.  Execution knobs (kernel policy, sparse mode,
/// block size, threads, seed) live on [`fml_linalg::ExecPolicy`], which every
/// trainer takes alongside this config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Hidden layer sizes (the paper uses a single hidden layer of `n_h` units).
    pub hidden: Vec<usize>,
    /// Hidden activation function.
    pub activation: Activation,
    /// Number of training epochs (the paper uses 10).
    pub epochs: usize,
    /// Learning rate for the full-batch gradient-descent update.
    pub learning_rate: f64,
}

impl Default for NnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![50],
            activation: Activation::Sigmoid,
            epochs: 10,
            learning_rate: 0.05,
        }
    }
}

impl NnConfig {
    /// Convenience constructor fixing the hidden width `n_h`.
    pub fn with_hidden(n_h: usize) -> Self {
        Self {
            hidden: vec![n_h],
            ..Self::default()
        }
    }

    /// Returns a copy with a different epoch budget.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different activation.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }
}

/// The result of training a network.
#[derive(Debug, Clone)]
pub struct NnFit {
    /// The trained network.
    pub model: Mlp,
    /// Number of epochs performed.
    pub epochs: usize,
    /// Mean squared error after each epoch (`E` of Section VI-A3).
    pub loss_trace: Vec<f64>,
    /// Number of training tuples `N`.
    pub n_tuples: u64,
    /// Wall-clock training time (includes any join / materialization work).
    pub elapsed: Duration,
}

impl NnFit {
    /// Final training loss.
    pub fn final_loss(&self) -> f64 {
        self.loss_trace.last().copied().unwrap_or(f64::NAN)
    }
}

/// A source of `(joined features, target)` pairs that can be replayed once per
/// epoch — the supervised analogue of the GMM crate's dense pass source.
pub trait SupervisedSource {
    /// Invokes `f` once per example.
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()>;
    /// Number of examples per epoch.
    fn num_tuples(&self) -> u64;
    /// Dimensionality of the joined feature vectors.
    fn dim(&self) -> usize;
}

/// Full-batch gradient-descent training over a dense supervised source, starting
/// from the given initial network.  `M-NN` and `S-NN` share this loop.
///
/// Under a parallel [`fml_linalg::KernelPolicy`] the per-example forward/backward work is
/// buffered into batches of [`PAR_BATCH_EXAMPLES`] and fanned out over chunks;
/// each chunk accumulates into a private gradient set and the partials merge in
/// chunk order ([`crate::layer::LayerGradient::merge_from`]), so the epoch's gradient — and
/// therefore the learned model — is deterministic for a given thread count and
/// agrees with the sequential policies within rounding tolerances.
pub fn train_supervised_from(
    source: &mut dyn SupervisedSource,
    config: &NnConfig,
    exec: &ExecPolicy,
    initial: Mlp,
    io: IoProbe<'_>,
) -> StoreResult<NnFit> {
    let start = Instant::now();
    let ex = exec.resolve();
    // Kernels invoked under a parallel policy on this thread fan out to
    // exactly the resolved thread count while training runs.
    let _kernel_threads = ex.kernel_thread_scope();
    // The resolved observability mode governs instrumentation on every
    // thread this run touches (pool workers, storage scans).
    let _obs = ex.obs_scope();
    let mut notifier = FitNotifier::new(exec, io);
    let n = source.num_tuples();
    assert!(n > 0, "cannot train on an empty source");
    assert_eq!(
        initial.input_dim(),
        source.dim(),
        "initial model dimension mismatch"
    );
    let mut model = initial;
    let mut loss_trace = Vec::with_capacity(config.epochs);
    // Per-example kernels run single-threaded inside workers (kp); forward+
    // backward is ~4·|θ| flops per example, so fan out only when a batch
    // carries enough work to amortize the scoped-thread spawns.
    let kp = ex.kernel_policy.sequential();
    let par = ex.kernel_policy.is_parallel()
        && 4 * model.num_params() * PAR_BATCH_EXAMPLES >= PAR_MIN_BATCH_FLOPS;
    let workers = ex.workers(par);
    let dim = source.dim();
    // Per-example representation cache, filled lazily during the first epoch
    // (the source replays examples in a deterministic order) — sparse
    // denormalized rows run the first layer as gathers / scatter-adds, and
    // detection runs at most once per example (the shared [`RepCache`]
    // protocol).  Memory is O(total nnz) — the sparse rows' nonzeros,
    // strictly smaller than one dense copy of the dataset.
    let mut reps = RepCache::new(ex.sparse);
    for _epoch in 0..config.epochs {
        let mut grads = model.zero_grads();
        let mut loss_sum = 0.0;
        if !par {
            let mut row = 0usize;
            source.for_each(&mut |x: &[f64], y: f64| {
                loss_sum += match reps.rep_or_detect(row, x) {
                    Some(rep) => model.accumulate_sparse_example_with(kp, rep, y, &mut grads),
                    None => model.accumulate_example_with(kp, x, y, &mut grads),
                };
                row += 1;
            })?;
        } else {
            let mut xs: Vec<f64> = Vec::with_capacity(dim * PAR_BATCH_EXAMPLES);
            let mut ys: Vec<f64> = Vec::with_capacity(PAR_BATCH_EXAMPLES);
            let mut row_cursor = 0usize;
            let reps_cell = &mut reps;
            let mut flush = |xs: &[f64], ys: &[f64]| {
                let base = row_cursor;
                let reps_ref: &RepCache = reps_cell;
                let parts = par_chunks_with_threads(workers, ys.len(), 1, |range| {
                    let mut local_grads = model.zero_grads();
                    let mut seg = reps_ref.segment(base + range.start);
                    let mut local_loss = 0.0;
                    for r in range {
                        let x = &xs[r * dim..(r + 1) * dim];
                        let rep = seg.rep_or_detect(base + r, x);
                        local_loss += match rep {
                            Some(rep) => model.accumulate_sparse_example_with(
                                kp,
                                rep,
                                ys[r],
                                &mut local_grads,
                            ),
                            None => model.accumulate_example_with(kp, x, ys[r], &mut local_grads),
                        };
                    }
                    (local_grads, local_loss, seg.into_detected())
                });
                for (local_grads, local_loss, detected) in parts {
                    for (dst, src) in grads.iter_mut().zip(local_grads.iter()) {
                        dst.merge_from(src);
                    }
                    loss_sum += local_loss;
                    reps_cell.merge(detected);
                }
                row_cursor += ys.len();
            };
            source.for_each(&mut |x: &[f64], y: f64| {
                xs.extend_from_slice(x);
                ys.push(y);
                if ys.len() >= PAR_BATCH_EXAMPLES {
                    flush(&xs, &ys);
                    xs.clear();
                    ys.clear();
                }
            })?;
            if !ys.is_empty() {
                flush(&xs, &ys);
            }
        }
        reps.finish_fill();
        model.apply_grads(&grads, config.learning_rate, n as f64);
        loss_trace.push(loss_sum / n as f64);
        notifier.notify(loss_sum / n as f64);
    }
    Ok(NnFit {
        model,
        epochs: config.epochs,
        loss_trace,
        n_tuples: n,
        elapsed: start.elapsed(),
    })
}

/// Full-batch training with the default seeded initialization.
pub fn train_supervised(
    source: &mut dyn SupervisedSource,
    config: &NnConfig,
    exec: &ExecPolicy,
) -> StoreResult<NnFit> {
    let initial = Mlp::new(
        source.dim(),
        &config.hidden,
        config.activation,
        exec.resolve().seed,
    );
    train_supervised_from(source, config, exec, initial, None)
}

/// An in-memory supervised source for tests.
pub struct VecSupervisedSource {
    rows: Vec<(Vec<f64>, f64)>,
    dim: usize,
}

impl VecSupervisedSource {
    /// Creates a source over in-memory `(x, y)` pairs.
    pub fn new(rows: Vec<(Vec<f64>, f64)>) -> Self {
        let dim = rows.first().map(|(x, _)| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|(x, _)| x.len() == dim), "ragged rows");
        Self { rows, dim }
    }
}

impl SupervisedSource for VecSupervisedSource {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()> {
        for (x, y) in &self.rows {
            f(x, *y);
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.rows.len() as u64
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Vec<(Vec<f64>, f64)> {
        (0..60)
            .map(|i| {
                let x0 = (i % 6) as f64 / 6.0;
                let x1 = (i / 6) as f64 / 10.0;
                (vec![x0, x1], 2.0 * x0 - x1 + 0.5)
            })
            .collect()
    }

    #[test]
    fn defaults_match_paper_settings() {
        let c = NnConfig::default();
        assert_eq!(c.hidden, vec![50]);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.activation, Activation::Sigmoid);
    }

    #[test]
    fn builders() {
        let c = NnConfig::with_hidden(30)
            .epochs(5)
            .activation(Activation::Relu);
        assert_eq!(c.hidden, vec![30]);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.activation, Activation::Relu);
    }

    #[test]
    fn training_reduces_loss_on_learnable_data() {
        let mut source = VecSupervisedSource::new(linear_data());
        let config = NnConfig {
            hidden: vec![8],
            activation: Activation::Tanh,
            epochs: 150,
            learning_rate: 0.5,
        };
        let fit = train_supervised(&mut source, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(fit.epochs, 150);
        assert_eq!(fit.n_tuples, 60);
        assert!(
            fit.final_loss() < fit.loss_trace[0] * 0.2,
            "loss did not drop: {} -> {}",
            fit.loss_trace[0],
            fit.final_loss()
        );
    }

    #[test]
    fn loss_trace_has_one_entry_per_epoch() {
        let mut source = VecSupervisedSource::new(linear_data());
        let config = NnConfig {
            hidden: vec![4],
            epochs: 7,
            ..NnConfig::default()
        };
        let fit = train_supervised(&mut source, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(fit.loss_trace.len(), 7);
        assert!(fit.loss_trace.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_source_rejected() {
        let mut source = VecSupervisedSource::new(vec![]);
        let _ = train_supervised(&mut source, &NnConfig::default(), &ExecPolicy::new());
    }
}
