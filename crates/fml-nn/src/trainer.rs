//! Shared training configuration, result type, and the dense full-batch trainer
//! used by `M-NN` and `S-NN`.

use crate::activation::Activation;
use crate::mlp::Mlp;
use fml_linalg::policy::par_chunks;
use fml_linalg::{KernelPolicy, SparseMode, SparseRep};
use fml_store::StoreResult;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Number of examples buffered per parallel batch: each batch fans out over
/// deterministic chunks whose gradient partials merge in chunk order.
pub const PAR_BATCH_EXAMPLES: usize = 1024;

/// Minimum per-batch flops below which the parallel policy stays inline.
pub const PAR_MIN_BATCH_FLOPS: usize = 1 << 22;

/// Configuration shared by every NN training variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Hidden layer sizes (the paper uses a single hidden layer of `n_h` units).
    pub hidden: Vec<usize>,
    /// Hidden activation function.
    pub activation: Activation,
    /// Number of training epochs (the paper uses 10).
    pub epochs: usize,
    /// Learning rate for the full-batch gradient-descent update.
    pub learning_rate: f64,
    /// Seed for the (data-independent) weight initialization.
    pub seed: u64,
    /// Pages per scan block.
    pub block_pages: usize,
    /// Linear-algebra kernel policy for forward/backward passes (see
    /// [`fml_linalg::policy`]).  Variants being compared should share a policy.
    pub kernel_policy: KernelPolicy,
    /// Whether the trainers detect sparse feature blocks and run the first
    /// layer as gathers/scatter-adds ([`fml_linalg::sparse`] for one-hot,
    /// [`fml_linalg::csr`] for weighted CSR) instead of dense multiplies.
    /// `Auto` (default) engages on 0/1 blocks at ≤ ½ occupancy and on
    /// weighted-sparse blocks at ≤ ¼ occupancy; `Dense` forces the dense
    /// kernels.  The factorized trainers detect per base-relation block; the
    /// materialized/streaming trainers detect the denormalized rows.
    /// Detection is cached per tuple (at most one scan per tuple per run).
    pub sparse: SparseMode,
}

impl Default for NnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![50],
            activation: Activation::Sigmoid,
            epochs: 10,
            learning_rate: 0.05,
            seed: 7,
            block_pages: fml_store::DEFAULT_BLOCK_PAGES,
            kernel_policy: KernelPolicy::default(),
            sparse: SparseMode::default(),
        }
    }
}

impl NnConfig {
    /// Convenience constructor fixing the hidden width `n_h`.
    pub fn with_hidden(n_h: usize) -> Self {
        Self {
            hidden: vec![n_h],
            ..Self::default()
        }
    }

    /// Returns a copy with a different epoch budget.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a different activation.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Returns a copy with a different seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different kernel policy.
    pub fn policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Returns a copy with a different sparse-path mode.
    pub fn sparse_mode(mut self, sparse: SparseMode) -> Self {
        self.sparse = sparse;
        self
    }
}

/// The result of training a network.
#[derive(Debug, Clone)]
pub struct NnFit {
    /// The trained network.
    pub model: Mlp,
    /// Number of epochs performed.
    pub epochs: usize,
    /// Mean squared error after each epoch (`E` of Section VI-A3).
    pub loss_trace: Vec<f64>,
    /// Number of training tuples `N`.
    pub n_tuples: u64,
    /// Wall-clock training time (includes any join / materialization work).
    pub elapsed: Duration,
}

impl NnFit {
    /// Final training loss.
    pub fn final_loss(&self) -> f64 {
        self.loss_trace.last().copied().unwrap_or(f64::NAN)
    }
}

/// A source of `(joined features, target)` pairs that can be replayed once per
/// epoch — the supervised analogue of the GMM crate's dense pass source.
pub trait SupervisedSource {
    /// Invokes `f` once per example.
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()>;
    /// Number of examples per epoch.
    fn num_tuples(&self) -> u64;
    /// Dimensionality of the joined feature vectors.
    fn dim(&self) -> usize;
}

/// Full-batch gradient-descent training over a dense supervised source, starting
/// from the given initial network.  `M-NN` and `S-NN` share this loop.
///
/// Under a parallel [`KernelPolicy`] the per-example forward/backward work is
/// buffered into batches of [`PAR_BATCH_EXAMPLES`] and fanned out over chunks;
/// each chunk accumulates into a private gradient set and the partials merge in
/// chunk order ([`crate::layer::LayerGradient::merge_from`]), so the epoch's gradient — and
/// therefore the learned model — is deterministic for a given thread count and
/// agrees with the sequential policies within rounding tolerances.
pub fn train_supervised_from(
    source: &mut dyn SupervisedSource,
    config: &NnConfig,
    initial: Mlp,
) -> StoreResult<NnFit> {
    let start = Instant::now();
    let n = source.num_tuples();
    assert!(n > 0, "cannot train on an empty source");
    assert_eq!(
        initial.input_dim(),
        source.dim(),
        "initial model dimension mismatch"
    );
    let mut model = initial;
    let mut loss_trace = Vec::with_capacity(config.epochs);
    // Per-example kernels run single-threaded inside workers (kp); forward+
    // backward is ~4·|θ| flops per example, so fan out only when a batch
    // carries enough work to amortize the scoped-thread spawns.
    let kp = config.kernel_policy.sequential();
    let par = config.kernel_policy.is_parallel()
        && 4 * model.num_params() * PAR_BATCH_EXAMPLES >= PAR_MIN_BATCH_FLOPS;
    let dim = source.dim();
    // Per-example representation cache under `SparseMode::Auto`, filled lazily
    // during the first epoch (the source replays examples in a deterministic
    // order) — sparse denormalized rows run the first layer as gathers /
    // scatter-adds, and detection runs at most once per example.  Memory is
    // O(total nnz) — the sparse rows' nonzeros, strictly smaller than one
    // dense copy of the dataset.
    let auto_sparse = config.sparse == SparseMode::Auto;
    let mut reps: Vec<Option<SparseRep>> = Vec::new();
    let mut reps_ready = !auto_sparse;
    for _epoch in 0..config.epochs {
        let mut grads = model.zero_grads();
        let mut loss_sum = 0.0;
        if !par {
            let mut row = 0usize;
            source.for_each(&mut |x: &[f64], y: f64| {
                if !reps_ready {
                    reps.push(config.sparse.detect(x));
                }
                loss_sum += match reps.get(row).and_then(Option::as_ref) {
                    Some(rep) => model.accumulate_sparse_example_with(kp, rep, y, &mut grads),
                    None => model.accumulate_example_with(kp, x, y, &mut grads),
                };
                row += 1;
            })?;
        } else {
            let mut xs: Vec<f64> = Vec::with_capacity(dim * PAR_BATCH_EXAMPLES);
            let mut ys: Vec<f64> = Vec::with_capacity(PAR_BATCH_EXAMPLES);
            let mut row_cursor = 0usize;
            let fill = !reps_ready;
            let reps_cell = &mut reps;
            let mut flush = |xs: &[f64], ys: &[f64]| {
                let base = row_cursor;
                let reps_ref: &Vec<Option<SparseRep>> = reps_cell;
                let parts = par_chunks(true, ys.len(), 1, |range| {
                    let mut local_grads = model.zero_grads();
                    let mut local_reps: Vec<Option<SparseRep>> = Vec::new();
                    let mut local_loss = 0.0;
                    for r in range {
                        let x = &xs[r * dim..(r + 1) * dim];
                        let rep = if fill {
                            local_reps.push(config.sparse.detect(x));
                            local_reps.last().unwrap().as_ref()
                        } else {
                            reps_ref.get(base + r).and_then(Option::as_ref)
                        };
                        local_loss += match rep {
                            Some(rep) => model.accumulate_sparse_example_with(
                                kp,
                                rep,
                                ys[r],
                                &mut local_grads,
                            ),
                            None => model.accumulate_example_with(kp, x, ys[r], &mut local_grads),
                        };
                    }
                    (local_grads, local_loss, local_reps)
                });
                for (local_grads, local_loss, local_reps) in parts {
                    for (dst, src) in grads.iter_mut().zip(local_grads.iter()) {
                        dst.merge_from(src);
                    }
                    loss_sum += local_loss;
                    if fill {
                        reps_cell.extend(local_reps);
                    }
                }
                row_cursor += ys.len();
            };
            source.for_each(&mut |x: &[f64], y: f64| {
                xs.extend_from_slice(x);
                ys.push(y);
                if ys.len() >= PAR_BATCH_EXAMPLES {
                    flush(&xs, &ys);
                    xs.clear();
                    ys.clear();
                }
            })?;
            if !ys.is_empty() {
                flush(&xs, &ys);
            }
        }
        reps_ready = true;
        model.apply_grads(&grads, config.learning_rate, n as f64);
        loss_trace.push(loss_sum / n as f64);
    }
    Ok(NnFit {
        model,
        epochs: config.epochs,
        loss_trace,
        n_tuples: n,
        elapsed: start.elapsed(),
    })
}

/// Full-batch training with the default seeded initialization.
pub fn train_supervised(
    source: &mut dyn SupervisedSource,
    config: &NnConfig,
) -> StoreResult<NnFit> {
    let initial = Mlp::new(source.dim(), &config.hidden, config.activation, config.seed);
    train_supervised_from(source, config, initial)
}

/// An in-memory supervised source for tests.
pub struct VecSupervisedSource {
    rows: Vec<(Vec<f64>, f64)>,
    dim: usize,
}

impl VecSupervisedSource {
    /// Creates a source over in-memory `(x, y)` pairs.
    pub fn new(rows: Vec<(Vec<f64>, f64)>) -> Self {
        let dim = rows.first().map(|(x, _)| x.len()).unwrap_or(0);
        assert!(rows.iter().all(|(x, _)| x.len() == dim), "ragged rows");
        Self { rows, dim }
    }
}

impl SupervisedSource for VecSupervisedSource {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()> {
        for (x, y) in &self.rows {
            f(x, *y);
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.rows.len() as u64
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> Vec<(Vec<f64>, f64)> {
        (0..60)
            .map(|i| {
                let x0 = (i % 6) as f64 / 6.0;
                let x1 = (i / 6) as f64 / 10.0;
                (vec![x0, x1], 2.0 * x0 - x1 + 0.5)
            })
            .collect()
    }

    #[test]
    fn defaults_match_paper_settings() {
        let c = NnConfig::default();
        assert_eq!(c.hidden, vec![50]);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.activation, Activation::Sigmoid);
    }

    #[test]
    fn builders() {
        let c = NnConfig::with_hidden(30)
            .epochs(5)
            .activation(Activation::Relu)
            .seeded(3);
        assert_eq!(c.hidden, vec![30]);
        assert_eq!(c.epochs, 5);
        assert_eq!(c.activation, Activation::Relu);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn training_reduces_loss_on_learnable_data() {
        let mut source = VecSupervisedSource::new(linear_data());
        let config = NnConfig {
            hidden: vec![8],
            activation: Activation::Tanh,
            epochs: 150,
            learning_rate: 0.5,
            ..NnConfig::default()
        };
        let fit = train_supervised(&mut source, &config).unwrap();
        assert_eq!(fit.epochs, 150);
        assert_eq!(fit.n_tuples, 60);
        assert!(
            fit.final_loss() < fit.loss_trace[0] * 0.2,
            "loss did not drop: {} -> {}",
            fit.loss_trace[0],
            fit.final_loss()
        );
    }

    #[test]
    fn loss_trace_has_one_entry_per_epoch() {
        let mut source = VecSupervisedSource::new(linear_data());
        let config = NnConfig {
            hidden: vec![4],
            epochs: 7,
            ..NnConfig::default()
        };
        let fit = train_supervised(&mut source, &config).unwrap();
        assert_eq!(fit.loss_trace.len(), 7);
        assert!(fit.loss_trace.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_source_rejected() {
        let mut source = VecSupervisedSource::new(vec![]);
        let _ = train_supervised(&mut source, &NnConfig::default());
    }
}
