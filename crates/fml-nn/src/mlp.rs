//! The multi-layer perceptron: forward pass, back-propagation, parameter updates.

use crate::activation::Activation;
use crate::layer::{DenseLayer, LayerGradient};
use crate::loss::output_gradient;
use fml_linalg::{gemm, vector, KernelPolicy, SparseRep};
use serde::{Deserialize, Serialize};

/// A feed-forward network with dense layers.  The output layer uses the identity
/// activation (scalar regression against the fact table's target `Y`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

/// Cached per-layer `(pre_activation, activation)` pairs from a forward pass,
/// needed by back-propagation.
#[derive(Debug, Clone)]
pub struct ForwardTrace {
    /// `(a_l, h_l)` for every layer, in order.
    pub layers: Vec<(Vec<f64>, Vec<f64>)>,
}

impl ForwardTrace {
    /// Network output (last layer's activation).
    pub fn output(&self) -> f64 {
        self.layers.last().expect("at least one layer").1[0]
    }
}

impl Mlp {
    /// Builds a network with the given hidden layer sizes and hidden activation.
    /// `input_dim → hidden[0] → … → hidden[last] → 1`.
    pub fn new(input_dim: usize, hidden: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut in_dim = input_dim;
        for (i, &h) in hidden.iter().enumerate() {
            assert!(h > 0, "hidden layer sizes must be positive");
            layers.push(DenseLayer::init(
                in_dim,
                h,
                activation,
                seed.wrapping_add(i as u64),
            ));
            in_dim = h;
        }
        layers.push(DenseLayer::init(
            in_dim,
            1,
            Activation::Identity,
            seed.wrapping_add(hidden.len() as u64),
        ));
        Self { layers }
    }

    /// Builds a network from explicit layers (used by tests).
    pub fn from_layers(layers: Vec<DenseLayer>) -> Self {
        assert!(!layers.is_empty(), "network needs at least one layer");
        Self { layers }
    }

    /// The layers, input to output.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the factorized trainer's updates).
    pub fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Full forward pass, keeping per-layer caches for back-propagation.
    pub fn forward_trace(&self, x: &[f64]) -> ForwardTrace {
        self.forward_trace_with(KernelPolicy::default(), x)
    }

    /// [`Self::forward_trace`] under an explicit kernel policy.
    pub fn forward_trace_with(&self, kp: KernelPolicy, x: &[f64]) -> ForwardTrace {
        let mut layers: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let input: &[f64] = if l == 0 { x } else { &layers[l - 1].1 };
            let (a, h) = layer.forward_with(kp, input);
            layers.push((a, h));
        }
        ForwardTrace { layers }
    }

    /// Prediction for a single (joined) feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.forward_trace(x).output()
    }

    /// [`Self::predict`] under an explicit kernel policy.
    pub fn predict_with(&self, kp: KernelPolicy, x: &[f64]) -> f64 {
        self.forward_trace_with(kp, x).output()
    }

    /// Completes a forward pass from an externally assembled **first-layer
    /// pre-activation** `a¹ = W¹·x + b¹`: applies the first layer's
    /// activation, runs the remaining layers densely, and returns the output.
    ///
    /// This is the inference-side seam of the paper's factorized first layer:
    /// the factorized scorer assembles `a¹` from per-relation partial
    /// products (`W¹_S·x_S + b¹` plus one cached `W¹_{R_i}·x_{R_i}` per
    /// dimension tuple) and hands it here, so layers ≥ 2 — where the paper
    /// shows exact reuse is impossible for non-additive activations — share
    /// one code path with every other variant.
    pub fn forward_from_first_preactivation_with(&self, kp: KernelPolicy, a1: Vec<f64>) -> f64 {
        assert_eq!(
            a1.len(),
            self.layers[0].out_dim(),
            "first-layer pre-activation width mismatch"
        );
        let mut h = a1;
        self.layers[0].activation.apply_slice(&mut h);
        for layer in &self.layers[1..] {
            let (_, next) = layer.forward_with(kp, &h);
            h = next;
        }
        h[0]
    }

    /// Back-propagates one example's error into the gradient accumulators,
    /// starting from an already computed forward trace.
    ///
    /// Returns the example's squared-error contribution `½(o − y)²`.
    pub fn backward_into(
        &self,
        x: &[f64],
        trace: &ForwardTrace,
        target: f64,
        grads: &mut [LayerGradient],
    ) -> f64 {
        self.backward_into_with(KernelPolicy::default(), x, trace, target, grads)
    }

    /// [`Self::backward_into`] under an explicit kernel policy.
    pub fn backward_into_with(
        &self,
        kp: KernelPolicy,
        x: &[f64],
        trace: &ForwardTrace,
        target: f64,
        grads: &mut [LayerGradient],
    ) -> f64 {
        assert_eq!(
            grads.len(),
            self.layers.len(),
            "gradient accumulator mismatch"
        );
        let output = trace.output();
        // delta of the output layer (identity activation).
        let mut delta = vec![output_gradient(output, target)];
        for l in (0..self.layers.len()).rev() {
            let input: &[f64] = if l == 0 { x } else { &trace.layers[l - 1].1 };
            // dW_l += delta ⊗ input ; db_l += delta
            gemm::ger_with(kp, 1.0, &delta, input, &mut grads[l].d_weights);
            vector::axpy(1.0, &delta, &mut grads[l].d_bias);
            if l > 0 {
                // delta_{l-1} = (W_lᵀ · delta) ⊙ f'(a_{l-1})
                let mut prev = gemm::matvec_transposed_with(kp, &self.layers[l].weights, &delta);
                let a_prev = &trace.layers[l - 1].0;
                for (p, a) in prev.iter_mut().zip(a_prev.iter()) {
                    *p *= self.layers[l - 1].activation.derivative(*a);
                }
                delta = prev;
            }
        }
        0.5 * (output - target).powi(2)
    }

    /// Back-propagation variant used by the factorized trainers: identical to
    /// [`backward_into`](Self::backward_into) except that the **first layer's
    /// weight gradient is not touched** — the caller accumulates it block-wise
    /// from the base relations (`∂E/∂W¹ = [PG_S  PG_{R_1} … PG_{R_q}]`, Equations
    /// 28–32) — and the first layer's delta is returned instead.
    ///
    /// Returns `(δ¹, ½(o−y)²)`.
    pub fn backward_factorized(
        &self,
        trace: &ForwardTrace,
        target: f64,
        grads: &mut [LayerGradient],
    ) -> (Vec<f64>, f64) {
        self.backward_factorized_with(KernelPolicy::default(), trace, target, grads)
    }

    /// [`Self::backward_factorized`] under an explicit kernel policy.
    pub fn backward_factorized_with(
        &self,
        kp: KernelPolicy,
        trace: &ForwardTrace,
        target: f64,
        grads: &mut [LayerGradient],
    ) -> (Vec<f64>, f64) {
        assert_eq!(
            grads.len(),
            self.layers.len(),
            "gradient accumulator mismatch"
        );
        let output = trace.output();
        let mut delta = vec![output_gradient(output, target)];
        for l in (1..self.layers.len()).rev() {
            let input: &[f64] = &trace.layers[l - 1].1;
            gemm::ger_with(kp, 1.0, &delta, input, &mut grads[l].d_weights);
            vector::axpy(1.0, &delta, &mut grads[l].d_bias);
            // delta_{l-1} = (W_lᵀ · delta) ⊙ f'(a_{l-1})
            let mut prev = gemm::matvec_transposed_with(kp, &self.layers[l].weights, &delta);
            let a_prev = &trace.layers[l - 1].0;
            for (p, a) in prev.iter_mut().zip(a_prev.iter()) {
                *p *= self.layers[l - 1].activation.derivative(*a);
            }
            delta = prev;
        }
        // first layer: bias gradient only; weight gradient handled by the caller
        vector::axpy(1.0, &delta, &mut grads[0].d_bias);
        (delta, 0.5 * (output - target).powi(2))
    }

    /// Convenience: forward + backward for one example.
    pub fn accumulate_example(&self, x: &[f64], target: f64, grads: &mut [LayerGradient]) -> f64 {
        self.accumulate_example_with(KernelPolicy::default(), x, target, grads)
    }

    /// [`Self::accumulate_example`] under an explicit kernel policy — the
    /// trainers pass `config.kernel_policy.sequential()` so worker threads
    /// never re-enter the thread pool from inside a per-example kernel.
    pub fn accumulate_example_with(
        &self,
        kp: KernelPolicy,
        x: &[f64],
        target: f64,
        grads: &mut [LayerGradient],
    ) -> f64 {
        let trace = self.forward_trace_with(kp, x);
        self.backward_into_with(kp, x, &trace, target, grads)
    }

    /// [`Self::accumulate_example_with`] for a **sparse** input row: the first
    /// layer runs as a gather forward (`a¹ = W¹·x + b¹` reads only the active
    /// columns) and a column scatter-add backward (`∂E/∂W¹ += δ¹·xᵀ` writes
    /// only the active columns); layers ≥ 2 are dense as usual.  The
    /// dense-pass trainers (`M-NN` / `S-NN`) use this to honor
    /// [`fml_linalg::SparseMode::Auto`] on sparse denormalized rows.
    ///
    /// The gathers perform the dense kernels' nonzero multiplications in the
    /// same order, so the accumulated gradient matches the dense path to the
    /// usual rounding tolerances.
    pub fn accumulate_sparse_example_with(
        &self,
        kp: KernelPolicy,
        rep: &SparseRep,
        target: f64,
        grads: &mut [LayerGradient],
    ) -> f64 {
        let first = &self.layers[0];
        let mut a1 = rep.matvec(kp, &first.weights);
        vector::axpy(1.0, &first.bias, &mut a1);
        let mut h1 = a1.clone();
        first.activation.apply_slice(&mut h1);
        let mut trace_layers = Vec::with_capacity(self.layers.len());
        trace_layers.push((a1, h1));
        for layer in &self.layers[1..] {
            let (a, h) = layer.forward_with(kp, &trace_layers.last().unwrap().1);
            trace_layers.push((a, h));
        }
        let trace = ForwardTrace {
            layers: trace_layers,
        };
        let (delta1, loss) = self.backward_factorized_with(kp, &trace, target, grads);
        rep.ger_cols(kp, 1.0, &delta1, &mut grads[0].d_weights);
        loss
    }

    /// Creates zeroed gradient accumulators matching the network's layers.
    pub fn zero_grads(&self) -> Vec<LayerGradient> {
        self.layers.iter().map(LayerGradient::zeros_like).collect()
    }

    /// Applies accumulated gradients with learning rate `lr`, scaling by `1/n`.
    pub fn apply_grads(&mut self, grads: &[LayerGradient], lr: f64, n: f64) {
        assert_eq!(
            grads.len(),
            self.layers.len(),
            "gradient accumulator mismatch"
        );
        for (layer, grad) in self.layers.iter_mut().zip(grads.iter()) {
            grad.apply(layer, lr, n);
        }
    }

    /// Largest absolute parameter difference against another network — used by the
    /// equivalence tests between `M-NN`, `S-NN` and `F-NN`.
    pub fn max_param_diff(&self, other: &Mlp) -> f64 {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        self.layers
            .iter()
            .zip(other.layers.iter())
            .map(|(a, b)| a.max_param_diff(b))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use fml_linalg::Matrix;

    #[test]
    fn construction_shapes() {
        let net = Mlp::new(7, &[10, 4], Activation::Tanh, 5);
        assert_eq!(net.layers().len(), 3);
        assert_eq!(net.input_dim(), 7);
        assert_eq!(net.layers()[0].out_dim(), 10);
        assert_eq!(net.layers()[2].out_dim(), 1);
        assert_eq!(net.num_params(), 7 * 10 + 10 + 10 * 4 + 4 + 4 + 1);
    }

    #[test]
    fn forward_of_known_tiny_network() {
        // one hidden unit, identity everywhere: o = w2*(w1·x + b1) + b2
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[vec![2.0, -1.0]]),
            vec![0.5],
            Activation::Identity,
        );
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[vec![3.0]]),
            vec![1.0],
            Activation::Identity,
        );
        let net = Mlp::from_layers(vec![l1, l2]);
        // a1 = 2*1 - 1*2 + 0.5 = 0.5 ; o = 3*0.5 + 1 = 2.5
        assert!((net.predict(&[1.0, 2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences_for_all_activations() {
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu] {
            let net = Mlp::new(4, &[6, 3], act, 11);
            let x = [0.3, -1.2, 0.8, 0.1];
            let max_err = check_gradients(&net, &x, 0.7);
            assert!(max_err < 1e-5, "{act:?}: gradient check error {max_err}");
        }
    }

    #[test]
    fn full_batch_training_reduces_loss() {
        // Learn y = x0 - 2*x1 on a small grid.
        let data: Vec<(Vec<f64>, f64)> = (0..50)
            .map(|i| {
                let x0 = (i % 10) as f64 / 10.0;
                let x1 = (i / 10) as f64 / 5.0;
                (vec![x0, x1], x0 - 2.0 * x1)
            })
            .collect();
        let mut net = Mlp::new(2, &[8], Activation::Tanh, 3);
        let loss_at = |net: &Mlp| -> f64 {
            data.iter()
                .map(|(x, y)| 0.5 * (net.predict(x) - y).powi(2))
                .sum::<f64>()
                / data.len() as f64
        };
        let initial = loss_at(&net);
        for _ in 0..200 {
            let mut grads = net.zero_grads();
            for (x, y) in &data {
                net.accumulate_example(x, *y, &mut grads);
            }
            net.apply_grads(&grads, 0.5, data.len() as f64);
        }
        let fin = loss_at(&net);
        assert!(
            fin < initial * 0.1,
            "training did not reduce loss: {initial} -> {fin}"
        );
    }

    #[test]
    fn forward_from_first_preactivation_matches_dense_forward() {
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Relu] {
            let net = Mlp::new(5, &[7, 3], act, 9);
            let x = [0.4, -0.9, 0.2, 1.1, -0.3];
            let kp = KernelPolicy::Naive;
            // assemble a1 exactly as the dense forward does
            let a1 = net.layers()[0].pre_activation_with(kp, &x);
            let out = net.forward_from_first_preactivation_with(kp, a1);
            assert_eq!(out, net.predict_with(kp, &x), "{act:?}");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn forward_from_first_preactivation_rejects_wrong_width() {
        let net = Mlp::new(3, &[4], Activation::Tanh, 1);
        let _ = net.forward_from_first_preactivation_with(KernelPolicy::Naive, vec![0.0; 3]);
    }

    #[test]
    fn max_param_diff_detects_updates() {
        let a = Mlp::new(3, &[4], Activation::Sigmoid, 1);
        let mut b = a.clone();
        assert_eq!(a.max_param_diff(&b), 0.0);
        b.layers_mut()[0].bias[0] += 0.5;
        assert!((a.max_param_diff(&b) - 0.5).abs() < 1e-12);
    }
}
