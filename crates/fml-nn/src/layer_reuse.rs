//! The paper's second-layer analysis (Section VI-A2): when is it possible — and
//! when is it worthwhile — to reuse dimension-side partial results *beyond* the
//! first hidden layer?
//!
//! Two results are reproduced here:
//!
//! 1. **Exactness**: the decomposition of a second-layer unit
//!    `l_k = f(Σ_j w²_{kj} f(T1_j + T2_j) + b²_k)` into
//!    `f(Σ_j w²_{kj} f(T1_j) + T3_k)` (Equation 27) is exact **only for additive
//!    activations** (`f(x+y) = f(x)+f(y)`).  Sigmoid and tanh are not additive;
//!    ReLU is additive only when both terms share a sign.
//! 2. **Cost**: even for additive activations, computing a second-layer unit from
//!    the reused terms needs `n_h` multiplications and `n_h` additions per fact
//!    tuple *plus* another `n_h` multiplications and additions per dimension tuple
//!    to build `T3` — never fewer operations than the direct evaluation, and
//!    strictly more once the per-dimension-tuple work is charged.  The
//!    [`SecondLayerCost`] model makes this comparison explicit.

use crate::activation::Activation;

/// Operation counts for evaluating one second-layer unit over a whole epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondLayerCost {
    /// Multiplications + additions when evaluating directly (per Equation 25):
    /// `2·n_h` per fact tuple.
    pub direct_total: u64,
    /// Multiplications + additions when attempting reuse (per Equation 27):
    /// `2·n_h` per fact tuple **plus** `2·n_h` per dimension tuple for `T3`.
    pub reused_total: u64,
}

impl SecondLayerCost {
    /// Builds the cost model for `n_h` hidden units, `n_s` fact tuples and `n_r`
    /// dimension tuples.
    pub fn new(n_h: usize, n_s: u64, n_r: u64) -> Self {
        let per_tuple = 2 * n_h as u64;
        Self {
            direct_total: per_tuple * n_s,
            reused_total: per_tuple * n_s + per_tuple * n_r,
        }
    }

    /// Whether reuse is ever cheaper (the paper's answer: no).
    pub fn reuse_is_cheaper(&self) -> bool {
        self.reused_total < self.direct_total
    }

    /// Relative overhead of the reused evaluation.
    pub fn reuse_overhead(&self) -> f64 {
        self.reused_total as f64 / self.direct_total as f64
    }
}

/// Directly evaluates one second-layer unit:
/// `f(Σ_j w2_j · f(t1_j + t2_j) + b2)` (Equations 25–26), where `t1_j` is the
/// fact-side part of hidden unit `j`'s pre-activation and `t2_j` the
/// dimension-side part (bias included).
pub fn second_layer_direct(f: Activation, w2: &[f64], t1: &[f64], t2: &[f64], b2: f64) -> f64 {
    assert_eq!(w2.len(), t1.len());
    assert_eq!(w2.len(), t2.len());
    let sum: f64 = w2
        .iter()
        .zip(t1.iter().zip(t2.iter()))
        .map(|(w, (a, b))| w * f.apply(a + b))
        .sum();
    f.apply(sum + b2)
}

/// Evaluates the same unit from reused partial results (Equation 27):
/// `f(Σ_j w2_j·f(t1_j) + T3)` with `T3 = Σ_j w2_j·f(t2_j) + b2` computed once per
/// dimension tuple.  Exact only when `f` is additive.
pub fn second_layer_reused(f: Activation, w2: &[f64], t1: &[f64], t3: f64) -> f64 {
    assert_eq!(w2.len(), t1.len());
    let sum: f64 = w2.iter().zip(t1.iter()).map(|(w, a)| w * f.apply(*a)).sum();
    f.apply(sum + t3)
}

/// Computes the reusable term `T3 = Σ_j w2_j·f(t2_j) + b2` for one dimension tuple.
pub fn second_layer_t3(f: Activation, w2: &[f64], t2: &[f64], b2: f64) -> f64 {
    assert_eq!(w2.len(), t2.len());
    w2.iter()
        .zip(t2.iter())
        .map(|(w, b)| w * f.apply(*b))
        .sum::<f64>()
        + b2
}

#[cfg(test)]
mod tests {
    use super::*;

    const W2: [f64; 3] = [0.5, -1.0, 2.0];
    const T1: [f64; 3] = [0.3, 1.2, -0.4];
    const T2: [f64; 3] = [0.7, -0.2, 0.9];
    const B2: f64 = 0.25;

    #[test]
    fn reuse_is_exact_for_additive_activation() {
        let f = Activation::Identity;
        let direct = second_layer_direct(f, &W2, &T1, &T2, B2);
        let t3 = second_layer_t3(f, &W2, &T2, B2);
        let reused = second_layer_reused(f, &W2, &T1, t3);
        assert!((direct - reused).abs() < 1e-12);
    }

    #[test]
    fn reuse_is_not_exact_for_sigmoid_or_tanh() {
        for f in [Activation::Sigmoid, Activation::Tanh] {
            let direct = second_layer_direct(f, &W2, &T1, &T2, B2);
            let t3 = second_layer_t3(f, &W2, &T2, B2);
            let reused = second_layer_reused(f, &W2, &T1, t3);
            assert!(
                (direct - reused).abs() > 1e-3,
                "{f:?}: decomposition unexpectedly exact ({direct} vs {reused})"
            );
        }
    }

    #[test]
    fn relu_reuse_exact_only_when_terms_share_sign() {
        let f = Activation::Relu;
        // all-positive T1/T2: additive, so the decomposition is exact
        let t1 = [0.3, 1.2, 0.4];
        let t2 = [0.7, 0.2, 0.9];
        let direct = second_layer_direct(f, &W2, &t1, &t2, B2);
        let t3 = second_layer_t3(f, &W2, &t2, B2);
        let reused = second_layer_reused(f, &W2, &t1, t3);
        assert!((direct - reused).abs() < 1e-12);

        // mixed signs: not exact
        let t1 = [0.3, -1.2, 0.4];
        let t2 = [-0.7, 0.2, 0.9];
        let direct = second_layer_direct(f, &W2, &t1, &t2, B2);
        let t3 = second_layer_t3(f, &W2, &t2, B2);
        let reused = second_layer_reused(f, &W2, &t1, t3);
        assert!((direct - reused).abs() > 1e-6);
    }

    #[test]
    fn reuse_is_never_cheaper() {
        for (nh, ns, nr) in [
            (50usize, 1_000_000u64, 1_000u64),
            (10, 100, 100),
            (200, 10, 5),
        ] {
            let cost = SecondLayerCost::new(nh, ns, nr);
            assert!(!cost.reuse_is_cheaper(), "{nh},{ns},{nr}");
            assert!(cost.reuse_overhead() >= 1.0);
        }
    }

    #[test]
    fn overhead_grows_with_relative_dimension_table_size() {
        let small_r = SecondLayerCost::new(50, 1000, 10);
        let large_r = SecondLayerCost::new(50, 1000, 1000);
        assert!(large_r.reuse_overhead() > small_r.reuse_overhead());
    }
}
