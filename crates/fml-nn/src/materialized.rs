//! `M-NN`: materialize the join, then train the network over the denormalized
//! table (the baseline of Section VI).

use crate::mlp::Mlp;
use crate::trainer::{train_supervised_from, NnConfig, NnFit, SupervisedSource};
use fml_linalg::exec::ExecPolicy;
use fml_store::batch::BatchScan;
use fml_store::catalog::RelationHandle;
use fml_store::join::materialize_join;
use fml_store::{Database, JoinSpec, StoreError, StoreResult};
use std::time::Instant;

/// The materialized-join NN training strategy.
pub struct MaterializedNn;

impl MaterializedNn {
    /// Name of the temporary join table created for a spec.
    pub fn temp_table_name(spec: &JoinSpec) -> String {
        format!("__T_nn_{}", spec.fact)
    }

    /// Trains the network after materializing the join result.  The reported
    /// elapsed time includes the join and materialization.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &NnConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<NnFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        spec.validate(db)?;
        ensure_has_target(db, spec)?;
        let d = spec.total_features(db)?;
        let initial = Mlp::new(d, &config.hidden, config.activation, ex.seed);
        let t_name = Self::temp_table_name(spec);
        if db.contains(&t_name) {
            db.drop_relation(&t_name)?;
        }
        let table = materialize_join(db, spec, t_name, ex.block_pages)?;
        let mut source = MaterializedSupervisedSource::new(table, ex.block_pages);
        let probe = db.stats().io_probe();
        let mut fit = train_supervised_from(&mut source, config, exec, initial, Some(&probe))?;
        fit.elapsed = start.elapsed();
        Ok(fit)
    }
}

/// Validates that the fact table carries a target column.
pub fn ensure_has_target(db: &Database, spec: &JoinSpec) -> StoreResult<()> {
    let fact = spec.fact_relation(db)?;
    let guard = fact.lock();
    if !guard.schema().has_target {
        return Err(StoreError::SchemaMismatch {
            relation: guard.name().to_string(),
            detail: "NN training requires a target column Y on the fact table".to_string(),
        });
    }
    Ok(())
}

/// Supervised source scanning a materialized join table.
pub struct MaterializedSupervisedSource {
    table: RelationHandle,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl MaterializedSupervisedSource {
    /// Creates the source over a materialized table.
    pub fn new(table: RelationHandle, block_pages: usize) -> Self {
        let (dim, n) = {
            let t = table.lock();
            (t.schema().num_features, t.num_tuples())
        };
        Self {
            table,
            block_pages,
            dim,
            n,
        }
    }
}

impl SupervisedSource for MaterializedSupervisedSource {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64], f64)) -> StoreResult<()> {
        for batch in BatchScan::new(self.table.clone(), self.block_pages) {
            for tuple in batch? {
                f(&tuple.features, tuple.target.unwrap_or(0.0));
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_data::SyntheticConfig;

    #[test]
    fn trains_over_materialized_table() {
        let w = SyntheticConfig {
            n_s: 300,
            n_r: 15,
            d_s: 2,
            d_r: 3,
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 3,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![6],
            epochs: 5,
            ..NnConfig::default()
        };
        let fit = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(fit.epochs, 5);
        assert_eq!(fit.n_tuples, 300);
        assert_eq!(fit.model.input_dim(), 5);
        assert!(w.db.contains(&MaterializedNn::temp_table_name(&w.spec)));
        assert!(fit.final_loss().is_finite());
    }

    #[test]
    fn missing_target_is_rejected() {
        let w = SyntheticConfig {
            n_s: 50,
            n_r: 5,
            d_s: 2,
            d_r: 2,
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 1,
        }
        .generate()
        .unwrap();
        let err = MaterializedNn::train(&w.db, &w.spec, &NnConfig::default(), &ExecPolicy::new())
            .unwrap_err();
        assert!(matches!(err, StoreError::SchemaMismatch { .. }));
    }
}
