//! `F-NN` for multi-way joins (Section VI-B).
//!
//! With `q` dimension tables the first-layer pre-activation splits as
//! `a¹ = W¹_S·x_S + Σ_i W¹_{R_i}·x_{R_i} + b¹` (Equation 31); each per-dimension
//! partial product is computed once per dimension tuple per epoch and cached.  The
//! first-layer weight gradient splits into `q + 1` blocks
//! `[PG_S  PG_{R_1} … PG_{R_q}]` (Equation 32); each dimension block accumulates
//! the per-dimension-tuple sum of `δ¹` and performs one outer product with
//! `x_{R_i}` per dimension tuple.

use crate::materialized::ensure_has_target;
use crate::mlp::Mlp;
use crate::trainer::{NnConfig, NnFit};
use fml_linalg::exec::{ExecPolicy, FitNotifier};
use fml_linalg::repcache::KeyedRepCache;
use fml_linalg::{gemm, vector, Matrix};
use fml_store::factorized_scan::StarScan;
use fml_store::{Database, JoinSpec, StoreResult};
use std::collections::HashMap;
use std::time::Instant;

/// The factorized NN training strategy for star (multi-way) joins.
pub struct FactorizedMultiwayNn;

impl FactorizedMultiwayNn {
    /// Trains the network over a star join of `q ≥ 1` dimension tables.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &NnConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<NnFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        // Kernels invoked under a parallel policy on this thread fan out to
        // exactly the resolved thread count while training runs.
        let _kernel_threads = ex.kernel_thread_scope();
        // The resolved observability mode governs instrumentation on every
        // thread this run touches (pool workers, storage scans).
        let _obs = ex.obs_scope();
        spec.validate(db)?;
        ensure_has_target(db, spec)?;
        let sizes = spec.feature_partition(db)?;
        let d_s = sizes[0];
        let d: usize = sizes.iter().sum();
        let q = sizes.len() - 1;
        let offsets: Vec<usize> = sizes
            .iter()
            .scan(0usize, |acc, s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let n = spec.fact_relation(db)?.lock().num_tuples();
        assert!(n > 0, "cannot train on an empty source");
        let mut model = Mlp::new(d, &config.hidden, config.activation, ex.seed);
        let mut loss_trace = Vec::with_capacity(config.epochs);
        let probe = db.stats().io_probe();
        let mut notifier = FitNotifier::new(exec, Some(&probe));

        // Per-dimension detection caches, keyed by FK and hoisted out of the
        // epoch loop: dimension tuples are immutable, so detection runs at
        // most once per distinct tuple for the whole training run (the shared
        // [`KeyedRepCache`] protocol).
        let mut dim_reps: Vec<KeyedRepCache> =
            (0..q).map(|_| KeyedRepCache::new(ex.sparse)).collect();

        for _epoch in 0..config.epochs {
            let nh = model.layers()[0].out_dim();
            let w1 = &model.layers()[0].weights;
            let w1_s = w1.sub_block(0, nh, 0, d_s);
            let w1_dims: Vec<Matrix> = (0..q)
                .map(|i| w1.sub_block(0, nh, offsets[i + 1], offsets[i + 1] + sizes[i + 1]))
                .collect();
            let b1 = model.layers()[0].bias.clone();

            let mut grads = model.zero_grads();
            let mut grad_w_s = Matrix::zeros(nh, d_s);
            let mut grad_w_dims: Vec<Matrix> =
                (0..q).map(|i| Matrix::zeros(nh, sizes[i + 1])).collect();
            let mut loss_sum = 0.0;

            let kp = ex.kernel_policy.sequential();
            let scan = StarScan::new(db, spec, ex.block_pages)?;
            // Cached per dimension tuple: the partial product W¹_{R_i}·x_{R_i}
            // (a column gather of W¹_{R_i} when x_{R_i} is one-hot).
            let mut partials: Vec<HashMap<u64, Vec<f64>>> =
                (0..q).map(|_| HashMap::new()).collect();
            // Per dimension tuple: accumulated sum of first-layer deltas.
            let mut delta_sums: Vec<HashMap<u64, Vec<f64>>> =
                (0..q).map(|_| HashMap::new()).collect();

            for block in scan.blocks() {
                for fact in block? {
                    // ---- forward, first layer (factorized) ----
                    let mut a1 = gemm::matvec_with(kp, &w1_s, &fact.features);
                    vector::axpy(1.0, &b1, &mut a1);
                    for (i, fk) in fact.fks.iter().enumerate() {
                        if !partials[i].contains_key(fk) {
                            let dim_tuple = scan.cache().get(i, *fk).ok_or_else(|| {
                                fml_store::StoreError::DanglingForeignKey {
                                    relation: spec.dimensions[i].clone(),
                                    key: *fk,
                                }
                            })?;
                            // Detection persists across epochs; only the
                            // first encounter of a tuple ever scans it.
                            let rep = dim_reps[i].rep_or_detect(*fk, &dim_tuple.features);
                            let partial = match rep {
                                Some(rep) => rep.matvec(kp, &w1_dims[i]),
                                None => gemm::matvec_with(kp, &w1_dims[i], &dim_tuple.features),
                            };
                            partials[i].insert(*fk, partial);
                        }
                        vector::axpy(1.0, &partials[i][fk], &mut a1);
                    }
                    let mut h1 = a1.clone();
                    model.layers()[0].activation.apply_slice(&mut h1);
                    // ---- forward, remaining layers ----
                    let mut trace_layers = Vec::with_capacity(model.layers().len());
                    trace_layers.push((a1, h1));
                    for layer in &model.layers()[1..] {
                        let (a, h) = layer.forward_with(kp, &trace_layers.last().unwrap().1);
                        trace_layers.push((a, h));
                    }
                    let trace = crate::mlp::ForwardTrace {
                        layers: trace_layers,
                    };
                    // ---- backward ----
                    let y = fact.target.unwrap_or(0.0);
                    let (delta1, loss) = model.backward_factorized_with(kp, &trace, y, &mut grads);
                    loss_sum += loss;
                    gemm::ger_with(kp, 1.0, &delta1, &fact.features, &mut grad_w_s);
                    for (i, fk) in fact.fks.iter().enumerate() {
                        let sums = delta_sums[i].entry(*fk).or_insert_with(|| vec![0.0; nh]);
                        vector::axpy(1.0, &delta1, sums);
                    }
                }
            }

            // Dimension blocks of the first-layer gradient: one outer product
            // (a column scatter-add for one-hot tuples) per distinct
            // dimension tuple.
            for i in 0..q {
                // Sorted keys: the per-dimension delta arena is a HashMap;
                // merging its outer products in hash order would make the
                // first-layer gradient nondeterministic across runs.
                let mut sorted_keys: Vec<u64> = delta_sums[i].keys().copied().collect();
                sorted_keys.sort_unstable();
                for key in &sorted_keys {
                    let delta_sum = &delta_sums[i][key];
                    match dim_reps[i].get(*key) {
                        Some(rep) => rep.ger_cols(kp, 1.0, delta_sum, &mut grad_w_dims[i]),
                        None => {
                            let dim_tuple =
                                scan.cache().get(i, *key).expect("seen during the epoch");
                            gemm::ger_with(
                                kp,
                                1.0,
                                delta_sum,
                                &dim_tuple.features,
                                &mut grad_w_dims[i],
                            )
                        }
                    }
                }
            }

            // Assemble the first layer's weight gradient from its q+1 blocks.
            for i in 0..nh {
                for j in 0..d_s {
                    grads[0].d_weights[(i, j)] += grad_w_s[(i, j)];
                }
                for (b, gw) in grad_w_dims.iter().enumerate() {
                    for j in 0..sizes[b + 1] {
                        grads[0].d_weights[(i, offsets[b + 1] + j)] += gw[(i, j)];
                    }
                }
            }
            model.apply_grads(&grads, config.learning_rate, n as f64);
            loss_trace.push(loss_sum / n as f64);
            notifier.notify(loss_sum / n as f64);
        }

        Ok(NnFit {
            model,
            epochs: config.epochs,
            loss_trace,
            n_tuples: n,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialized::MaterializedNn;
    use crate::streaming::StreamingNn;
    use fml_data::multiway::{DimSpec, MultiwayConfig};
    use fml_data::SyntheticConfig;

    #[test]
    fn multiway_factorized_matches_materialized() {
        let w = MultiwayConfig {
            n_s: 300,
            d_s: 2,
            dims: vec![DimSpec::new(12, 3), DimSpec::new(6, 5)],
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 23,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![8],
            epochs: 4,
            ..NnConfig::default()
        };
        let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedMultiwayNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            m.model.max_param_diff(&f.model) < 1e-9,
            "M vs F diff {}",
            m.model.max_param_diff(&f.model)
        );
        assert!(s.model.max_param_diff(&f.model) < 1e-9);
    }

    #[test]
    fn multiway_three_dimensions() {
        let w = MultiwayConfig {
            n_s: 250,
            d_s: 1,
            dims: vec![DimSpec::new(8, 2), DimSpec::new(4, 3), DimSpec::new(3, 2)],
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 29,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![5],
            epochs: 3,
            ..NnConfig::default()
        };
        let m = MaterializedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedMultiwayNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&f.model) < 1e-9);
        assert_eq!(f.model.input_dim(), 8);
    }

    #[test]
    fn multiway_reduces_to_binary_when_q_is_one() {
        let w = SyntheticConfig {
            n_s: 200,
            n_r: 10,
            d_s: 2,
            d_r: 4,
            k: 2,
            noise_std: 0.5,
            with_target: true,
            seed: 31,
        }
        .generate()
        .unwrap();
        let config = NnConfig {
            hidden: vec![6],
            epochs: 3,
            ..NnConfig::default()
        };
        let binary =
            crate::FactorizedNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let multi =
            FactorizedMultiwayNn::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(binary.model.max_param_diff(&multi.model) < 1e-10);
    }
}
