//! Cross-policy integration tests: every training variant must learn the same
//! network under every kernel policy (the policies reorder floating-point
//! additions but never change the computation).

use fml_data::multiway::{DimSpec, MultiwayConfig};
use fml_data::SyntheticConfig;
use fml_linalg::{ExecPolicy, KernelPolicy};
use fml_nn::{FactorizedMultiwayNn, FactorizedNn, MaterializedNn, NnConfig, StreamingNn};

#[test]
fn policies_learn_the_same_network_binary() {
    let w = SyntheticConfig {
        n_s: 250,
        n_r: 10,
        d_s: 2,
        d_r: 5,
        k: 2,
        noise_std: 0.5,
        with_target: true,
        seed: 41,
    }
    .generate()
    .unwrap();
    let base = NnConfig {
        hidden: vec![6],
        epochs: 3,
        ..NnConfig::default()
    };
    let reference = MaterializedNn::train(
        &w.db,
        &w.spec,
        &base,
        &ExecPolicy::new().kernel_policy(KernelPolicy::Naive),
    )
    .unwrap();
    for policy in KernelPolicy::ALL {
        let exec = ExecPolicy::new().kernel_policy(policy);
        let m = MaterializedNn::train(&w.db, &w.spec, &base, &exec).unwrap();
        let s = StreamingNn::train(&w.db, &w.spec, &base, &exec).unwrap();
        let f = FactorizedNn::train(&w.db, &w.spec, &base, &exec).unwrap();
        for (label, fit) in [("M", &m), ("S", &s), ("F", &f)] {
            let diff = reference.model.max_param_diff(&fit.model);
            assert!(
                diff < 1e-8,
                "{label}-NN under {policy} diverged from naive reference: {diff}"
            );
        }
    }
}

#[test]
fn policies_learn_the_same_network_multiway() {
    let w = MultiwayConfig {
        n_s: 200,
        d_s: 2,
        dims: vec![DimSpec::new(8, 2), DimSpec::new(4, 3)],
        k: 2,
        noise_std: 0.5,
        with_target: true,
        seed: 43,
    }
    .generate()
    .unwrap();
    let base = NnConfig {
        hidden: vec![5],
        epochs: 3,
        ..NnConfig::default()
    };
    let reference = FactorizedMultiwayNn::train(
        &w.db,
        &w.spec,
        &base,
        &ExecPolicy::new().kernel_policy(KernelPolicy::Naive),
    )
    .unwrap();
    for policy in [KernelPolicy::Blocked, KernelPolicy::BlockedParallel] {
        let f = FactorizedMultiwayNn::train(
            &w.db,
            &w.spec,
            &base,
            &ExecPolicy::new().kernel_policy(policy),
        )
        .unwrap();
        let diff = reference.model.max_param_diff(&f.model);
        assert!(diff < 1e-8, "F-multiway-NN under {policy} diverged: {diff}");
    }
}

#[test]
fn parallel_fanout_engages_at_larger_networks() {
    // hidden=[128] gives ~1281 parameters, clearing both NN fan-out gates
    // (4·|θ| ≥ 4096 for the factorized group path, 4·|θ|·batch ≥ 2²² for the
    // dense batch path), so the gradient-merge machinery actually runs.
    let w = SyntheticConfig {
        n_s: 200,
        n_r: 10,
        d_s: 2,
        d_r: 5,
        k: 2,
        noise_std: 0.5,
        with_target: true,
        seed: 47,
    }
    .generate()
    .unwrap();
    let base = NnConfig {
        hidden: vec![128],
        epochs: 2,
        ..NnConfig::default()
    };
    for train in [MaterializedNn::train, FactorizedNn::train] {
        let blocked = train(
            &w.db,
            &w.spec,
            &base,
            &ExecPolicy::new().kernel_policy(KernelPolicy::Blocked),
        )
        .unwrap();
        let parallel = train(
            &w.db,
            &w.spec,
            &base,
            &ExecPolicy::new().kernel_policy(KernelPolicy::BlockedParallel),
        )
        .unwrap();
        let diff = blocked.model.max_param_diff(&parallel.model);
        assert!(diff < 1e-8, "engaged parallel NN diverged: {diff}");
    }
}
