//! Integration tests for the one-hot sparse path of the factorized NN
//! trainers: categorical datasets must engage the gather/scatter first layer
//! by default and learn the same network as the forced-dense baseline.
//!
//! The kernel-invocation counter is process-global and this binary's tests run
//! concurrently, so **every** test in this binary serializes on `LOCK` — a
//! training run in another thread would otherwise bump the counter between a
//! delta test's before/after reads.

use fml_data::multiway::{DimSpec, MultiwayConfig};
use fml_data::EmulatedDataset;
use fml_linalg::csr::csr_kernel_calls;
use fml_linalg::sparse::{detect_calls, onehot_kernel_calls, SparseMode};
use fml_linalg::ExecPolicy;
use fml_nn::{FactorizedNn, NnConfig, StreamingNn};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn walmart_sparse() -> fml_data::Workload {
    EmulatedDataset::WalmartSparse
        .generate(0.001, 13)
        .expect("generate WalmartSparse")
}

fn dense_exec() -> ExecPolicy {
    ExecPolicy::new().sparse_mode(SparseMode::Dense)
}

fn config() -> NnConfig {
    NnConfig {
        hidden: vec![8],
        epochs: 2,
        ..NnConfig::default()
    }
}

#[test]
fn categorical_dataset_hits_sparse_path_by_default_and_matches_dense() {
    let _guard = LOCK.lock().unwrap();
    let w = walmart_sparse();

    let before_dense = onehot_kernel_calls();
    let dense =
        FactorizedNn::train(&w.db, &w.spec, &config(), &dense_exec()).expect("dense training");
    assert_eq!(
        onehot_kernel_calls(),
        before_dense,
        "SparseMode::Dense must not invoke one-hot kernels"
    );

    assert_eq!(ExecPolicy::new().resolve().sparse, SparseMode::Auto);
    let before_auto = onehot_kernel_calls();
    let auto =
        FactorizedNn::train(&w.db, &w.spec, &config(), &ExecPolicy::new()).expect("auto training");
    assert!(
        onehot_kernel_calls() > before_auto,
        "Auto mode must gather/scatter the one-hot first layer"
    );

    // The gather path performs the same multiplications (by 1.0) in the same
    // order as the zero-skipped dense sums; only dead zero-terms differ, so
    // the learned parameters agree to fine precision.
    let diff = dense.model.max_param_diff(&auto.model);
    assert!(diff < 1e-9, "sparse vs dense model diff {diff}");
    for (a, b) in dense.loss_trace.iter().zip(auto.loss_trace.iter()) {
        assert!((a - b).abs() < 1e-9, "loss traces diverged: {a} vs {b}");
    }
}

#[test]
fn multiway_categorical_auto_matches_dense() {
    let _guard = LOCK.lock().unwrap();
    let w = MultiwayConfig {
        n_s: 300,
        d_s: 2,
        dims: vec![DimSpec::categorical(10, 12), DimSpec::new(5, 3)],
        k: 2,
        noise_std: 0.5,
        with_target: true,
        seed: 23,
    }
    .generate()
    .unwrap();
    let dense = FactorizedNn::train(&w.db, &w.spec, &config(), &dense_exec()).unwrap();
    let auto = FactorizedNn::train(&w.db, &w.spec, &config(), &ExecPolicy::new()).unwrap();
    let diff = dense.model.max_param_diff(&auto.model);
    assert!(diff < 1e-9, "multiway sparse vs dense diff {diff}");
}

#[test]
fn sparse_path_still_matches_materialized_oracle() {
    // End-to-end: the auto-sparse factorized trainer against the dense
    // materialized trainer (different algorithm, same model).
    let _guard = LOCK.lock().unwrap();
    let w = walmart_sparse();
    let m = fml_nn::MaterializedNn::train(&w.db, &w.spec, &config(), &ExecPolicy::new()).unwrap();
    let f = FactorizedNn::train(&w.db, &w.spec, &config(), &ExecPolicy::new()).unwrap();
    let diff = m.model.max_param_diff(&f.model);
    assert!(diff < 1e-8, "M-NN vs sparse F-NN diff {diff}");
}

#[test]
fn weighted_sparse_blocks_hit_the_csr_path_and_match_dense() {
    let _guard = LOCK.lock().unwrap();
    let w = MultiwayConfig {
        n_s: 300,
        d_s: 2,
        dims: vec![DimSpec::sparse_numeric(10, 16, 3)],
        k: 2,
        noise_std: 0.5,
        with_target: true,
        seed: 31,
    }
    .generate()
    .unwrap();

    let before_dense = csr_kernel_calls();
    let dense =
        FactorizedNn::train(&w.db, &w.spec, &config(), &dense_exec()).expect("dense training");
    assert_eq!(
        csr_kernel_calls(),
        before_dense,
        "SparseMode::Dense must not invoke CSR kernels"
    );

    let before_auto = csr_kernel_calls();
    let auto =
        FactorizedNn::train(&w.db, &w.spec, &config(), &ExecPolicy::new()).expect("auto training");
    assert!(
        csr_kernel_calls() > before_auto,
        "Auto mode must gather/scatter the weighted-sparse first layer"
    );

    // The CSR gathers perform the dense kernels' nonzero multiplications in
    // the same order, so the learned parameters agree to fine precision.
    let diff = dense.model.max_param_diff(&auto.model);
    assert!(diff < 1e-9, "CSR vs dense model diff {diff}");
    for (a, b) in dense.loss_trace.iter().zip(auto.loss_trace.iter()) {
        assert!((a - b).abs() < 1e-9, "loss traces diverged: {a} vs {b}");
    }
}

#[test]
fn detection_runs_at_most_once_per_tuple_across_epochs() {
    let _guard = LOCK.lock().unwrap();
    let w = walmart_sparse();
    let n_s = w.n_fact().unwrap();
    let n_r = w.n_dim(0).unwrap();
    let epochs = 3;
    let before = detect_calls();
    let _ = FactorizedNn::train(
        &w.db,
        &w.spec,
        &NnConfig {
            hidden: vec![6],
            epochs,
            ..NnConfig::default()
        },
        &ExecPolicy::new(),
    )
    .unwrap();
    let delta = detect_calls() - before;
    // One detection per fact tuple plus one per join group (each dimension
    // tuple heads exactly one group per scan).
    assert!(
        delta <= n_s + n_r,
        "detection ran {delta} times for {n_s} facts / {n_r} dims over {epochs} epochs \
         — per-epoch rescan regression"
    );
    assert!(delta >= n_s, "detection must cover every fact tuple once");
}

#[test]
fn streaming_honors_sparse_mode() {
    // The streaming trainer used to ignore `SparseMode` and always run dense;
    // it now routes sparse denormalized rows through the gather/scatter first
    // layer under Auto and matches the forced-dense model.
    let _guard = LOCK.lock().unwrap();
    let w = walmart_sparse();
    let cfg = config();

    let before_dense = onehot_kernel_calls() + csr_kernel_calls();
    let s_dense = StreamingNn::train(&w.db, &w.spec, &cfg, &dense_exec()).expect("dense streaming");
    assert_eq!(
        onehot_kernel_calls() + csr_kernel_calls(),
        before_dense,
        "SparseMode::Dense must keep the streaming trainer fully dense"
    );

    let before_auto = onehot_kernel_calls() + csr_kernel_calls();
    let s_auto =
        StreamingNn::train(&w.db, &w.spec, &cfg, &ExecPolicy::new()).expect("auto streaming");
    assert!(
        onehot_kernel_calls() + csr_kernel_calls() > before_auto,
        "Auto mode must route the streaming trainer's sparse rows through the sparse kernels"
    );
    let diff = s_dense.model.max_param_diff(&s_auto.model);
    assert!(diff < 1e-9, "streaming sparse vs dense diff {diff}");
    for (a, b) in s_dense.loss_trace.iter().zip(s_auto.loss_trace.iter()) {
        assert!((a - b).abs() < 1e-9, "loss traces diverged: {a} vs {b}");
    }
}
