//! `M-GMM`: the materialize-then-train baseline (Algorithm 1 as written).
//!
//! The PK/FK join is computed once and written to storage as a table `T`; every EM
//! pass then scans `T`.  This is what an analyst gets today by exporting the join
//! result and pointing a standard GMM implementation at it.  The I/O cost is
//! `|R| + |R|/BlockSize·|S|` (join) `+ |T|` (materialization) `+ 3·iter·|T|`
//! (training passes), per Section V-A.

use crate::em::{train_dense_from, DensePassSource, GmmFit};
use crate::init::GmmInit;
use crate::GmmConfig;
use fml_linalg::exec::ExecPolicy;
use fml_store::batch::BatchScan;
use fml_store::catalog::RelationHandle;
use fml_store::join::materialize_join;
use fml_store::{Database, JoinSpec, StoreResult};
use std::time::Instant;

/// The materialized-join training strategy.
pub struct MaterializedGmm;

impl MaterializedGmm {
    /// Name of the temporary join table created for a spec.
    pub fn temp_table_name(spec: &JoinSpec) -> String {
        format!("__T_gmm_{}", spec.fact)
    }

    /// Trains a GMM by materializing the join and scanning the result each pass.
    ///
    /// The reported [`GmmFit::elapsed`] includes join computation and
    /// materialization, exactly like the paper's M-GMM timings.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &GmmConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<GmmFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        spec.validate(db)?;
        let initial =
            GmmInit::new(ex.seed, config.init_spread).from_relations(db, spec, config.k)?;
        let t_name = Self::temp_table_name(spec);
        if db.contains(&t_name) {
            db.drop_relation(&t_name)?;
        }
        let table = materialize_join(db, spec, t_name, ex.block_pages)?;
        let mut source = MaterializedSource::new(table, ex.block_pages);
        let probe = db.stats().io_probe();
        let mut fit = train_dense_from(&mut source, config, exec, initial, Some(&probe))?;
        fit.elapsed = start.elapsed();
        Ok(fit)
    }

    /// Trains over an already materialized table (used when several models are
    /// built over the same join result, amortizing the materialization), starting
    /// from an explicit initial model.
    pub fn train_on_table(
        table: RelationHandle,
        config: &GmmConfig,
        exec: &ExecPolicy,
        initial: crate::GmmModel,
    ) -> StoreResult<GmmFit> {
        let mut source = MaterializedSource::new(table, exec.resolve().block_pages);
        train_dense_from(&mut source, config, exec, initial, None)
    }
}

/// Dense pass source scanning a materialized join table.
pub struct MaterializedSource {
    table: RelationHandle,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl MaterializedSource {
    /// Creates the source over a materialized table.
    pub fn new(table: RelationHandle, block_pages: usize) -> Self {
        let (dim, n) = {
            let t = table.lock();
            (t.schema().num_features, t.num_tuples())
        };
        Self {
            table,
            block_pages,
            dim,
            n,
        }
    }
}

impl DensePassSource for MaterializedSource {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64])) -> StoreResult<()> {
        for batch in BatchScan::new(self.table.clone(), self.block_pages) {
            for tuple in batch? {
                f(&tuple.features);
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_data::SyntheticConfig;

    fn workload() -> fml_data::Workload {
        SyntheticConfig {
            n_s: 400,
            n_r: 20,
            d_s: 2,
            d_r: 3,
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 3,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn trains_and_materializes_temp_table() {
        let w = workload();
        let config = GmmConfig {
            k: 2,
            max_iters: 3,
            ..GmmConfig::default()
        };
        let fit = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(fit.iterations, 3);
        assert_eq!(fit.n_tuples, 400);
        assert_eq!(fit.model.dim(), 5);
        assert!(w.db.contains(&MaterializedGmm::temp_table_name(&w.spec)));
    }

    #[test]
    fn retraining_replaces_the_temp_table() {
        let w = workload();
        let config = GmmConfig {
            k: 2,
            max_iters: 1,
            ..GmmConfig::default()
        };
        let a = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let b = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(a.model.max_param_diff(&b.model), 0.0);
    }

    #[test]
    fn train_on_table_reuses_materialization() {
        let w = workload();
        let config = GmmConfig {
            k: 2,
            max_iters: 2,
            ..GmmConfig::default()
        };
        let exec = ExecPolicy::new();
        let initial = crate::init::GmmInit::new(exec.resolve().seed, config.init_spread)
            .from_relations(&w.db, &w.spec, config.k)
            .unwrap();
        let full = MaterializedGmm::train(&w.db, &w.spec, &config, &exec).unwrap();
        let table =
            w.db.relation(&MaterializedGmm::temp_table_name(&w.spec))
                .unwrap();
        let reused = MaterializedGmm::train_on_table(table, &config, &exec, initial).unwrap();
        assert!(full.model.max_param_diff(&reused.model) < 1e-12);
    }

    #[test]
    fn source_reports_shape() {
        let w = workload();
        let t = materialize_join(&w.db, &w.spec, "T_shape", 8).unwrap();
        let src = MaterializedSource::new(t, 8);
        assert_eq!(src.dim(), 5);
        assert_eq!(src.num_tuples(), 400);
    }
}
