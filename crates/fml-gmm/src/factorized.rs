//! `F-GMM` for binary joins: EM pushed through the join (Section V-B).
//!
//! The computation of every EM quantity is decomposed along the relation boundary
//! `[d_S | d_R]` so that the parts depending only on the dimension tuple `x_R` are
//! computed **once per dimension tuple** and reused for all `n_S/n_R` matching fact
//! tuples:
//!
//! * **E-step** (Equations 7–12): the Mahalanobis form splits into
//!   `UL + UR + LL + LR`.  Per dimension tuple we compute the centered vector
//!   `PD_R`, the scalar `LR = PD_Rᵀ I_RR PD_R` and the cross-term vector
//!   `w = I_SR·PD_R + I_RSᵀ·PD_R`; each matching fact tuple then only needs the
//!   `d_S×d_S` form `UL` plus a `d_S`-length dot product with `w`.
//! * **M-step means** (Equation 13): `Σ γ x` splits into a fact part (accumulated
//!   per tuple) and a dimension part (`(Σ_group γ)·x_R`, one AXPY per group).
//! * **M-step covariances** (Equations 14–18): the scatter splits into the four
//!   blocks `UL / UR / LL / LR`; the `R`-only block is added once per group with
//!   the group's responsibility mass, and the cross blocks use the group-level
//!   weighted sum of `PD_S`.
//!
//! The decomposition is exact — no approximation — so the resulting model matches
//! `M-GMM` / `S-GMM` up to floating-point rounding.
//!
//! **Sparse detection is cached.**  Under [`SparseMode::Auto`] a single prepass
//! scans the join once and records each tuple's representation
//! ([`fml_linalg::SparseRep`]: one-hot, weighted CSR, or dense) in scan order
//! via the shared [`RepCache`] protocol; every EM iteration and pass then
//! reads the cached form instead of rescanning the immutable feature data
//! (detection runs at most **once per tuple** per training run — the
//! regression tests pin this with [`fml_linalg::sparse::detect_calls`]).

use crate::em::{converged, finalize_m_step, means_from_sums, GmmFit};
use crate::init::GmmInit;
use crate::model::Precomputed;
use crate::multiway::FactorizedMultiwayGmm;
use crate::sparse::{SparseDiagAcc, SparseFormPre, SparseScatterAcc};
use crate::GmmConfig;
use fml_linalg::block::{BlockPartition, BlockScatter};
use fml_linalg::exec::{ExecPolicy, FitNotifier};
use fml_linalg::policy::par_chunks_with_threads;
use fml_linalg::repcache::RepCache;
use fml_linalg::sparse::SparseMode;
use fml_linalg::{gemm, vector, Matrix, Vector};
use fml_store::factorized_scan::GroupScan;
use fml_store::{Database, JoinSpec, StoreResult};
use std::time::Instant;

/// Minimum per-tuple work (≈ `k·d²` flops) below which the parallel policy
/// processes join groups inline instead of fanning out.
pub(crate) const PAR_MIN_GROUP_FLOPS: usize = 1 << 12;

/// The factorized training strategy (the paper's proposal).
pub struct FactorizedGmm;

impl FactorizedGmm {
    /// Trains a GMM over the normalized relations without materializing the join
    /// and without repeating dimension-side computation.
    ///
    /// Multi-way joins are dispatched to [`FactorizedMultiwayGmm`].
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &GmmConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<GmmFit> {
        spec.validate(db)?;
        if spec.num_dimensions() > 1 {
            return FactorizedMultiwayGmm::train(db, spec, config, exec);
        }
        Self::train_binary(db, spec, config, exec)
    }

    fn train_binary(
        db: &Database,
        spec: &JoinSpec,
        config: &GmmConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<GmmFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        // Kernels invoked under a parallel policy on this thread fan out to
        // exactly the resolved thread count while training runs.
        let _kernel_threads = ex.kernel_thread_scope();
        // The resolved observability mode governs instrumentation on every
        // thread this run touches (pool workers, storage scans).
        let _obs = ex.obs_scope();
        let sizes = spec.feature_partition(db)?;
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let d_s = sizes[0];
        let n = spec.fact_relation(db)?.lock().num_tuples();
        let k = config.k;

        let mut model = GmmInit::new(ex.seed, config.init_spread).from_relations(db, spec, k)?;
        assert_eq!(model.dim(), d, "initial model dimension mismatch");
        // Created after the init scan so event 0's I/O delta covers exactly
        // the first EM iteration — the same bracketing as the M/S trainers
        // (whose notifier is created inside the shared dense driver).
        let probe = db.stats().io_probe();
        let mut notifier = FitNotifier::new(exec, Some(&probe));
        let mut log_likelihood = Vec::with_capacity(config.max_iters);
        let mut iterations = 0;
        let mut gammas: Vec<f64> = Vec::with_capacity(n as usize * k);

        // Kernels inside the per-chunk workers run single-threaded; parallelism
        // lives at the join-group level, and only engages when per-group work is
        // large enough to amortize the scoped-thread fan-out.
        let kp = ex.kernel_policy.sequential();
        let par = ex.kernel_policy.is_parallel() && k * d * d >= PAR_MIN_GROUP_FLOPS;
        let workers = ex.workers(par);
        let auto_sparse = ex.sparse == SparseMode::Auto;

        // ---- Per-tuple representation caches ----
        // Filled lazily during the first E-step pass (no extra scan — F-GMM
        // reads exactly the same pages as S-GMM).  The EM passes re-read the
        // same immutable tuples in the same deterministic scan order, so the
        // caches are indexed by group / fact scan position and reused by every
        // later pass and iteration: detection runs at most once per tuple
        // (the shared [`RepCache`] protocol).
        let mut group_reps = RepCache::new(ex.sparse);
        let mut fact_reps = RepCache::new(ex.sparse);

        for _iter in 0..config.max_iters {
            let pre = Precomputed::from_model(&model, config.ridge);
            let forms = pre.block_forms_with(&partition, kp);
            let means_split = pre.split_means(&partition);
            // Sparse decomposition constants: O(k·d²) once per iteration, so
            // the per-group hot path below runs pure gathers on the sparse path.
            let sparse_pre = if auto_sparse {
                SparseFormPre::build_all(&forms, &means_split, partition.num_blocks(), kp)
            } else {
                Vec::new()
            };
            // Fact-block diagonal constants: the per-fact UL term uses the
            // same decomposition when the fact features are sparse too
            // (e.g. WalmartSparse, where d_S = 126 is one-hot).
            let fact_pre: Vec<SparseFormPre> = if auto_sparse {
                forms
                    .iter()
                    .enumerate()
                    .map(|(c, form)| SparseFormPre::build_diag(form, 0, &means_split[c][0], kp))
                    .collect()
            } else {
                Vec::new()
            };

            // ---- Pass 1: E-step ----
            // Each scan block is a set of independent join groups: chunks of
            // groups are processed in parallel and their partial statistics are
            // merged in chunk order (fixed reduction tree).
            gammas.clear();
            let mut nk = vec![0.0; k];
            let mut ll = 0.0;
            let mut group_cursor = 0usize;
            let mut fact_cursor = 0usize;
            let scan = GroupScan::from_spec(db, spec, ex.block_pages)?;
            for block in scan {
                let groups = block?;
                // Per-group fact offsets into the (global) fact scan order, so
                // chunks can read the representation caches independently.
                let fact_offsets: Vec<usize> = groups
                    .iter()
                    .scan(fact_cursor, |acc, g| {
                        let o = *acc;
                        *acc += g.s_tuples.len();
                        Some(o)
                    })
                    .collect();
                let group_base = group_cursor;
                let (group_reps_ref, fact_reps_ref) = (&group_reps, &fact_reps);
                let parts = par_chunks_with_threads(workers, groups.len(), 1, |range| {
                    let mut local_gammas = Vec::new();
                    let mut group_seg = group_reps_ref.segment(group_base + range.start);
                    let mut fact_seg = fact_reps_ref.segment(fact_offsets[range.start]);
                    let mut local_nk = vec![0.0; k];
                    let mut local_ll = 0.0;
                    let mut log_dens = vec![0.0; k];
                    let mut pd_s = vec![0.0; d_s];
                    for gi in range {
                        let group = &groups[gi];
                        // Reused per dimension tuple: LR term and the combined
                        // cross-term vector w = I_SR·PD_R + I_RSᵀ·PD_R.  For
                        // sparse dimension tuples both come from the mean
                        // decomposition — gathers only, zero dense multiplies.
                        let r_rep =
                            group_seg.rep_or_detect(group_base + gi, &group.r_tuple.features);
                        let mut lr_terms = vec![0.0; k];
                        let mut cross_w: Vec<Vec<f64>> = Vec::with_capacity(k);
                        for c in 0..k {
                            if let Some(rep) = r_rep {
                                lr_terms[c] = sparse_pre[c][0].diag_term(&forms[c], 1, rep);
                                cross_w.push(sparse_pre[c][0].cross_vector(&forms[c], 1, rep, kp));
                                continue;
                            }
                            let pd_r: Vec<f64> = group
                                .r_tuple
                                .features
                                .iter()
                                .zip(means_split[c][1].iter())
                                .map(|(x, m)| x - m)
                                .collect();
                            lr_terms[c] = forms[c].term(1, 1, &pd_r, &pd_r);
                            let mut w = forms[c].block_times(0, 1, &pd_r);
                            let w2 = gemm::matvec_transposed_with(kp, forms[c].block(1, 0), &pd_r);
                            vector::axpy(1.0, &w2, &mut w);
                            cross_w.push(w);
                        }
                        // Per-group constant for the sparse fact path
                        // (µ_Sᵀ·w, so pd_Sᵀ·w becomes gather(w) − µᵀw per
                        // fact), computed lazily on the group's first sparse
                        // fact so fully-dense groups never pay for it.
                        let mut mu_dot_w: Option<Vec<f64>> = None;
                        for (fi, s_tuple) in group.s_tuples.iter().enumerate() {
                            let s_rep =
                                fact_seg.rep_or_detect(fact_offsets[gi] + fi, &s_tuple.features);
                            if s_rep.is_some() && mu_dot_w.is_none() {
                                mu_dot_w = Some(
                                    cross_w
                                        .iter()
                                        .enumerate()
                                        .map(|(c, w)| vector::dot(&means_split[c][0], w))
                                        .collect(),
                                );
                            }
                            for c in 0..k {
                                let quad = match s_rep {
                                    Some(rep) => {
                                        fact_pre[c].diag_term(&forms[c], 0, rep)
                                            + (rep.gather_dot(&cross_w[c])
                                                - mu_dot_w.as_ref().expect("computed above")[c])
                                            + lr_terms[c]
                                    }
                                    None => {
                                        vector::sub_into(
                                            &s_tuple.features,
                                            &means_split[c][0],
                                            &mut pd_s,
                                        );
                                        forms[c].term(0, 0, &pd_s, &pd_s)
                                            + vector::dot(&pd_s, &cross_w[c])
                                            + lr_terms[c]
                                    }
                                };
                                log_dens[c] = pre.log_norm[c] - 0.5 * quad;
                            }
                            let (resp, tuple_ll) = pre.finish_responsibilities(&mut log_dens);
                            for c in 0..k {
                                local_nk[c] += resp[c];
                            }
                            local_ll += tuple_ll;
                            local_gammas.extend_from_slice(&resp);
                        }
                    }
                    (
                        local_gammas,
                        local_nk,
                        local_ll,
                        group_seg.into_detected(),
                        fact_seg.into_detected(),
                    )
                });
                for (local_gammas, local_nk, local_ll, group_detected, fact_detected) in parts {
                    gammas.extend_from_slice(&local_gammas);
                    vector::axpy(1.0, &local_nk, &mut nk);
                    ll += local_ll;
                    group_reps.merge(group_detected);
                    fact_reps.merge(fact_detected);
                }
                group_cursor += groups.len();
                fact_cursor += groups.iter().map(|g| g.s_tuples.len()).sum::<usize>();
            }
            group_reps.finish_fill();
            fact_reps.finish_fill();

            // ---- Pass 2: M-step, means (Equation 13) ----
            let mut mean_sums = vec![Vector::zeros(d); k];
            let mut group_cursor = 0usize;
            let mut fact_cursor = 0usize;
            let scan = GroupScan::from_spec(db, spec, ex.block_pages)?;
            for block in scan {
                let groups = block?;
                // Per-group cursor offsets into the responsibility stream, so
                // chunks can be processed independently.
                let fact_offsets: Vec<usize> = groups
                    .iter()
                    .scan(fact_cursor, |acc, g| {
                        let o = *acc;
                        *acc += g.s_tuples.len();
                        Some(o)
                    })
                    .collect();
                let group_base = group_cursor;
                let parts = par_chunks_with_threads(workers, groups.len(), 1, |range| {
                    let mut local = vec![Vector::zeros(d); k];
                    for gi in range {
                        let group = &groups[gi];
                        let mut cur = fact_offsets[gi] * k;
                        let mut group_gamma = vec![0.0; k];
                        for (fi, s_tuple) in group.s_tuples.iter().enumerate() {
                            let g = &gammas[cur..cur + k];
                            match fact_reps.get(fact_offsets[gi] + fi) {
                                Some(rep) => {
                                    for c in 0..k {
                                        rep.axpy_into(g[c], &mut local[c].as_mut_slice()[..d_s]);
                                        group_gamma[c] += g[c];
                                    }
                                }
                                None => {
                                    for c in 0..k {
                                        vector::axpy(
                                            g[c],
                                            &s_tuple.features,
                                            &mut local[c].as_mut_slice()[..d_s],
                                        );
                                        group_gamma[c] += g[c];
                                    }
                                }
                            }
                            cur += k;
                        }
                        // Dimension part: one scatter-add per active index
                        // for sparse tuples, one AXPY otherwise.
                        match group_reps.get(group_base + gi) {
                            Some(rep) => {
                                for c in 0..k {
                                    rep.axpy_into(
                                        group_gamma[c],
                                        &mut local[c].as_mut_slice()[d_s..],
                                    );
                                }
                            }
                            None => {
                                for c in 0..k {
                                    vector::axpy(
                                        group_gamma[c],
                                        &group.r_tuple.features,
                                        &mut local[c].as_mut_slice()[d_s..],
                                    );
                                }
                            }
                        }
                    }
                    local
                });
                for local in parts {
                    for c in 0..k {
                        mean_sums[c].axpy(1.0, &local[c]);
                    }
                }
                group_cursor += groups.len();
                fact_cursor += groups.iter().map(|g| g.s_tuples.len()).sum::<usize>();
            }
            let new_means = means_from_sums(&nk, &mean_sums);
            let new_means_split: Vec<Vec<Vec<f64>>> = new_means
                .iter()
                .map(|m| {
                    partition
                        .split(m.as_slice())
                        .into_iter()
                        .map(|s| s.to_vec())
                        .collect()
                })
                .collect();

            // ---- Pass 3: M-step, covariances (Equations 14–18) ----
            // Chunks of groups accumulate into private BlockScatter grids which
            // are merged in chunk order (`BlockScatter::merge_from`).  Sparse
            // dimension tuples contribute through the sparse decomposition:
            // raw-x scatters per group, dense mean corrections once per pass.
            let mut scatter: Vec<BlockScatter> = (0..k)
                .map(|_| BlockScatter::new_with(partition.clone(), kp))
                .collect();
            let mut sparse_acc: Vec<SparseScatterAcc> = (0..k)
                .map(|_| SparseScatterAcc::new(d_s, d - d_s))
                .collect();
            let mut fact_acc: Vec<SparseDiagAcc> =
                (0..k).map(|_| SparseDiagAcc::new(d_s)).collect();
            let mut group_cursor = 0usize;
            let mut fact_cursor = 0usize;
            let scan = GroupScan::from_spec(db, spec, ex.block_pages)?;
            for block in scan {
                let groups = block?;
                let fact_offsets: Vec<usize> = groups
                    .iter()
                    .scan(fact_cursor, |acc, g| {
                        let o = *acc;
                        *acc += g.s_tuples.len();
                        Some(o)
                    })
                    .collect();
                let group_base = group_cursor;
                let parts = par_chunks_with_threads(workers, groups.len(), 1, |range| {
                    let mut local: Vec<BlockScatter> = (0..k)
                        .map(|_| BlockScatter::new_with(partition.clone(), kp))
                        .collect();
                    let mut local_acc: Vec<SparseScatterAcc> = (0..k)
                        .map(|_| SparseScatterAcc::new(d_s, d - d_s))
                        .collect();
                    let mut local_fact: Vec<SparseDiagAcc> =
                        (0..k).map(|_| SparseDiagAcc::new(d_s)).collect();
                    let mut pd_s = vec![0.0; d_s];
                    for gi in range {
                        let group = &groups[gi];
                        let mut cur = fact_offsets[gi] * k;
                        let mut group_gamma = vec![0.0; k];
                        let mut weighted_pd_s = vec![vec![0.0; d_s]; k];
                        // Raw sums over the group's *sparse* facts, folded
                        // into `weighted_pd_s` once per group below
                        // (Σ γ(x−µ) = Σ γx − (Σ γ)µ).
                        let mut wg_sparse = vec![vec![0.0; d_s]; k];
                        let mut wg_gamma = vec![0.0; k];
                        let mut any_sparse_fact = false;
                        for (fi, s_tuple) in group.s_tuples.iter().enumerate() {
                            let g = &gammas[cur..cur + k];
                            match fact_reps.get(fact_offsets[gi] + fi) {
                                Some(rep) => {
                                    // UL block: raw γ·x xᵀ pair scatter; the
                                    // mean corrections apply once per pass.
                                    any_sparse_fact = true;
                                    for c in 0..k {
                                        local_fact[c].record(&mut local[c], 0, g[c], rep);
                                        rep.axpy_into(g[c], &mut wg_sparse[c]);
                                        wg_gamma[c] += g[c];
                                        group_gamma[c] += g[c];
                                    }
                                }
                                None => {
                                    for c in 0..k {
                                        vector::sub_into(
                                            &s_tuple.features,
                                            &new_means_split[c][0],
                                            &mut pd_s,
                                        );
                                        // UL block: must be accumulated per fact tuple.
                                        local[c].add_outer(0, 0, g[c], &pd_s, &pd_s);
                                        vector::axpy(g[c], &pd_s, &mut weighted_pd_s[c]);
                                        group_gamma[c] += g[c];
                                    }
                                }
                            }
                            cur += k;
                        }
                        if any_sparse_fact {
                            for c in 0..k {
                                vector::axpy(1.0, &wg_sparse[c], &mut weighted_pd_s[c]);
                                vector::axpy(
                                    -wg_gamma[c],
                                    &new_means_split[c][0],
                                    &mut weighted_pd_s[c],
                                );
                            }
                        }
                        if let Some(rep) = group_reps.get(group_base + gi) {
                            // UR / LL / LR blocks: sparse raw-x scatters; the
                            // mean corrections are applied once after the pass.
                            for c in 0..k {
                                local_acc[c].record(
                                    &mut local[c],
                                    1,
                                    group_gamma[c],
                                    &weighted_pd_s[c],
                                    rep,
                                );
                            }
                            continue;
                        }
                        for c in 0..k {
                            let pd_r: Vec<f64> = group
                                .r_tuple
                                .features
                                .iter()
                                .zip(new_means_split[c][1].iter())
                                .map(|(x, m)| x - m)
                                .collect();
                            // UR / LL blocks from the group-level weighted PD_S sum.
                            local[c].add_outer(0, 1, 1.0, &weighted_pd_s[c], &pd_r);
                            local[c].add_outer(1, 0, 1.0, &pd_r, &weighted_pd_s[c]);
                            // LR block: one outer product per group, reused for
                            // the whole responsibility mass of the group.
                            local[c].add_outer(1, 1, group_gamma[c], &pd_r, &pd_r);
                        }
                    }
                    (local, local_acc, local_fact)
                });
                for (local, local_acc, local_fact) in parts {
                    for c in 0..k {
                        scatter[c].merge_from(&local[c]);
                        sparse_acc[c].merge_from(&local_acc[c]);
                        fact_acc[c].merge_from(&local_fact[c]);
                    }
                }
                group_cursor += groups.len();
                fact_cursor += groups.iter().map(|g| g.s_tuples.len()).sum::<usize>();
            }
            for (c, acc) in sparse_acc.iter().enumerate() {
                acc.finalize(&mut scatter[c], 1, &new_means_split[c][1]);
            }
            for (c, acc) in fact_acc.iter().enumerate() {
                acc.finalize(&mut scatter[c], 0, &new_means_split[c][0]);
            }
            let scatter_mats: Vec<Matrix> =
                scatter.into_iter().map(BlockScatter::into_matrix).collect();
            model = finalize_m_step(&nk, mean_sums, scatter_mats, n, config.ridge);
            iterations += 1;
            notifier.notify(ll);

            let prev = log_likelihood.last().copied();
            log_likelihood.push(ll);
            if converged(prev, ll, config.tol) {
                break;
            }
        }

        Ok(GmmFit {
            model,
            iterations,
            log_likelihood,
            n_tuples: n,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialized::MaterializedGmm;
    use crate::streaming::StreamingGmm;
    use fml_data::SyntheticConfig;

    fn workload(n_s: u64, n_r: u64, d_s: usize, d_r: usize, k: usize) -> fml_data::Workload {
        SyntheticConfig {
            n_s,
            n_r,
            d_s,
            d_r,
            k,
            noise_std: 0.8,
            with_target: false,
            seed: 21,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn factorized_matches_materialized_and_streaming() {
        let w = workload(400, 16, 2, 4, 2);
        let config = GmmConfig {
            k: 2,
            max_iters: 5,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            m.model.max_param_diff(&f.model) < 1e-7,
            "M vs F diff {}",
            m.model.max_param_diff(&f.model)
        );
        assert!(s.model.max_param_diff(&f.model) < 1e-7);
        assert_eq!(m.iterations, f.iterations);
        // log-likelihood traces agree too
        for (a, b) in m.log_likelihood.iter().zip(f.log_likelihood.iter()) {
            assert!((a - b).abs() / a.abs().max(1.0) < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn factorized_matches_on_wider_dimension_tables() {
        // Larger d_R relative to d_S is where the factorization matters most.
        let w = workload(300, 10, 3, 12, 3);
        let config = GmmConfig {
            k: 3,
            max_iters: 4,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&f.model) < 1e-7);
    }

    #[test]
    fn log_likelihood_monotone() {
        let w = workload(300, 12, 2, 5, 2);
        let config = GmmConfig {
            k: 2,
            max_iters: 8,
            ..GmmConfig::default()
        };
        let f = FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        for pair in f.log_likelihood.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-6, "{:?}", f.log_likelihood);
        }
    }

    #[test]
    fn early_stopping_applies() {
        let w = workload(200, 10, 2, 3, 2);
        let config = GmmConfig {
            k: 2,
            max_iters: 60,
            tol: 1e-3,
            ..GmmConfig::default()
        };
        let f = FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(f.iterations < 60);
        assert_eq!(f.iterations, f.log_likelihood.len());
    }

    #[test]
    fn dispatches_multiway_specs() {
        let w = fml_data::multiway::MultiwayConfig {
            n_s: 200,
            d_s: 2,
            dims: vec![
                fml_data::multiway::DimSpec::new(8, 2),
                fml_data::multiway::DimSpec::new(4, 3),
            ],
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 2,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 2,
            ..GmmConfig::default()
        };
        let f = FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(f.model.dim(), 7);
    }
}
