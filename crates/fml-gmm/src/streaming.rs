//! `S-GMM`: join on the fly, train on the denormalized stream.
//!
//! Identical EM computation to `M-GMM`, but the join result is never written to
//! storage: each pass re-joins the base relations (reading `R` in blocks and
//! probing `S`, or — for multi-way joins — caching the dimension tables and
//! scanning `S`) and feeds the joined tuples straight to the learner.  Per
//! Section V-A the I/O cost is `3·iter·(|R| + |R|/BlockSize·|S|)`, while the
//! computation cost equals `M-GMM`'s: the redundant dimension features are still
//! multiplied through the full `d×d` quadratic forms for every fact tuple.

use crate::em::{train_dense_from, DensePassSource, GmmFit};
use crate::init::GmmInit;
use crate::GmmConfig;
use fml_linalg::exec::ExecPolicy;
use fml_store::factorized_scan::{GroupScan, StarScan};
use fml_store::{Database, JoinSpec, StoreResult};
use std::time::Instant;

/// The streaming (join-on-the-fly) training strategy.
pub struct StreamingGmm;

impl StreamingGmm {
    /// Trains a GMM joining the base relations on the fly each pass.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &GmmConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<GmmFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        spec.validate(db)?;
        let initial =
            GmmInit::new(ex.seed, config.init_spread).from_relations(db, spec, config.k)?;
        let probe = db.stats().io_probe();
        let mut fit = if spec.num_dimensions() == 1 {
            let mut source = BinaryStreamSource::new(db, spec.clone(), ex.block_pages)?;
            train_dense_from(&mut source, config, exec, initial, Some(&probe))?
        } else {
            let mut source = StarStreamSource::new(db, spec.clone(), ex.block_pages)?;
            train_dense_from(&mut source, config, exec, initial, Some(&probe))?
        };
        fit.elapsed = start.elapsed();
        Ok(fit)
    }
}

/// Dense source for binary joins: reads `R` in blocks, probes `S`, denormalizes.
pub struct BinaryStreamSource<'a> {
    db: &'a Database,
    spec: JoinSpec,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl<'a> BinaryStreamSource<'a> {
    /// Creates the source (validates the spec and captures the join shape).
    pub fn new(db: &'a Database, spec: JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        let dim = spec.total_features(db)?;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        Ok(Self {
            db,
            spec,
            block_pages,
            dim,
            n,
        })
    }
}

impl DensePassSource for BinaryStreamSource<'_> {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64])) -> StoreResult<()> {
        let scan = GroupScan::from_spec(self.db, &self.spec, self.block_pages)?;
        for block in scan {
            for group in block? {
                for joined in group.denormalize() {
                    f(&joined.features);
                }
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// Dense source for multi-way joins: caches the dimension tables, scans `S`, and
/// denormalizes every fact tuple.
pub struct StarStreamSource<'a> {
    db: &'a Database,
    spec: JoinSpec,
    block_pages: usize,
    dim: usize,
    n: u64,
}

impl<'a> StarStreamSource<'a> {
    /// Creates the source (validates the spec and captures the join shape).
    pub fn new(db: &'a Database, spec: JoinSpec, block_pages: usize) -> StoreResult<Self> {
        spec.validate(db)?;
        let dim = spec.total_features(db)?;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        Ok(Self {
            db,
            spec,
            block_pages,
            dim,
            n,
        })
    }
}

impl DensePassSource for StarStreamSource<'_> {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64])) -> StoreResult<()> {
        let scan = StarScan::new(self.db, &self.spec, self.block_pages)?;
        for block in scan.blocks() {
            for fact in block? {
                let joined = scan.denormalize(&fact)?;
                f(&joined.features);
            }
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialized::MaterializedGmm;
    use fml_data::multiway::{DimSpec, MultiwayConfig};
    use fml_data::SyntheticConfig;

    #[test]
    fn streaming_matches_materialized_binary() {
        let w = SyntheticConfig {
            n_s: 300,
            n_r: 15,
            d_s: 2,
            d_r: 3,
            k: 2,
            noise_std: 0.6,
            with_target: false,
            seed: 11,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 4,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            m.model.max_param_diff(&s.model) < 1e-8,
            "M-GMM and S-GMM diverged: {}",
            m.model.max_param_diff(&s.model)
        );
        assert_eq!(m.iterations, s.iterations);
    }

    #[test]
    fn streaming_handles_multiway_joins() {
        let w = MultiwayConfig {
            n_s: 300,
            d_s: 2,
            dims: vec![DimSpec::new(10, 2), DimSpec::new(5, 3)],
            k: 2,
            noise_std: 0.6,
            with_target: false,
            seed: 4,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 3,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&s.model) < 1e-8);
        assert_eq!(s.model.dim(), 7);
    }

    #[test]
    fn source_shapes() {
        let w = SyntheticConfig {
            n_s: 100,
            n_r: 10,
            d_s: 2,
            d_r: 3,
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 1,
        }
        .generate()
        .unwrap();
        let src = BinaryStreamSource::new(&w.db, w.spec.clone(), 8).unwrap();
        assert_eq!(src.dim(), 5);
        assert_eq!(src.num_tuples(), 100);
    }
}
