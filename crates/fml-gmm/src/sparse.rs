//! Sparse-path machinery shared by the factorized binary and multi-way GMM
//! trainers, generalized over both sparse representations ([`SparseRep`]):
//! one-hot index sets and weighted CSR rows.
//!
//! The EM quantities the factorized trainers compute per dimension tuple all
//! involve the **centered** vector `PD = x − µ`, which is dense even when `x`
//! is sparse.  The trick is to expand around the mean once per component and
//! iteration, leaving only gathers/scatters on `x` itself in the per-group hot
//! path:
//!
//! * quadratic term (E-step `LR` / diagonal terms):
//!   `(x−µ)ᵀ A (x−µ) = xᵀAx − Σ_i x_i·((A+Aᵀ)µ)_i + µᵀAµ`
//!   (for one-hot `x` the raw form degenerates to `Σ_{i,j∈x} A[i][j]`)
//! * fact-side cross vector (E-step `w`):
//!   `(A₀ᵦ + Aᵦ₀ᵀ)(x−µ) = A₀ᵦ·x + Aᵦ₀ᵀ·x − (A₀ᵦ + Aᵦ₀ᵀ)µ`
//! * scatter blocks (M-step, summed over groups `g` with weight `γ_g`):
//!   `Σ_g γ_g (x_g−µ)(x_g−µ)ᵀ = Σ_g γ_g x_g x_gᵀ − (Σ_g γ_g x_g)µᵀ − µ(Σ_g γ_g x_g)ᵀ + (Σ_g γ_g)µµᵀ`
//!   `Σ_g w_g (x_g−µ)ᵀ      = Σ_g w_g x_gᵀ − (Σ_g w_g)µᵀ`
//!
//! [`SparseFormPre`] holds the `O(d²)` per-component constants (built **once
//! per iteration**, not per group); [`SparseScatterAcc`] accumulates the
//! `x`-only scatter sums sparsely and applies the dense mean corrections
//! **once per pass** in [`finalize`](SparseScatterAcc::finalize).  The
//! decomposition is exact in real arithmetic; in floating point it regroups
//! additions, so sparse-path models agree with the dense path within the same
//! rounding tolerances the cross-variant equivalence tests already use.

use fml_linalg::block::{BlockQuadraticForm, BlockScatter};
use fml_linalg::sparse::SparseRep;
use fml_linalg::{gemm, vector, KernelPolicy, Matrix};

/// Per-component, per-dimension-block constants for the sparse decomposition
/// of the centered E-step quantities.  `block` is the partition index of the
/// dimension block (`≥ 1`); block `0` is the fact side.
///
/// Public because the serving layer (`fml-serve`) evaluates the **same**
/// mean-decomposition quadratic forms at inference time: factorized batch
/// scoring reuses these constants per dimension tuple exactly as the
/// factorized trainers do per EM iteration.
pub struct SparseFormPre {
    /// `(A_bb + A_bbᵀ) · µ_b`.
    a_mu_sum: Vec<f64>,
    /// `µ_bᵀ A_bb µ_b`.
    mu_a_mu: f64,
    /// `A_0b·µ_b + A_b0ᵀ·µ_b` — the mean part of the fact-side cross vector.
    cross_mu: Vec<f64>,
}

impl SparseFormPre {
    /// Builds the constants for one component (`form` is its partitioned
    /// `Σ⁻¹`) and one dimension block, under the given sequential policy.
    pub fn build(form: &BlockQuadraticForm, block: usize, mu_b: &[f64], kp: KernelPolicy) -> Self {
        let mut pre = Self::build_diag(form, block, mu_b, kp);
        let mut cross_mu = gemm::matvec_with(kp, form.block(0, block), mu_b);
        let w2 = gemm::matvec_transposed_with(kp, form.block(block, 0), mu_b);
        vector::axpy(1.0, &w2, &mut cross_mu);
        pre.cross_mu = cross_mu;
        pre
    }

    /// Diagonal-only constants for any block — including the **fact block**
    /// (`block == 0`, which has no fact-side cross vector; only
    /// [`diag_term`](Self::diag_term) is valid on the result).
    pub fn build_diag(
        form: &BlockQuadraticForm,
        block: usize,
        mu_b: &[f64],
        kp: KernelPolicy,
    ) -> Self {
        Self::build_flat(form.block(block, block), mu_b, kp)
    }

    /// Diagonal constants computed directly from a flat (unpartitioned)
    /// matrix — the dense-pass trainers' "block" is the whole feature space,
    /// so `M-GMM`/`S-GMM` share this exact expansion with the factorized
    /// trainers (pair it with [`quad_flat`](Self::quad_flat)).
    ///
    /// `(A + Aᵀ)·µ` is formed from two GEMVs rather than `2·(A·µ)` on
    /// purpose: the expansion is then exact for *any* square `A`, without
    /// assuming the Cholesky-derived inverse is bitwise symmetric.
    pub fn build_flat(a: &Matrix, mu: &[f64], kp: KernelPolicy) -> Self {
        let mut a_mu_sum = gemm::matvec_with(kp, a, mu);
        let at_mu = gemm::matvec_transposed_with(kp, a, mu);
        vector::axpy(1.0, &at_mu, &mut a_mu_sum);
        let mu_a_mu = gemm::quadratic_form_with(kp, mu, a, mu);
        Self {
            a_mu_sum,
            mu_a_mu,
            cross_mu: Vec::new(),
        }
    }

    /// Builds the constants for every component and every dimension block:
    /// `result[c][b-1]` serves component `c`, partition block `b`.
    pub fn build_all(
        forms: &[BlockQuadraticForm],
        means_split: &[Vec<Vec<f64>>],
        num_blocks: usize,
        kp: KernelPolicy,
    ) -> Vec<Vec<SparseFormPre>> {
        forms
            .iter()
            .enumerate()
            .map(|(c, form)| {
                (1..num_blocks)
                    .map(|b| SparseFormPre::build(form, b, &means_split[c][b], kp))
                    .collect()
            })
            .collect()
    }

    /// `(x−µ)ᵀ A_bb (x−µ)` for sparse `x` — `nnz²` loads/multiply-adds plus
    /// one gather.
    pub fn diag_term(&self, form: &BlockQuadraticForm, block: usize, rep: &SparseRep) -> f64 {
        self.quad_flat(form.block(block, block), rep)
    }

    /// `(x−µ)ᵀ A (x−µ)` against a flat matrix (see [`Self::build_flat`]).
    pub fn quad_flat(&self, a: &Matrix, rep: &SparseRep) -> f64 {
        rep.quadratic_form_pair(a) - rep.gather_dot(&self.a_mu_sum) + self.mu_a_mu
    }

    /// The fact-side cross vector `A_0b·(x−µ) + A_b0ᵀ·(x−µ)` for sparse `x` —
    /// `nnz` column/row gathers plus one dense AXPY of length `d_S`.
    pub fn cross_vector(
        &self,
        form: &BlockQuadraticForm,
        block: usize,
        rep: &SparseRep,
        kp: KernelPolicy,
    ) -> Vec<f64> {
        let mut w = rep.matvec(kp, form.block(0, block));
        let w2 = rep.matvec_transposed(kp, form.block(block, 0));
        vector::axpy(1.0, &w2, &mut w);
        vector::axpy(-1.0, &self.cross_mu, &mut w);
        w
    }
}

/// Sparse accumulator for one component's dimension-side scatter blocks: the
/// per-group contributions touch only active indices; the dense mean
/// corrections are deferred to [`finalize`](Self::finalize), applied once per
/// pass instead of once per group.
///
/// Mergeable in chunk order like [`BlockScatter`] so the parallel group fan-out
/// keeps its fixed reduction tree.
#[derive(Debug, Clone)]
pub struct SparseScatterAcc {
    /// `Σ_g γ_g x_g` over the sparse groups (dimension-block width).
    gx: Vec<f64>,
    /// `Σ_g w_g` where `w_g = Σ_{facts in g} γ PD_S` (fact-block width).
    w_total: Vec<f64>,
    /// `Σ_g γ_g`.
    gamma_total: f64,
    /// Whether any group was recorded (skips the zero-valued corrections).
    touched: bool,
}

impl SparseScatterAcc {
    /// Creates a zeroed accumulator for fact width `d_s` and dimension-block
    /// width `d_b`.
    pub fn new(d_s: usize, d_b: usize) -> Self {
        Self {
            gx: vec![0.0; d_b],
            w_total: vec![0.0; d_s],
            gamma_total: 0.0,
            touched: false,
        }
    }

    /// Records one join group whose dimension tuple is sparse with
    /// representation `rep`: scatters the raw-`x` parts of the `(0,b)`,
    /// `(b,0)` and `(b,b)` blocks into `scatter` and accumulates the
    /// correction sums.
    pub fn record(
        &mut self,
        scatter: &mut BlockScatter,
        block: usize,
        group_gamma: f64,
        weighted_pd_s: &[f64],
        rep: &SparseRep,
    ) {
        let bv = rep.as_block_vec();
        scatter.add_outer_rep(
            0,
            block,
            1.0,
            fml_linalg::BlockVec::Dense(weighted_pd_s),
            bv,
        );
        scatter.add_outer_rep(
            block,
            0,
            1.0,
            bv,
            fml_linalg::BlockVec::Dense(weighted_pd_s),
        );
        scatter.add_outer_rep(block, block, group_gamma, bv, bv);
        rep.axpy_into(group_gamma, &mut self.gx);
        vector::axpy(1.0, weighted_pd_s, &mut self.w_total);
        self.gamma_total += group_gamma;
        self.touched = true;
    }

    /// Merges another accumulator (parallel chunk partials, chunk order).
    pub fn merge_from(&mut self, other: &SparseScatterAcc) {
        if !other.touched {
            return;
        }
        vector::axpy(1.0, &other.gx, &mut self.gx);
        vector::axpy(1.0, &other.w_total, &mut self.w_total);
        self.gamma_total += other.gamma_total;
        self.touched = true;
    }

    /// Applies the dense mean corrections for this pass:
    /// `−(Σw)µᵀ` / `−µ(Σw)ᵀ` on the cross blocks and
    /// `−(Σγx)µᵀ − µ(Σγx)ᵀ + (Σγ)µµᵀ` on the diagonal block.
    pub fn finalize(&self, scatter: &mut BlockScatter, block: usize, mu_b: &[f64]) {
        if !self.touched {
            return;
        }
        scatter.add_outer(0, block, -1.0, &self.w_total, mu_b);
        scatter.add_outer(block, 0, -1.0, mu_b, &self.w_total);
        scatter.add_outer(block, block, -1.0, &self.gx, mu_b);
        scatter.add_outer(block, block, -1.0, mu_b, &self.gx);
        scatter.add_outer(block, block, self.gamma_total, mu_b, mu_b);
    }
}

/// Sparse accumulator for a block's **diagonal** scatter contributions only —
/// used for the fact block, whose per-tuple term
/// `Σ_t γ_t (x_t−µ)(x_t−µ)ᵀ` decomposes exactly like the dimension diagonal:
/// raw `x xᵀ` pair scatters per tuple, mean corrections once per pass.
#[derive(Debug, Clone)]
pub struct SparseDiagAcc {
    /// `Σ_t γ_t x_t` over the sparse tuples.
    gx: Vec<f64>,
    /// `Σ_t γ_t`.
    gamma_total: f64,
    touched: bool,
}

impl SparseDiagAcc {
    /// Creates a zeroed accumulator for a block of width `d_b`.
    pub fn new(d_b: usize) -> Self {
        Self {
            gx: vec![0.0; d_b],
            gamma_total: 0.0,
            touched: false,
        }
    }

    /// Records one sparse tuple with weight `gamma`: scatters the raw
    /// `γ·x xᵀ` into block `(block, block)` and accumulates the corrections.
    pub fn record(
        &mut self,
        scatter: &mut BlockScatter,
        block: usize,
        gamma: f64,
        rep: &SparseRep,
    ) {
        let bv = rep.as_block_vec();
        scatter.add_outer_rep(block, block, gamma, bv, bv);
        rep.axpy_into(gamma, &mut self.gx);
        self.gamma_total += gamma;
        self.touched = true;
    }

    /// Merges another accumulator (parallel chunk partials, chunk order).
    pub fn merge_from(&mut self, other: &SparseDiagAcc) {
        if !other.touched {
            return;
        }
        vector::axpy(1.0, &other.gx, &mut self.gx);
        self.gamma_total += other.gamma_total;
        self.touched = true;
    }

    /// Applies `−(Σγx)µᵀ − µ(Σγx)ᵀ + (Σγ)µµᵀ` on the diagonal block.
    pub fn finalize(&self, scatter: &mut BlockScatter, block: usize, mu_b: &[f64]) {
        if !self.touched {
            return;
        }
        scatter.add_outer(block, block, -1.0, &self.gx, mu_b);
        scatter.add_outer(block, block, -1.0, mu_b, &self.gx);
        scatter.add_outer(block, block, self.gamma_total, mu_b, mu_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fml_linalg::block::BlockPartition;
    use fml_linalg::Matrix;

    fn pseudo(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut rng = fml_linalg::testutil::TestRng::new(salt);
        Matrix::from_vec(rows, cols, rng.vec_in(rows * cols, -1.0, 1.0))
    }

    fn densify(rep: &SparseRep, width: usize) -> Vec<f64> {
        let mut v = vec![0.0; width];
        match rep {
            SparseRep::OneHot(idx) => {
                for &i in idx {
                    v[i as usize] = 1.0;
                }
            }
            SparseRep::Csr { idx, vals } => {
                for (&i, &w) in idx.iter().zip(vals.iter()) {
                    v[i as usize] = w;
                }
            }
        }
        v
    }

    fn onehot(idx: &[u32]) -> SparseRep {
        SparseRep::OneHot(idx.to_vec())
    }

    fn csr(idx: &[u32], vals: &[f64]) -> SparseRep {
        SparseRep::Csr {
            idx: idx.to_vec(),
            vals: vals.to_vec(),
        }
    }

    fn symmetrize(raw: &Matrix) -> Matrix {
        let mut a = raw.clone();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                a[(i, j)] = 0.5 * (raw[(i, j)] + raw[(j, i)]);
            }
        }
        a
    }

    #[test]
    fn sparse_decomposition_matches_dense_centered_terms() {
        let (d_s, d_r) = (3usize, 8usize);
        let p = BlockPartition::binary(d_s, d_r);
        let a = symmetrize(&pseudo(d_s + d_r, d_s + d_r, 1));
        let form = BlockQuadraticForm::new_with(p, &a, KernelPolicy::Naive);
        let mu: Vec<f64> = fml_linalg::testutil::TestRng::new(2).vec_in(d_r, -0.5, 0.5);
        let pre = SparseFormPre::build(&form, 1, &mu, KernelPolicy::Naive);

        for rep in [
            onehot(&[1, 4, 6]),
            csr(&[0, 3, 7], &[1.5, -0.75, 2.25]),
            csr(&[2], &[-3.0]),
            csr(&[], &[]),
        ] {
            let x = densify(&rep, d_r);
            let pd: Vec<f64> = x.iter().zip(mu.iter()).map(|(a, b)| a - b).collect();

            // diagonal quadratic term
            let dense = form.term(1, 1, &pd, &pd);
            let sparse_val = pre.diag_term(&form, 1, &rep);
            assert!(
                (dense - sparse_val).abs() < 1e-12,
                "{rep:?}: {dense} vs {sparse_val}"
            );

            // fact-side cross vector
            let mut w_dense = gemm::matvec_with(KernelPolicy::Naive, form.block(0, 1), &pd);
            let w2 = gemm::matvec_transposed_with(KernelPolicy::Naive, form.block(1, 0), &pd);
            vector::axpy(1.0, &w2, &mut w_dense);
            let w_sparse = pre.cross_vector(&form, 1, &rep, KernelPolicy::Naive);
            for (a, b) in w_dense.iter().zip(w_sparse.iter()) {
                assert!((a - b).abs() < 1e-12, "{rep:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn scatter_acc_matches_dense_centered_outer_products() {
        let (d_s, d_r) = (2usize, 8usize);
        let p = BlockPartition::binary(d_s, d_r);
        let mu: Vec<f64> = fml_linalg::testutil::TestRng::new(7).vec_in(d_r, -0.5, 0.5);
        let groups: Vec<(f64, Vec<f64>, SparseRep)> = vec![
            (0.8, vec![0.3, -0.2], onehot(&[0, 3])),
            (1.7, vec![-1.0, 0.4], csr(&[2, 5], &[2.0, -0.5])),
            (0.0, vec![0.5, 0.5], csr(&[1], &[1.25])),
            (0.6, vec![0.1, 0.9], csr(&[], &[])),
        ];

        let mut dense = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
        for (g, w, rep) in &groups {
            let x = densify(rep, d_r);
            let pd: Vec<f64> = x.iter().zip(mu.iter()).map(|(a, b)| a - b).collect();
            dense.add_outer(0, 1, 1.0, w, &pd);
            dense.add_outer(1, 0, 1.0, &pd, w);
            dense.add_outer(1, 1, *g, &pd, &pd);
        }

        let mut sparse_sc = BlockScatter::new_with(p, KernelPolicy::Naive);
        let mut acc = SparseScatterAcc::new(d_s, d_r);
        for (g, w, rep) in &groups {
            acc.record(&mut sparse_sc, 1, *g, w, rep);
        }
        acc.finalize(&mut sparse_sc, 1, &mu);

        let diff = dense.matrix().max_abs_diff(sparse_sc.matrix());
        assert!(diff < 1e-12, "scatter decomposition diverged: {diff}");
    }

    #[test]
    fn scatter_acc_merge_preserves_totals() {
        let (d_s, d_r) = (1usize, 4usize);
        let p = BlockPartition::binary(d_s, d_r);
        let mu = vec![0.1, 0.2, 0.3, -0.1];

        let mut whole_sc = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
        let mut whole = SparseScatterAcc::new(d_s, d_r);
        whole.record(&mut whole_sc, 1, 0.5, &[1.0], &onehot(&[0]));
        whole.record(&mut whole_sc, 1, 1.5, &[-2.0], &csr(&[2], &[0.75]));
        whole.finalize(&mut whole_sc, 1, &mu);

        let mut sc_a = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
        let mut a = SparseScatterAcc::new(d_s, d_r);
        a.record(&mut sc_a, 1, 0.5, &[1.0], &onehot(&[0]));
        let mut sc_b = BlockScatter::new_with(p, KernelPolicy::Naive);
        let mut b = SparseScatterAcc::new(d_s, d_r);
        b.record(&mut sc_b, 1, 1.5, &[-2.0], &csr(&[2], &[0.75]));
        sc_a.merge_from(&sc_b);
        a.merge_from(&b);
        a.finalize(&mut sc_a, 1, &mu);

        assert!(whole_sc.matrix().max_abs_diff(sc_a.matrix()) < 1e-12);
    }

    #[test]
    fn fact_block_decomposition_matches_dense_centered_terms() {
        let (d_s, d_r) = (8usize, 3usize);
        let p = BlockPartition::binary(d_s, d_r);
        let a = symmetrize(&pseudo(d_s + d_r, d_s + d_r, 9));
        let form = BlockQuadraticForm::new_with(p.clone(), &a, KernelPolicy::Naive);
        let mu: Vec<f64> = fml_linalg::testutil::TestRng::new(10).vec_in(d_s, -0.5, 0.5);
        let pre = SparseFormPre::build_diag(&form, 0, &mu, KernelPolicy::Naive);

        let tuples: Vec<(f64, SparseRep)> = vec![
            (0.4, onehot(&[0, 3])),
            (1.1, csr(&[2, 4], &[1.25, -2.0])),
            (0.7, csr(&[1], &[0.5])),
        ];

        // E-step diagonal term per tuple
        for (_, rep) in &tuples {
            let x = densify(rep, d_s);
            let pd: Vec<f64> = x.iter().zip(mu.iter()).map(|(a, b)| a - b).collect();
            let dense = form.term(0, 0, &pd, &pd);
            let sparse_val = pre.diag_term(&form, 0, rep);
            assert!(
                (dense - sparse_val).abs() < 1e-12,
                "{rep:?}: {dense} vs {sparse_val}"
            );
        }

        // M-step diagonal scatter with deferred corrections
        let mut dense_sc = BlockScatter::new_with(p.clone(), KernelPolicy::Naive);
        for (g, rep) in &tuples {
            let x = densify(rep, d_s);
            let pd: Vec<f64> = x.iter().zip(mu.iter()).map(|(a, b)| a - b).collect();
            dense_sc.add_outer(0, 0, *g, &pd, &pd);
        }
        let mut sparse_sc = BlockScatter::new_with(p, KernelPolicy::Naive);
        let mut acc = SparseDiagAcc::new(d_s);
        for (g, rep) in &tuples {
            acc.record(&mut sparse_sc, 0, *g, rep);
        }
        acc.finalize(&mut sparse_sc, 0, &mu);
        let diff = dense_sc.matrix().max_abs_diff(sparse_sc.matrix());
        assert!(diff < 1e-12, "fact diagonal decomposition diverged: {diff}");
    }

    #[test]
    fn untouched_acc_finalize_is_a_noop() {
        let p = BlockPartition::binary(1, 2);
        let mut sc = BlockScatter::new_with(p, KernelPolicy::Naive);
        let acc = SparseScatterAcc::new(1, 2);
        acc.finalize(&mut sc, 1, &[5.0, 5.0]);
        assert_eq!(sc.matrix().frobenius_norm(), 0.0);
    }
}
