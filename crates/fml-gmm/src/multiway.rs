//! `F-GMM` for multi-way joins (Section V-C).
//!
//! With `q` dimension tables the feature space is partitioned into `q + 1` blocks
//! `[d_S | d_{R_1} | … | d_{R_q}]` and the EM quantities decompose into a
//! `(q+1)×(q+1)` grid (Equations 19–24).  Reuse happens per *dimension tuple*:
//! for every distinct `R_i` tuple we cache, per mixture component,
//!
//! * the centered vector `PD_{R_i}`,
//! * the diagonal quadratic term `PD_{R_i}ᵀ I_{ii} PD_{R_i}`,
//! * the fact-side cross vector `I_{0i}·PD_{R_i} + I_{i0}ᵀ·PD_{R_i}`,
//!
//! so each fact tuple only evaluates the small `d_S×d_S` form, `q` dot products of
//! length `d_S`, and the (cheap) cross terms between distinct dimension blocks.
//! The M-step accumulates the dimension-only mean and scatter contributions per
//! dimension tuple with the group's total responsibility mass, never per fact
//! tuple.

use crate::em::{converged, finalize_m_step, means_from_sums, GmmFit};
use crate::init::GmmInit;
use crate::model::Precomputed;
use crate::sparse::{SparseFormPre, SparseScatterAcc};
use crate::GmmConfig;
use fml_linalg::block::{BlockPartition, BlockQuadraticForm, BlockScatter};
use fml_linalg::exec::{ExecPolicy, FitNotifier};
use fml_linalg::policy::par_chunks_with_threads;
use fml_linalg::repcache::KeyedRepCache;
use fml_linalg::sparse::{SparseMode, SparseRep};
use fml_linalg::{gemm, vector, KernelPolicy, Matrix, Vector};
use fml_store::factorized_scan::StarScan;
use fml_store::{Database, JoinSpec, StoreResult};
use std::collections::HashMap;
use std::time::Instant;

/// The factorized training strategy for star (multi-way) joins.
pub struct FactorizedMultiwayGmm;

/// Per-dimension-tuple cache used by the factorized E-step.
struct EStepEntry {
    /// Centered vectors `PD_{R_i}`, one per component.
    pd: Vec<Vec<f64>>,
    /// Diagonal quadratic terms `PD_{R_i}ᵀ I_{ii} PD_{R_i}`, one per component.
    diag: Vec<f64>,
    /// Fact-side cross vectors `I_{0i}·PD + I_{i0}ᵀ·PD`, one per component.
    cross_s: Vec<Vec<f64>>,
}

/// Per-iteration context the E-step cache construction reads: the partitioned
/// covariance inverses, split means and (when auto-sparse) the sparse
/// decomposition constants.
struct EStepCtx<'a> {
    forms: &'a [BlockQuadraticForm],
    means_split: &'a [Vec<Vec<f64>>],
    sparse_pre: &'a [Vec<SparseFormPre>],
    kp: KernelPolicy,
}

impl EStepEntry {
    /// Builds the cache for one distinct dimension tuple.  Sparse tuples
    /// (`rep` given) compute the diagonal and fact-cross quantities through
    /// the mean decomposition (gathers only); the centered vector is still
    /// materialized because the cross terms between *distinct* dimension
    /// blocks evaluate densely (sparse cross-dimension terms are a ROADMAP
    /// follow-up).
    fn build(features: &[f64], rep: Option<&SparseRep>, block: usize, ctx: &EStepCtx<'_>) -> Self {
        let k = ctx.forms.len();
        let mut pd = Vec::with_capacity(k);
        let mut diag = Vec::with_capacity(k);
        let mut cross_s = Vec::with_capacity(k);
        for c in 0..k {
            let centered: Vec<f64> = features
                .iter()
                .zip(ctx.means_split[c][block].iter())
                .map(|(x, m)| x - m)
                .collect();
            match rep {
                Some(rep) => {
                    let pre = &ctx.sparse_pre[c][block - 1];
                    diag.push(pre.diag_term(&ctx.forms[c], block, rep));
                    cross_s.push(pre.cross_vector(&ctx.forms[c], block, rep, ctx.kp));
                }
                None => {
                    diag.push(ctx.forms[c].term(block, block, &centered, &centered));
                    let mut w = ctx.forms[c].block_times(0, block, &centered);
                    let w2 = gemm::matvec_transposed_with(
                        ctx.kp,
                        ctx.forms[c].block(block, 0),
                        &centered,
                    );
                    vector::axpy(1.0, &w2, &mut w);
                    cross_s.push(w);
                }
            }
            pd.push(centered);
        }
        Self { pd, diag, cross_s }
    }
}

/// Per-dimension-tuple aggregate used by the covariance pass.
struct ScatterAgg {
    /// Total responsibility mass of fact tuples referencing this dimension tuple.
    gamma: Vec<f64>,
    /// `Σ γ PD_S` over those fact tuples, one vector per component.
    weighted_pd_s: Vec<Vec<f64>>,
}

impl ScatterAgg {
    fn new(k: usize, d_s: usize) -> Self {
        Self {
            gamma: vec![0.0; k],
            weighted_pd_s: vec![vec![0.0; d_s]; k],
        }
    }
}

impl FactorizedMultiwayGmm {
    /// Trains a GMM over a star join of `q ≥ 1` dimension tables.
    pub fn train(
        db: &Database,
        spec: &JoinSpec,
        config: &GmmConfig,
        exec: &ExecPolicy,
    ) -> StoreResult<GmmFit> {
        let start = Instant::now();
        let ex = exec.resolve();
        // Kernels invoked under a parallel policy on this thread fan out to
        // exactly the resolved thread count while training runs.
        let _kernel_threads = ex.kernel_thread_scope();
        // The resolved observability mode governs instrumentation on every
        // thread this run touches (pool workers, storage scans).
        let _obs = ex.obs_scope();
        spec.validate(db)?;
        let sizes = spec.feature_partition(db)?;
        let partition = BlockPartition::new(&sizes);
        let d = partition.total_dim();
        let d_s = sizes[0];
        let q = sizes.len() - 1;
        let n = spec.fact_relation(db)?.lock().num_tuples();
        let k = config.k;

        let mut model = GmmInit::new(ex.seed, config.init_spread).from_relations(db, spec, k)?;
        assert_eq!(model.dim(), d, "initial model dimension mismatch");
        // After the init scan, so event 0 brackets exactly the first
        // iteration (matches the M/S trainers' accounting).
        let probe = db.stats().io_probe();
        let mut notifier = FitNotifier::new(exec, Some(&probe));
        let mut log_likelihood = Vec::with_capacity(config.max_iters);
        let mut iterations = 0;
        let mut gammas: Vec<f64> = Vec::with_capacity(n as usize * k);

        let kp = ex.kernel_policy.sequential();
        // Fan out only when per-fact work can amortize the thread spawns.
        let par =
            ex.kernel_policy.is_parallel() && k * d * d >= crate::factorized::PAR_MIN_GROUP_FLOPS;
        let workers = ex.workers(par);
        let auto_sparse = ex.sparse == SparseMode::Auto;
        // Per-dimension detection caches, keyed by FK and **hoisted out of the
        // EM loop**: the dimension tuples are immutable, so detection runs at
        // most once per distinct tuple for the whole training run (the E-step
        // fills the cache on first encounter; the M-step passes and every
        // later iteration reuse it).
        let mut dim_reps: Vec<KeyedRepCache> =
            (0..q).map(|_| KeyedRepCache::new(ex.sparse)).collect();

        for _iter in 0..config.max_iters {
            let pre = Precomputed::from_model(&model, config.ridge);
            let forms = pre.block_forms_with(&partition, kp);
            let means_split = pre.split_means(&partition);
            let sparse_pre = if auto_sparse {
                SparseFormPre::build_all(&forms, &means_split, partition.num_blocks(), kp)
            } else {
                Vec::new()
            };

            // ---- Pass 1: E-step (Equation 19) ----
            // Per block: a sequential sweep materializes the per-dimension-tuple
            // caches (one entry per *distinct* FK — the factorized reuse), then
            // the per-fact evaluation fans out over chunks that read the caches
            // immutably; partials merge in chunk order.
            gammas.clear();
            let mut nk = vec![0.0; k];
            let mut ll = 0.0;
            let scan = StarScan::new(db, spec, ex.block_pages)?;
            let mut caches: Vec<HashMap<u64, EStepEntry>> =
                (0..q).map(|_| HashMap::new()).collect();
            for block in scan.blocks() {
                let facts = block?;
                for fact in &facts {
                    for (i, fk) in fact.fks.iter().enumerate() {
                        if !caches[i].contains_key(fk) {
                            let dim_tuple = scan.cache().get(i, *fk).ok_or_else(|| {
                                fml_store::StoreError::DanglingForeignKey {
                                    relation: spec.dimensions[i].clone(),
                                    key: *fk,
                                }
                            })?;
                            // Detection persists across iterations; only the
                            // first encounter of a tuple ever scans it.
                            let rep = dim_reps[i].rep_or_detect(*fk, &dim_tuple.features);
                            let ctx = EStepCtx {
                                forms: &forms,
                                means_split: &means_split,
                                sparse_pre: &sparse_pre,
                                kp,
                            };
                            let entry = EStepEntry::build(&dim_tuple.features, rep, i + 1, &ctx);
                            caches[i].insert(*fk, entry);
                        }
                    }
                }
                let parts = par_chunks_with_threads(workers, facts.len(), 1, |range| {
                    let mut local_gammas = Vec::with_capacity(range.len() * k);
                    let mut local_nk = vec![0.0; k];
                    let mut local_ll = 0.0;
                    let mut log_dens = vec![0.0; k];
                    let mut pd_s = vec![0.0; d_s];
                    for fact in &facts[range] {
                        for (c, ld) in log_dens.iter_mut().enumerate() {
                            vector::sub_into(&fact.features, &means_split[c][0], &mut pd_s);
                            let mut quad = forms[c].term(0, 0, &pd_s, &pd_s);
                            for i in 0..q {
                                let e = &caches[i][&fact.fks[i]];
                                quad += e.diag[c] + vector::dot(&pd_s, &e.cross_s[c]);
                            }
                            // cross terms between distinct dimension blocks
                            for i in 0..q {
                                for j in 0..q {
                                    if i != j {
                                        let ei = &caches[i][&fact.fks[i]];
                                        let ej = &caches[j][&fact.fks[j]];
                                        quad += forms[c].term(i + 1, j + 1, &ei.pd[c], &ej.pd[c]);
                                    }
                                }
                            }
                            *ld = pre.log_norm[c] - 0.5 * quad;
                        }
                        let (resp, tuple_ll) = pre.finish_responsibilities(&mut log_dens);
                        for c in 0..k {
                            local_nk[c] += resp[c];
                        }
                        local_ll += tuple_ll;
                        local_gammas.extend_from_slice(&resp);
                    }
                    (local_gammas, local_nk, local_ll)
                });
                for (local_gammas, local_nk, local_ll) in parts {
                    gammas.extend_from_slice(&local_gammas);
                    vector::axpy(1.0, &local_nk, &mut nk);
                    ll += local_ll;
                }
            }

            // ---- Pass 2: M-step, means (Equation 22) ----
            let mut mean_sums = vec![Vector::zeros(d); k];
            let mut gamma_by_dim: Vec<HashMap<u64, Vec<f64>>> =
                (0..q).map(|_| HashMap::new()).collect();
            let mut cursor = 0usize;
            let scan = StarScan::new(db, spec, ex.block_pages)?;
            for block in scan.blocks() {
                for fact in block? {
                    let g = &gammas[cursor..cursor + k];
                    for c in 0..k {
                        vector::axpy(
                            g[c],
                            &fact.features,
                            &mut mean_sums[c].as_mut_slice()[..d_s],
                        );
                    }
                    for (i, fk) in fact.fks.iter().enumerate() {
                        let sums = gamma_by_dim[i].entry(*fk).or_insert_with(|| vec![0.0; k]);
                        for c in 0..k {
                            sums[c] += g[c];
                        }
                    }
                    cursor += k;
                }
            }
            for (i, dim_gammas) in gamma_by_dim.iter().enumerate() {
                let range = partition.range(i + 1);
                // Sorted keys: the FK arena is a HashMap, whose iteration
                // order is randomized per process — the mean sums must merge
                // in a deterministic order or the result drifts run to run.
                let mut sorted_keys: Vec<u64> = dim_gammas.keys().copied().collect();
                sorted_keys.sort_unstable();
                for key in &sorted_keys {
                    let sums = &dim_gammas[key];
                    match dim_reps[i].get(*key) {
                        Some(rep) => {
                            for c in 0..k {
                                rep.axpy_into(
                                    sums[c],
                                    &mut mean_sums[c].as_mut_slice()[range.clone()],
                                );
                            }
                        }
                        None => {
                            let dim_tuple =
                                scan.cache().get(i, *key).expect("cached during pass 1");
                            for c in 0..k {
                                vector::axpy(
                                    sums[c],
                                    &dim_tuple.features,
                                    &mut mean_sums[c].as_mut_slice()[range.clone()],
                                );
                            }
                        }
                    }
                }
            }
            let new_means = means_from_sums(&nk, &mean_sums);
            let new_means_split: Vec<Vec<Vec<f64>>> = new_means
                .iter()
                .map(|m| {
                    partition
                        .split(m.as_slice())
                        .into_iter()
                        .map(|s| s.to_vec())
                        .collect()
                })
                .collect();

            // ---- Pass 3: M-step, covariances (Equations 23–24) ----
            let mut pd_s = vec![0.0; d_s];
            let mut scatter: Vec<BlockScatter> = (0..k)
                .map(|_| BlockScatter::new_with(partition.clone(), kp))
                .collect();
            // Centered dimension vectors under the *new* means.
            let mut pd_new: Vec<HashMap<u64, Vec<Vec<f64>>>> =
                (0..q).map(|_| HashMap::new()).collect();
            let mut aggs: Vec<HashMap<u64, ScatterAgg>> = (0..q).map(|_| HashMap::new()).collect();
            let mut cursor = 0usize;
            let scan = StarScan::new(db, spec, ex.block_pages)?;
            for block in scan.blocks() {
                for fact in block? {
                    let g = &gammas[cursor..cursor + k];
                    for (i, fk) in fact.fks.iter().enumerate() {
                        if !pd_new[i].contains_key(fk) {
                            let dim_tuple = scan.cache().get(i, *fk).expect("cached during pass 1");
                            let per_c: Vec<Vec<f64>> = (0..k)
                                .map(|c| {
                                    dim_tuple
                                        .features
                                        .iter()
                                        .zip(new_means_split[c][i + 1].iter())
                                        .map(|(x, m)| x - m)
                                        .collect()
                                })
                                .collect();
                            pd_new[i].insert(*fk, per_c);
                        }
                    }
                    for c in 0..k {
                        vector::sub_into(&fact.features, &new_means_split[c][0], &mut pd_s);
                        // fact-fact block, per tuple
                        scatter[c].add_outer(0, 0, g[c], &pd_s, &pd_s);
                        for (i, fk) in fact.fks.iter().enumerate() {
                            let agg = aggs[i]
                                .entry(*fk)
                                .or_insert_with(|| ScatterAgg::new(k, d_s));
                            agg.gamma[c] += g[c];
                            vector::axpy(g[c], &pd_s, &mut agg.weighted_pd_s[c]);
                        }
                        // cross terms between distinct dimension blocks, per tuple
                        for i in 0..q {
                            for j in 0..q {
                                if i != j {
                                    let pi = &pd_new[i][&fact.fks[i]][c];
                                    let pj = &pd_new[j][&fact.fks[j]][c];
                                    scatter[c].add_outer(i + 1, j + 1, g[c], pi, pj);
                                }
                            }
                        }
                    }
                    cursor += k;
                }
            }
            // Dimension-side blocks, once per dimension tuple.  Sparse tuples
            // go through the sparse decomposition: raw-x scatters here, dense
            // mean corrections once per (component, block) after the loop.
            for i in 0..q {
                let d_i = partition.size(i + 1);
                let mut acc: Vec<SparseScatterAcc> =
                    (0..k).map(|_| SparseScatterAcc::new(d_s, d_i)).collect();
                // Sorted keys: scatter merges must be hash-order-free (see
                // the gamma pass above).
                let mut sorted_keys: Vec<u64> = aggs[i].keys().copied().collect();
                sorted_keys.sort_unstable();
                for key in &sorted_keys {
                    let agg = &aggs[i][key];
                    if let Some(rep) = dim_reps[i].get(*key) {
                        for c in 0..k {
                            acc[c].record(
                                &mut scatter[c],
                                i + 1,
                                agg.gamma[c],
                                &agg.weighted_pd_s[c],
                                rep,
                            );
                        }
                        continue;
                    }
                    let pd = &pd_new[i][key];
                    for c in 0..k {
                        scatter[c].add_outer(0, i + 1, 1.0, &agg.weighted_pd_s[c], &pd[c]);
                        scatter[c].add_outer(i + 1, 0, 1.0, &pd[c], &agg.weighted_pd_s[c]);
                        scatter[c].add_outer(i + 1, i + 1, agg.gamma[c], &pd[c], &pd[c]);
                    }
                }
                for (c, acc) in acc.iter().enumerate() {
                    acc.finalize(&mut scatter[c], i + 1, &new_means_split[c][i + 1]);
                }
            }
            let scatter_mats: Vec<Matrix> =
                scatter.into_iter().map(BlockScatter::into_matrix).collect();
            model = finalize_m_step(&nk, mean_sums, scatter_mats, n, config.ridge);
            iterations += 1;
            notifier.notify(ll);

            let prev = log_likelihood.last().copied();
            log_likelihood.push(ll);
            if converged(prev, ll, config.tol) {
                break;
            }
        }

        Ok(GmmFit {
            model,
            iterations,
            log_likelihood,
            n_tuples: n,
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materialized::MaterializedGmm;
    use crate::streaming::StreamingGmm;
    use fml_data::multiway::{DimSpec, MultiwayConfig};
    use fml_data::SyntheticConfig;

    #[test]
    fn multiway_factorized_matches_materialized() {
        let w = MultiwayConfig {
            n_s: 400,
            d_s: 2,
            dims: vec![DimSpec::new(12, 3), DimSpec::new(6, 4)],
            k: 2,
            noise_std: 0.7,
            with_target: false,
            seed: 17,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 4,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let s = StreamingGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedMultiwayGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(
            m.model.max_param_diff(&f.model) < 1e-7,
            "M vs F-multiway diff {}",
            m.model.max_param_diff(&f.model)
        );
        assert!(s.model.max_param_diff(&f.model) < 1e-7);
    }

    #[test]
    fn multiway_with_three_dimension_tables() {
        let w = MultiwayConfig {
            n_s: 300,
            d_s: 1,
            dims: vec![DimSpec::new(10, 2), DimSpec::new(5, 3), DimSpec::new(4, 2)],
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 8,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 3,
            ..GmmConfig::default()
        };
        let m = MaterializedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let f = FactorizedMultiwayGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(m.model.max_param_diff(&f.model) < 1e-7);
        assert_eq!(f.model.dim(), 8);
    }

    #[test]
    fn multiway_reduces_to_binary_when_q_is_one() {
        // A star join with a single dimension table must match the dedicated
        // binary implementation exactly.
        let w = SyntheticConfig {
            n_s: 250,
            n_r: 10,
            d_s: 2,
            d_r: 4,
            k: 2,
            noise_std: 0.6,
            with_target: false,
            seed: 31,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 4,
            ..GmmConfig::default()
        };
        let binary =
            crate::FactorizedGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        let multi =
            FactorizedMultiwayGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        assert!(binary.model.max_param_diff(&multi.model) < 1e-8);
    }

    #[test]
    fn log_likelihood_monotone_multiway() {
        let w = MultiwayConfig {
            n_s: 300,
            d_s: 2,
            dims: vec![DimSpec::new(9, 2), DimSpec::new(6, 2)],
            k: 2,
            noise_std: 0.5,
            with_target: false,
            seed: 13,
        }
        .generate()
        .unwrap();
        let config = GmmConfig {
            k: 2,
            max_iters: 6,
            ..GmmConfig::default()
        };
        let f = FactorizedMultiwayGmm::train(&w.db, &w.spec, &config, &ExecPolicy::new()).unwrap();
        for pair in f.log_likelihood.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-6);
        }
    }
}
