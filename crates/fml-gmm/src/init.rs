//! Data-independent GMM initialization.
//!
//! The three training variants visit tuples in different orders (materialized scan
//! vs dimension-grouped scan), so an initializer that depended on "the first few
//! tuples seen" would give them different starting points and make the
//! model-equivalence guarantee meaningless.  [`GmmInit`] therefore derives the
//! initial parameters only from `(K, d, seed)`: means are drawn from a seeded
//! normal, covariances start as identity matrices, weights start uniform.  Every
//! variant trained with the same configuration starts from bit-identical
//! parameters.

use crate::model::GmmModel;
use fml_linalg::{Matrix, Vector};
use fml_store::batch::BatchScan;
use fml_store::{Database, JoinSpec, StoreResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded standard-normal draw (Box–Muller), kept local so the model crate does
/// not depend on the data-generation crate.
fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    mean + std_dev * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Initialization strategy shared by every variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmmInit {
    /// RNG seed.
    pub seed: u64,
    /// Standard deviation of the initial mean placement.
    pub spread: f64,
}

impl GmmInit {
    /// Creates an initializer.
    pub fn new(seed: u64, spread: f64) -> Self {
        assert!(spread > 0.0, "spread must be positive");
        Self { seed, spread }
    }

    /// Produces an initial model informed by the *normalized* relations:
    /// per-column means and variances are computed from one scan of each base
    /// relation (never from the join result), then the `K` initial means are
    /// placed at `mean + spread·std·ε` with seeded normal draws `ε`, and the
    /// initial covariances are the diagonal variance matrices.
    ///
    /// Because the statistics come from the base relations — not from the joined
    /// stream — every training variant computes exactly the same initial model,
    /// while still starting at the right location and scale for the data (which
    /// keeps EM well-conditioned and avoids empty components).
    pub fn from_relations(
        &self,
        db: &Database,
        spec: &JoinSpec,
        k: usize,
    ) -> StoreResult<GmmModel> {
        let mut mean = Vec::new();
        let mut var = Vec::new();
        let mut relations = vec![spec.fact_relation(db)?];
        relations.extend(spec.dimension_relations(db)?);
        for rel in relations {
            let d_rel = rel.lock().schema().num_features;
            let mut sum = vec![0.0; d_rel];
            let mut sum_sq = vec![0.0; d_rel];
            let mut count = 0u64;
            for batch in BatchScan::new(rel.clone(), fml_store::DEFAULT_BLOCK_PAGES) {
                for tuple in batch? {
                    for (j, x) in tuple.features.iter().enumerate() {
                        sum[j] += x;
                        sum_sq[j] += x * x;
                    }
                    count += 1;
                }
            }
            let n = (count.max(1)) as f64;
            for j in 0..d_rel {
                let m = sum[j] / n;
                mean.push(m);
                var.push((sum_sq[j] / n - m * m).max(1e-3));
            }
        }
        Ok(self.model_from_stats(k, &mean, &var))
    }

    /// Builds the initial model from explicit per-column means and variances.
    pub fn model_from_stats(&self, k: usize, mean: &[f64], var: &[f64]) -> GmmModel {
        assert!(k > 0, "k must be positive");
        assert_eq!(mean.len(), var.len(), "mean/var length mismatch");
        let d = mean.len();
        assert!(d > 0, "d must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let weights = vec![1.0 / k as f64; k];
        let means = (0..k)
            .map(|_| {
                Vector::from_vec(
                    (0..d)
                        .map(|j| mean[j] + normal(&mut rng, 0.0, self.spread * var[j].sqrt()))
                        .collect(),
                )
            })
            .collect();
        let covariances = (0..k).map(|_| Matrix::from_diag(var)).collect();
        GmmModel::new(weights, means, covariances)
    }

    /// Produces a purely data-independent initial model for `k` components over
    /// `d` features (unit covariances, means drawn around the origin).
    pub fn initial_model(&self, k: usize, d: usize) -> GmmModel {
        assert!(k > 0, "k must be positive");
        assert!(d > 0, "d must be positive");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let weights = vec![1.0 / k as f64; k];
        let means = (0..k)
            .map(|_| Vector::from_vec((0..d).map(|_| normal(&mut rng, 0.0, self.spread)).collect()))
            .collect();
        let covariances = (0..k).map(|_| Matrix::identity(d)).collect();
        GmmModel::new(weights, means, covariances)
    }
}

impl Default for GmmInit {
    fn default() -> Self {
        Self {
            seed: 7,
            spread: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_model_shape_and_weights() {
        let init = GmmInit::new(3, 2.0);
        let m = init.initial_model(4, 6);
        assert_eq!(m.k(), 4);
        assert_eq!(m.dim(), 6);
        assert!((m.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(m.weights.iter().all(|w| (*w - 0.25).abs() < 1e-12));
        assert_eq!(m.covariances[2], Matrix::identity(6));
    }

    #[test]
    fn same_seed_gives_identical_models() {
        let a = GmmInit::new(11, 4.0).initial_model(3, 5);
        let b = GmmInit::new(11, 4.0).initial_model(3, 5);
        assert_eq!(a.max_param_diff(&b), 0.0);
    }

    #[test]
    fn different_seeds_give_different_means() {
        let a = GmmInit::new(1, 4.0).initial_model(3, 5);
        let b = GmmInit::new(2, 4.0).initial_model(3, 5);
        assert!(a.max_param_diff(&b) > 0.0);
    }

    #[test]
    fn means_are_distinct_across_components() {
        let m = GmmInit::default().initial_model(5, 3);
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(
                    fml_linalg::vector::max_abs_diff(m.means[i].as_slice(), m.means[j].as_slice())
                        > 1e-6,
                    "components {i} and {j} initialized identically"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "spread must be positive")]
    fn zero_spread_rejected() {
        GmmInit::new(0, 0.0);
    }
}
