//! The shared EM driver for "dense" tuple sources (Algorithm 1 of the paper).
//!
//! `M-GMM` and `S-GMM` differ only in *where* the denormalized feature vectors come
//! from (a materialized table vs an on-the-fly join); the EM computation itself is
//! identical.  [`train_dense`] implements that computation once, against the
//! [`DensePassSource`] abstraction: a data source that can replay the same sequence
//! of joined feature vectors once per pass.
//!
//! Following Algorithm 1, every EM iteration makes **three passes** over the data:
//!
//! 1. **E-step** — compute and store the responsibilities `γ_k^{(n)}` (and the
//!    iteration's log-likelihood);
//! 2. **M-step (means)** — accumulate `Σ_n γ_k^{(n)} x^{(n)}` and update `µ_k`;
//! 3. **M-step (covariances)** — accumulate
//!    `Σ_n γ_k^{(n)} (x^{(n)}−µ_k)(x^{(n)}−µ_k)ᵀ` around the *new* means and
//!    update `Σ_k`, then update `π_k = N_k / N`.

use crate::init::GmmInit;
use crate::model::{GmmModel, Precomputed};
use crate::GmmConfig;
use fml_linalg::exec::{ExecPolicy, FitNotifier, IoProbe};
use fml_linalg::policy::par_chunks_with_threads;
use fml_linalg::repcache::RepCache;
use fml_linalg::sparse::SparseMode;
use fml_linalg::{vector, Matrix, Vector};
use fml_store::StoreResult;
use std::time::{Duration, Instant};

/// Number of joined tuples buffered per parallel batch.  Each batch is split
/// into per-thread chunks whose partial sufficient statistics merge in chunk
/// order, so the reduction tree is fixed for a given `(batch, thread count)`.
pub const PAR_BATCH_TUPLES: usize = 1024;

/// Minimum `k·d²·batch` work (≈ flops per E-step batch) below which the
/// parallel policy stays inline: the scoped-thread fan-out costs tens of
/// microseconds per batch, which tiny models cannot amortize.
pub const PAR_MIN_BATCH_FLOPS: usize = 1 << 22;

/// Buffers rows from a [`DensePassSource`] and flushes them batch-wise, so the
/// per-batch work can fan out over threads even though the source itself is a
/// strictly sequential callback scan.
struct BatchBuffer {
    rows: Vec<f64>,
    dim: usize,
    capacity: usize,
}

impl BatchBuffer {
    fn new(dim: usize, capacity: usize) -> Self {
        Self {
            rows: Vec::with_capacity(dim * capacity),
            dim,
            capacity,
        }
    }

    fn push(&mut self, x: &[f64], mut flush: impl FnMut(&[f64], usize)) {
        self.rows.extend_from_slice(x);
        if self.rows.len() >= self.dim * self.capacity {
            flush(&self.rows, self.dim);
            self.rows.clear();
        }
    }

    fn finish(&mut self, mut flush: impl FnMut(&[f64], usize)) {
        if !self.rows.is_empty() {
            flush(&self.rows, self.dim);
            self.rows.clear();
        }
    }
}

/// A source of denormalized (joined) feature vectors that can be scanned once per
/// EM pass.  Implementations: the materialized table `T` (`M-GMM`) and the
/// on-the-fly join (`S-GMM`).
pub trait DensePassSource {
    /// Invokes `f` once per joined feature vector, in a deterministic order.
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64])) -> StoreResult<()>;
    /// Number of tuples produced per pass (`N`).
    fn num_tuples(&self) -> u64;
    /// Dimensionality `d` of the joined feature vectors.
    fn dim(&self) -> usize;
}

/// Options controlling the EM loop (a view over [`GmmConfig`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmOptions {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Early-stopping tolerance on the log-likelihood change (0 = disabled).
    pub tol: f64,
    /// Covariance regularization ridge.
    pub ridge: f64,
}

impl From<&GmmConfig> for EmOptions {
    fn from(c: &GmmConfig) -> Self {
        Self {
            max_iters: c.max_iters,
            tol: c.tol,
            ridge: c.ridge,
        }
    }
}

/// The result of fitting a GMM.
#[derive(Debug, Clone)]
pub struct GmmFit {
    /// The trained model.
    pub model: GmmModel,
    /// Number of EM iterations actually performed.
    pub iterations: usize,
    /// Total data log-likelihood after each iteration.
    pub log_likelihood: Vec<f64>,
    /// Number of training tuples `N`.
    pub n_tuples: u64,
    /// Wall-clock training time (excludes data generation, includes any join or
    /// materialization work the algorithm variant performs).
    pub elapsed: Duration,
}

impl GmmFit {
    /// Final log-likelihood (NaN if no iterations ran).
    pub fn final_log_likelihood(&self) -> f64 {
        self.log_likelihood.last().copied().unwrap_or(f64::NAN)
    }
}

/// Checks the early-stopping criterion used by every variant.
pub fn converged(prev_ll: Option<f64>, ll: f64, tol: f64) -> bool {
    match (prev_ll, tol) {
        (_, t) if t <= 0.0 => false,
        (None, _) => false,
        (Some(prev), t) => (ll - prev).abs() < t,
    }
}

/// Responsibility mass below which a component is considered "empty"; its
/// covariance is reset to the identity so every variant treats the degenerate
/// case identically instead of dividing near-zero scatter by near-zero mass.
pub const EMPTY_COMPONENT_MASS: f64 = 1e-6;

/// Finalizes the M-step: turns accumulated sufficient statistics into model
/// parameters.  Shared by the dense and factorized paths so the final arithmetic
/// (division order, symmetrization) is literally the same code.
pub fn finalize_m_step(
    nk: &[f64],
    mean_sums: Vec<Vector>,
    mut scatter: Vec<Matrix>,
    n_total: u64,
    ridge: f64,
) -> GmmModel {
    let k = nk.len();
    let d = mean_sums[0].len();
    let mut weights = Vec::with_capacity(k);
    let mut means = Vec::with_capacity(k);
    for c in 0..k {
        if nk[c] < EMPTY_COMPONENT_MASS {
            // Empty component: deterministic reset (mean from whatever tiny mass
            // it has, identity covariance, ~zero weight).
            let mut m = mean_sums[c].clone();
            m.scale(1.0 / nk[c].max(EMPTY_COMPONENT_MASS));
            means.push(m);
            scatter[c] = Matrix::identity(d);
            weights.push(nk[c] / n_total as f64);
            continue;
        }
        let mut m = mean_sums[c].clone();
        m.scale(1.0 / nk[c]);
        means.push(m);
        scatter[c].scale(1.0 / nk[c]);
        scatter[c].symmetrize();
        // Deterministic regularization applied by every variant: keeps the
        // covariance comfortably SPD so the next E-step never needs the
        // escalating (and rounding-sensitive) repair path.
        scatter[c].add_diag(ridge);
        weights.push(nk[c] / n_total as f64);
    }
    GmmModel::new(weights, means, scatter)
}

/// Computes the new means from the mean sums (needed before the covariance pass).
pub fn means_from_sums(nk: &[f64], mean_sums: &[Vector]) -> Vec<Vector> {
    nk.iter()
        .zip(mean_sums.iter())
        .map(|(n, s)| {
            let mut m = s.clone();
            m.scale(1.0 / if *n > 0.0 { *n } else { 1.0 });
            m
        })
        .collect()
}

/// Trains a GMM with the three-pass EM of Algorithm 1 over a dense tuple source,
/// initializing with the data-independent [`GmmInit::initial_model`].
pub fn train_dense(
    source: &mut dyn DensePassSource,
    config: &GmmConfig,
    exec: &ExecPolicy,
) -> StoreResult<GmmFit> {
    let initial =
        GmmInit::new(exec.resolve().seed, config.init_spread).initial_model(config.k, source.dim());
    train_dense_from(source, config, exec, initial, None)
}

/// Trains a GMM with the three-pass EM of Algorithm 1 over a dense tuple source,
/// starting from an explicit initial model (shared by every variant so the
/// model-equivalence guarantee holds).  `io` is the optional cumulative I/O
/// probe behind the per-iteration [`fml_linalg::FitObserver`] events.
pub fn train_dense_from(
    source: &mut dyn DensePassSource,
    config: &GmmConfig,
    exec: &ExecPolicy,
    initial: GmmModel,
    io: IoProbe<'_>,
) -> StoreResult<GmmFit> {
    let start = Instant::now();
    let opts = EmOptions::from(config);
    let ex = exec.resolve();
    // Kernels invoked under a parallel policy on this thread fan out to
    // exactly the resolved thread count while training runs.
    let _kernel_threads = ex.kernel_thread_scope();
    // The resolved observability mode governs instrumentation on every
    // thread this run touches (pool workers, storage scans).
    let _obs = ex.obs_scope();
    let mut notifier = FitNotifier::new(exec, io);
    let d = source.dim();
    let n = source.num_tuples();
    let k = config.k;
    assert_eq!(initial.dim(), d, "initial model dimension mismatch");
    assert_eq!(initial.k(), k, "initial model component count mismatch");
    let mut model = initial;

    let mut log_likelihood = Vec::with_capacity(opts.max_iters);
    let mut iterations = 0;
    let mut gammas: Vec<f64> = Vec::with_capacity((n as usize) * k);

    // Per-tuple kernels run single-threaded inside the per-chunk workers; the
    // parallelism lives at the tuple-batch level.  Fanning out only pays when a
    // batch carries enough flops to amortize the scoped-thread spawns, so tiny
    // models stay inline even under the parallel policy.
    let kp = ex.kernel_policy.sequential();
    let par = ex.kernel_policy.is_parallel() && k * d * d * PAR_BATCH_TUPLES >= PAR_MIN_BATCH_FLOPS;
    let workers = ex.workers(par);
    let auto_sparse = ex.sparse == SparseMode::Auto;
    // Per-tuple representation cache, filled lazily during the first E-step
    // pass — the sources replay tuples in a deterministic order, so later
    // passes and iterations index it by tuple position.  No extra scan is
    // performed (the streaming cost model stays exact) and detection runs at
    // most once per tuple.  Memory is O(total nnz), which does not change
    // this driver's memory class: `gammas` below already retains O(n·k)
    // responsibilities across passes.
    let mut reps = RepCache::new(ex.sparse);

    for _iter in 0..opts.max_iters {
        let pre = Precomputed::from_model(&model, opts.ridge);
        // Sparse-path constants, O(k·d²) once per iteration — the per-tuple
        // E-step on sparse rows is then pure gathers.
        let sparse_pre: Vec<crate::sparse::SparseFormPre> = if auto_sparse {
            (0..k)
                .map(|c| {
                    crate::sparse::SparseFormPre::build_flat(
                        &pre.inverses[c],
                        pre.means[c].as_slice(),
                        kp,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };

        // ---- Pass 1: E-step — responsibilities + log-likelihood ----
        gammas.clear();
        let mut nk = vec![0.0; k];
        let mut ll = 0.0;
        if !par {
            let mut log_dens = vec![0.0; k];
            let mut centered = vec![0.0; d];
            let mut row = 0usize;
            source.for_each(&mut |x: &[f64]| {
                let rep = reps.rep_or_detect(row, x);
                for (c, ld) in log_dens.iter_mut().enumerate() {
                    let quad = match rep {
                        Some(rep) => sparse_pre[c].quad_flat(&pre.inverses[c], rep),
                        None => {
                            vector::sub_into(x, pre.means[c].as_slice(), &mut centered);
                            fml_linalg::gemm::quadratic_form_sym_with(
                                kp,
                                &centered,
                                &pre.inverses[c],
                            )
                        }
                    };
                    *ld = pre.log_norm[c] - 0.5 * quad;
                }
                let (resp, tuple_ll) = pre.finish_responsibilities(&mut log_dens);
                for c in 0..k {
                    nk[c] += resp[c];
                }
                ll += tuple_ll;
                gammas.extend_from_slice(&resp);
                row += 1;
            })?;
        } else {
            // Tuples are buffered into batches; each batch fans out over
            // deterministic chunks that compute (responsibilities, Σγ,
            // log-likelihood) locally, and the partials merge in chunk order
            // (including, on the first pass, the detected representations —
            // the RepCache segment protocol).
            let mut row_cursor = 0usize;
            let reps_cell = &mut reps;
            let mut flush = |rows: &[f64], dim: usize| {
                let n_rows = rows.len() / dim;
                let base = row_cursor;
                let reps_ref: &RepCache = reps_cell;
                let parts = par_chunks_with_threads(workers, n_rows, 1, |range| {
                    let mut local_gammas = Vec::with_capacity(range.len() * k);
                    let mut seg = reps_ref.segment(base + range.start);
                    let mut local_nk = vec![0.0; k];
                    let mut local_ll = 0.0;
                    let mut log_dens = vec![0.0; k];
                    let mut centered = vec![0.0; dim];
                    for r in range {
                        let x = &rows[r * dim..(r + 1) * dim];
                        let rep = seg.rep_or_detect(base + r, x);
                        for (c, ld) in log_dens.iter_mut().enumerate() {
                            let quad = match rep {
                                Some(rep) => sparse_pre[c].quad_flat(&pre.inverses[c], rep),
                                None => {
                                    vector::sub_into(x, pre.means[c].as_slice(), &mut centered);
                                    fml_linalg::gemm::quadratic_form_sym_with(
                                        kp,
                                        &centered,
                                        &pre.inverses[c],
                                    )
                                }
                            };
                            *ld = pre.log_norm[c] - 0.5 * quad;
                        }
                        let (resp, tuple_ll) = pre.finish_responsibilities(&mut log_dens);
                        for c in 0..k {
                            local_nk[c] += resp[c];
                        }
                        local_ll += tuple_ll;
                        local_gammas.extend_from_slice(&resp);
                    }
                    (local_gammas, local_nk, local_ll, seg.into_detected())
                });
                for (local_gammas, local_nk, local_ll, detected) in parts {
                    gammas.extend_from_slice(&local_gammas);
                    vector::axpy(1.0, &local_nk, &mut nk);
                    ll += local_ll;
                    reps_cell.merge(detected);
                }
                row_cursor += n_rows;
            };
            let mut buffer = BatchBuffer::new(d, PAR_BATCH_TUPLES);
            source.for_each(&mut |x: &[f64]| buffer.push(x, &mut flush))?;
            buffer.finish(&mut flush);
        }
        reps.finish_fill();

        // ---- Pass 2: M-step — means ----
        let mut mean_sums = vec![Vector::zeros(d); k];
        if !par {
            let mut cursor = 0usize;
            source.for_each(&mut |x: &[f64]| {
                let g = &gammas[cursor..cursor + k];
                match reps.get(cursor / k) {
                    Some(rep) => {
                        for c in 0..k {
                            rep.axpy_into(g[c], mean_sums[c].as_mut_slice());
                        }
                    }
                    None => {
                        for c in 0..k {
                            vector::axpy(g[c], x, mean_sums[c].as_mut_slice());
                        }
                    }
                }
                cursor += k;
            })?;
        } else {
            let mut cursor = 0usize;
            let reps_ref: &RepCache = &reps;
            let mut flush = |rows: &[f64], dim: usize| {
                let n_rows = rows.len() / dim;
                let base = cursor;
                let parts = par_chunks_with_threads(workers, n_rows, 1, |range| {
                    let mut local = vec![Vector::zeros(dim); k];
                    for r in range {
                        let x = &rows[r * dim..(r + 1) * dim];
                        let g = &gammas[base + r * k..base + (r + 1) * k];
                        match reps_ref.get(base / k + r) {
                            Some(rep) => {
                                for c in 0..k {
                                    rep.axpy_into(g[c], local[c].as_mut_slice());
                                }
                            }
                            None => {
                                for c in 0..k {
                                    vector::axpy(g[c], x, local[c].as_mut_slice());
                                }
                            }
                        }
                    }
                    local
                });
                for local in parts {
                    for c in 0..k {
                        mean_sums[c].axpy(1.0, &local[c]);
                    }
                }
                cursor += n_rows * k;
            };
            let mut buffer = BatchBuffer::new(d, PAR_BATCH_TUPLES);
            source.for_each(&mut |x: &[f64]| buffer.push(x, &mut flush))?;
            buffer.finish(&mut flush);
        }
        let new_means = means_from_sums(&nk, &mean_sums);

        // ---- Pass 3: M-step — covariances around the new means ----
        // Sparse rows use the mean decomposition: raw γ·x xᵀ pair scatters per
        // tuple, dense corrections `−(Σγx)µᵀ − µ(Σγx)ᵀ + (Σγ)µµᵀ` once per
        // pass per component.
        let mut scatter = vec![Matrix::zeros(d, d); k];
        let mut sparse_gx = vec![vec![0.0; d]; k];
        let mut sparse_gamma = vec![0.0; k];
        let mut any_sparse = false;
        if !par {
            let mut centered = vec![0.0; d];
            let mut cursor = 0usize;
            source.for_each(&mut |x: &[f64]| {
                let g = &gammas[cursor..cursor + k];
                match reps.get(cursor / k) {
                    Some(rep) => {
                        any_sparse = true;
                        for c in 0..k {
                            rep.scatter_pair(g[c], &mut scatter[c]);
                            rep.axpy_into(g[c], &mut sparse_gx[c]);
                            sparse_gamma[c] += g[c];
                        }
                    }
                    None => {
                        for c in 0..k {
                            vector::sub_into(x, new_means[c].as_slice(), &mut centered);
                            fml_linalg::gemm::ger_with(
                                kp,
                                g[c],
                                &centered,
                                &centered,
                                &mut scatter[c],
                            );
                        }
                    }
                }
                cursor += k;
            })?;
        } else {
            let mut cursor = 0usize;
            let reps_ref: &RepCache = &reps;
            let mut flush = |rows: &[f64], dim: usize| {
                let n_rows = rows.len() / dim;
                let base = cursor;
                let parts = par_chunks_with_threads(workers, n_rows, 1, |range| {
                    let mut local = vec![Matrix::zeros(dim, dim); k];
                    let mut local_gx = vec![vec![0.0; dim]; k];
                    let mut local_gamma = vec![0.0; k];
                    let mut local_any = false;
                    let mut centered = vec![0.0; dim];
                    for r in range {
                        let x = &rows[r * dim..(r + 1) * dim];
                        let g = &gammas[base + r * k..base + (r + 1) * k];
                        match reps_ref.get(base / k + r) {
                            Some(rep) => {
                                local_any = true;
                                for c in 0..k {
                                    rep.scatter_pair(g[c], &mut local[c]);
                                    rep.axpy_into(g[c], &mut local_gx[c]);
                                    local_gamma[c] += g[c];
                                }
                            }
                            None => {
                                for c in 0..k {
                                    vector::sub_into(x, new_means[c].as_slice(), &mut centered);
                                    fml_linalg::gemm::ger_with(
                                        kp,
                                        g[c],
                                        &centered,
                                        &centered,
                                        &mut local[c],
                                    );
                                }
                            }
                        }
                    }
                    (local, local_gx, local_gamma, local_any)
                });
                for (local, local_gx, local_gamma, local_any) in parts {
                    for c in 0..k {
                        scatter[c].add_assign(&local[c]);
                        vector::axpy(1.0, &local_gx[c], &mut sparse_gx[c]);
                        sparse_gamma[c] += local_gamma[c];
                    }
                    any_sparse |= local_any;
                }
                cursor += n_rows * k;
            };
            let mut buffer = BatchBuffer::new(d, PAR_BATCH_TUPLES);
            source.for_each(&mut |x: &[f64]| buffer.push(x, &mut flush))?;
            buffer.finish(&mut flush);
        }
        if any_sparse {
            for c in 0..k {
                let mu = new_means[c].as_slice();
                fml_linalg::gemm::ger_with(kp, -1.0, &sparse_gx[c], mu, &mut scatter[c]);
                fml_linalg::gemm::ger_with(kp, -1.0, mu, &sparse_gx[c], &mut scatter[c]);
                fml_linalg::gemm::ger_with(kp, sparse_gamma[c], mu, mu, &mut scatter[c]);
            }
        }

        model = finalize_m_step(&nk, mean_sums, scatter, n, opts.ridge);
        iterations += 1;
        notifier.notify(ll);

        let prev = log_likelihood.last().copied();
        log_likelihood.push(ll);
        if converged(prev, ll, opts.tol) {
            break;
        }
    }

    Ok(GmmFit {
        model,
        iterations,
        log_likelihood,
        n_tuples: n,
        elapsed: start.elapsed(),
    })
}

/// An in-memory dense source, useful for tests and for training over data that is
/// already denormalized outside the storage engine.
pub struct VecSource {
    rows: Vec<Vec<f64>>,
    dim: usize,
}

impl VecSource {
    /// Creates a source over in-memory rows.
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        let dim = rows.first().map(|r| r.len()).unwrap_or(0);
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "VecSource: ragged rows"
        );
        Self { rows, dim }
    }
}

impl DensePassSource for VecSource {
    fn for_each(&mut self, f: &mut dyn FnMut(&[f64])) -> StoreResult<()> {
        for r in &self.rows {
            f(r);
        }
        Ok(())
    }

    fn num_tuples(&self) -> u64 {
        self.rows.len() as u64
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_rows(n_per: usize) -> Vec<Vec<f64>> {
        // Deterministic, well separated pseudo-clusters around (0,0) and (10,10),
        // with a cheap hash-based jitter so the within-cluster covariance has
        // full rank.
        let jitter = |i: usize, salt: u64| {
            let h = (i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000;
            (h as f64) / 1000.0 - 0.5
        };
        let mut rows = Vec::new();
        for i in 0..n_per {
            let t = (i as f64) / (n_per as f64);
            rows.push(vec![
                0.3 * (t - 0.5) + jitter(i, 1),
                0.2 * (0.5 - t) + jitter(i, 7),
            ]);
            rows.push(vec![
                10.0 + 0.3 * (t - 0.5) + jitter(i, 13),
                10.0 + 0.2 * (t - 0.5) + jitter(i, 29),
            ]);
        }
        rows
    }

    #[test]
    fn em_separates_two_blobs() {
        let rows = two_blob_rows(200);
        let mut source = VecSource::new(rows);
        let config = GmmConfig {
            k: 2,
            max_iters: 15,
            ..GmmConfig::default()
        };
        let fit = train_dense(&mut source, &config, &ExecPolicy::new()).unwrap();
        assert_eq!(fit.iterations, 15);
        assert_eq!(fit.n_tuples, 400);
        // one mean near (0,0), one near (10,10)
        let mut m: Vec<f64> = fit.model.means.iter().map(|m| m[0] + m[1]).collect();
        m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(m[0].abs() < 1.0, "low mean {:?}", fit.model.means);
        assert!((m[1] - 20.0).abs() < 1.0, "high mean {:?}", fit.model.means);
        // weights roughly 0.5 / 0.5
        assert!((fit.model.weights[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn log_likelihood_is_monotone_nondecreasing() {
        let rows = two_blob_rows(100);
        let mut source = VecSource::new(rows);
        let config = GmmConfig {
            k: 2,
            max_iters: 12,
            ..GmmConfig::default()
        };
        let fit = train_dense(&mut source, &config, &ExecPolicy::new()).unwrap();
        for w in fit.log_likelihood.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "log-likelihood decreased: {:?}",
                fit.log_likelihood
            );
        }
        assert!(fit.final_log_likelihood().is_finite());
    }

    #[test]
    fn early_stopping_respects_tolerance() {
        let rows = two_blob_rows(100);
        let mut source = VecSource::new(rows);
        let config = GmmConfig {
            k: 2,
            max_iters: 50,
            tol: 1e-3,
            ..GmmConfig::default()
        };
        let fit = train_dense(&mut source, &config, &ExecPolicy::new()).unwrap();
        assert!(
            fit.iterations < 50,
            "should converge early, ran {}",
            fit.iterations
        );
    }

    #[test]
    fn converged_helper() {
        assert!(!converged(None, 1.0, 1e-3));
        assert!(!converged(Some(0.0), 1.0, 0.0));
        assert!(converged(Some(1.0), 1.0000001, 1e-3));
        assert!(!converged(Some(0.0), 1.0, 1e-3));
    }

    #[test]
    fn weights_sum_to_one_and_covariances_are_spd() {
        let rows = two_blob_rows(150);
        let mut source = VecSource::new(rows);
        let config = GmmConfig {
            k: 3,
            max_iters: 8,
            ..GmmConfig::default()
        };
        let fit = train_dense(&mut source, &config, &ExecPolicy::new()).unwrap();
        let sum: f64 = fit.model.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for cov in &fit.model.covariances {
            // after the ridge-protected precompute the covariances may need
            // regularization, but they must at least be symmetric and finite
            assert!(fml_linalg::sym::is_symmetric(cov, 1e-9));
            assert!(cov.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn vec_source_rejects_ragged_rows() {
        VecSource::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn parallel_policy_with_engaged_fanout_matches_blocked() {
        // d and k chosen so k·d²·batch clears PAR_MIN_BATCH_FLOPS and the
        // buffered parallel branch actually runs (small models stay inline).
        let d = 32;
        let k = 4;
        assert!(k * d * d * PAR_BATCH_TUPLES >= PAR_MIN_BATCH_FLOPS);
        let mut rng = fml_linalg::testutil::TestRng::new(5);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let shift = if i % 2 == 0 { 0.0 } else { 25.0 };
                (0..d).map(|_| rng.f64_in(0.0, 10.0) + shift).collect()
            })
            .collect();
        let base = GmmConfig {
            k,
            max_iters: 2,
            ..GmmConfig::default()
        };
        let blocked = train_dense(
            &mut VecSource::new(rows.clone()),
            &base,
            &ExecPolicy::new().kernel_policy(fml_linalg::KernelPolicy::Blocked),
        )
        .unwrap();
        let parallel = train_dense(
            &mut VecSource::new(rows),
            &base,
            &ExecPolicy::new().kernel_policy(fml_linalg::KernelPolicy::BlockedParallel),
        )
        .unwrap();
        let diff = blocked.model.max_param_diff(&parallel.model);
        assert!(diff < 1e-7, "parallel EM diverged from blocked: {diff}");
    }
}
