//! # fml-gmm
//!
//! Gaussian Mixture Models with full covariances trained by Expectation-
//! Maximization over **normalized** relational data, implementing the three
//! algorithm variants of the paper:
//!
//! * [`materialized::MaterializedGmm`] (`M-GMM`) — materialize the PK/FK join as a
//!   table `T`, then run EM scanning `T` three times per iteration (Algorithm 1).
//! * [`streaming::StreamingGmm`] (`S-GMM`) — identical EM, but each pass joins the
//!   base relations on the fly and feeds the denormalized tuples to the learner.
//! * [`factorized::FactorizedGmm`] (`F-GMM`) — the paper's contribution: every
//!   quantity that depends only on a dimension tuple `x_R` (the centered vector
//!   `PD_R`, the quadratic-form term `LR`, the scatter block `PD_R PD_Rᵀ`) is
//!   computed once per dimension tuple and reused for all matching fact tuples
//!   (Section V-B), generalized to multi-way joins in [`multiway`] (Section V-C).
//!
//! All three produce the same model (up to floating-point associativity): the EM
//! update is decomposed exactly, never approximated.  The integration tests assert
//! this equivalence on every workload shape.
//!
//! Every trainer takes the same pair of arguments: a [`GmmConfig`] describing
//! the *model* (components, iteration budget, regularization) and an
//! [`fml_linalg::ExecPolicy`] describing the *execution* (kernel policy,
//! sparse-path mode, scan block size, worker threads, seed, telemetry
//! observer).  The preferred entry point is `fml_core::Session`, which fits
//! any model family through one surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod em;
pub mod factorized;
pub mod init;
pub mod materialized;
pub mod model;
pub mod multiway;
pub mod sparse;
pub mod streaming;

pub use em::{EmOptions, GmmFit};
pub use factorized::FactorizedGmm;
pub use init::GmmInit;
pub use materialized::MaterializedGmm;
pub use model::{GmmBatchPrediction, GmmModel, Precomputed};
pub use multiway::FactorizedMultiwayGmm;
pub use sparse::SparseFormPre;
pub use streaming::StreamingGmm;

use serde::{Deserialize, Serialize};

/// Model configuration shared by every GMM training variant.
///
/// Holds only *model* concerns.  Execution knobs (kernel policy, sparse mode,
/// block size, threads, seed) live on [`fml_linalg::ExecPolicy`], which every
/// trainer takes alongside this config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components `K`.
    pub k: usize,
    /// Maximum number of EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the change of the total log-likelihood between
    /// consecutive iterations (`0.0` disables early stopping, so every variant
    /// performs exactly `max_iters` iterations — the fairest timing comparison).
    pub tol: f64,
    /// Ridge added to covariance diagonals whenever a component's covariance is
    /// not positive definite.
    pub ridge: f64,
    /// Spread of the random initial means.
    pub init_spread: f64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            max_iters: 10,
            tol: 0.0,
            ridge: 1e-6,
            init_spread: 1.0,
        }
    }
}

impl GmmConfig {
    /// Convenience constructor fixing the component count.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Returns a copy with a different iteration budget.
    pub fn iterations(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Returns a copy with a different convergence tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = GmmConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.max_iters, 10);
        assert_eq!(c.tol, 0.0);
        assert!(c.ridge > 0.0);
    }

    #[test]
    fn builder_methods() {
        let c = GmmConfig::with_k(3).iterations(25).tolerance(1e-4);
        assert_eq!(c.k, 3);
        assert_eq!(c.max_iters, 25);
        assert_eq!(c.tol, 1e-4);
    }
}
