//! # fml-gmm
//!
//! Gaussian Mixture Models with full covariances trained by Expectation-
//! Maximization over **normalized** relational data, implementing the three
//! algorithm variants of the paper:
//!
//! * [`materialized::MaterializedGmm`] (`M-GMM`) — materialize the PK/FK join as a
//!   table `T`, then run EM scanning `T` three times per iteration (Algorithm 1).
//! * [`streaming::StreamingGmm`] (`S-GMM`) — identical EM, but each pass joins the
//!   base relations on the fly and feeds the denormalized tuples to the learner.
//! * [`factorized::FactorizedGmm`] (`F-GMM`) — the paper's contribution: every
//!   quantity that depends only on a dimension tuple `x_R` (the centered vector
//!   `PD_R`, the quadratic-form term `LR`, the scatter block `PD_R PD_Rᵀ`) is
//!   computed once per dimension tuple and reused for all matching fact tuples
//!   (Section V-B), generalized to multi-way joins in [`multiway`] (Section V-C).
//!
//! All three produce the same model (up to floating-point associativity): the EM
//! update is decomposed exactly, never approximated.  The integration tests assert
//! this equivalence on every workload shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod em;
pub mod factorized;
pub mod init;
pub mod materialized;
pub mod model;
pub mod multiway;
pub(crate) mod sparse;
pub mod streaming;

pub use em::{EmOptions, GmmFit};
pub use factorized::FactorizedGmm;
pub use init::GmmInit;
pub use materialized::MaterializedGmm;
pub use model::{GmmModel, Precomputed};
pub use multiway::FactorizedMultiwayGmm;
pub use streaming::StreamingGmm;

use fml_linalg::{KernelPolicy, SparseMode};
use serde::{Deserialize, Serialize};

/// Configuration shared by every GMM training variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GmmConfig {
    /// Number of mixture components `K`.
    pub k: usize,
    /// Maximum number of EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the change of the total log-likelihood between
    /// consecutive iterations (`0.0` disables early stopping, so every variant
    /// performs exactly `max_iters` iterations — the fairest timing comparison).
    pub tol: f64,
    /// Ridge added to covariance diagonals whenever a component's covariance is
    /// not positive definite.
    pub ridge: f64,
    /// Seed for the (data-independent) initialization.
    pub seed: u64,
    /// Spread of the random initial means.
    pub init_spread: f64,
    /// Number of pages per scan block (`BlockSize` in the paper's cost analysis).
    pub block_pages: usize,
    /// Linear-algebra kernel policy used by every pass (see
    /// [`fml_linalg::policy`]).  All variants of one comparison should share a
    /// policy: results across policies agree only within rounding tolerances.
    pub kernel_policy: KernelPolicy,
    /// Whether the trainers detect sparse feature blocks and route them
    /// through the sparse kernels ([`fml_linalg::sparse`] for one-hot,
    /// [`fml_linalg::csr`] for weighted CSR).  The default `Auto` engages on
    /// 0/1 blocks at ≤ ½ occupancy and on weighted-sparse blocks at ≤ ¼
    /// occupancy; `Dense` forces the dense path (the comparison baseline).
    /// The factorized trainers detect per base-relation block; the
    /// materialized/streaming trainers detect the denormalized rows.
    /// Detection is cached per tuple (at most one scan per tuple per training
    /// run).  Sparse-path models agree with the dense path within rounding
    /// tolerances (the centered decomposition regroups additions), not
    /// bit-for-bit.
    pub sparse: SparseMode,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            max_iters: 10,
            tol: 0.0,
            ridge: 1e-6,
            seed: 7,
            init_spread: 1.0,
            block_pages: fml_store::DEFAULT_BLOCK_PAGES,
            kernel_policy: KernelPolicy::default(),
            sparse: SparseMode::default(),
        }
    }
}

impl GmmConfig {
    /// Convenience constructor fixing the component count.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Returns a copy with a different iteration budget.
    pub fn iterations(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Returns a copy with a different convergence tolerance.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Returns a copy with a different seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different kernel policy.
    pub fn policy(mut self, kernel_policy: KernelPolicy) -> Self {
        self.kernel_policy = kernel_policy;
        self
    }

    /// Returns a copy with a different sparse-path mode.
    pub fn sparse_mode(mut self, sparse: SparseMode) -> Self {
        self.sparse = sparse;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_defaults() {
        let c = GmmConfig::default();
        assert_eq!(c.k, 5);
        assert_eq!(c.max_iters, 10);
        assert_eq!(c.tol, 0.0);
        assert!(c.ridge > 0.0);
    }

    #[test]
    fn builder_methods() {
        let c = GmmConfig::with_k(3)
            .iterations(25)
            .tolerance(1e-4)
            .seeded(99);
        assert_eq!(c.k, 3);
        assert_eq!(c.max_iters, 25);
        assert_eq!(c.tol, 1e-4);
        assert_eq!(c.seed, 99);
    }
}
